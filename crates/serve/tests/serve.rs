//! End-to-end contracts of the sweep-as-a-service daemon:
//!
//! * a served job's final stream digest — and its whole `results` array —
//!   is byte-identical to the same grid run through an in-process
//!   `FleetRunner`, pinned against the same constant as `digest_pin.rs`
//!   and the dist tests;
//! * two concurrent jobs share the pool fairly — their progress streams
//!   interleave, neither starves;
//! * a mid-sweep `partial` query answers a byte-exact prefix of the final
//!   summary's `results` array;
//! * a client disconnect cancels its job and frees the pool for the next
//!   tenant;
//! * the metrics endpoint (JSON-lines and plain HTTP) renders the daemon
//!   counters.
//!
//! Clients here are the real [`quanto_serve::client`] plus hand-rolled
//! sockets where the test needs to misbehave (disconnect mid-sweep) or
//! observe mid-protocol state (the job id before the final line).

use quanto_fleet::{FleetRunner, GridSpec};
use quanto_serve::{client, ServeConfig, Server};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// `digest_pin.rs`'s `pin_batch()` as grid text, with its recorded stream
/// digest — the daemon must fold the identical bytes.
const PIN_BATCH_STREAM_DIGEST: u64 = 0xf73f_b2e3_9f24_1280;
const PIN_BATCH_GRID: &str = "
[grid]
name = pin_batch
seconds = 2

[cell.lpl]
app = lpl
interference = 0.18
seeds = 1..2
channels = 17, 26
name = lpl_ch{channel}_seed{seed}

[cell.blink]
app = blink

[cell.bounce]
app = bounce

[cell.idle]
app = idle
seconds = 1
";
const PIN_BATCH_LEN: usize = 7;

/// A moderate grid for concurrency tests: six Bounce cells, each a few
/// tens of host milliseconds, so two jobs genuinely overlap on the pool.
const BOUNCE_GRID: &str = "
[grid]
name = bounce_grid
seconds = 2

[cell.bounce]
app = bounce
seeds = 1..6
name = bounce_seed{seed}
";

fn start_server(workers: usize) -> quanto_serve::ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        ServeConfig {
            workers,
            cache_dir: None,
        },
    )
    .expect("bind server")
    .start()
}

/// The `results` array (with its brackets) out of a summary document —
/// it is always the last field.
fn results_array(summary: &str) -> &str {
    let start = summary.find("\"results\":").expect("summary has results") + "\"results\":".len();
    &summary[start..summary.len() - 1]
}

#[test]
fn served_digest_is_byte_identical_to_in_process_and_pinned() {
    let handle = start_server(3);
    let addr = handle.addr().to_string();

    let mut completions = Vec::new();
    let outcome = client::run_sweep(&addr, PIN_BATCH_GRID, &Default::default(), |event| {
        completions.push(event.to_string());
    })
    .expect("served sweep completes");
    assert_eq!(outcome.total, PIN_BATCH_LEN);
    assert_eq!(outcome.warm, 0, "no cache configured, nothing is warm");
    assert_eq!(completions.len(), PIN_BATCH_LEN, "one event per scenario");
    for (k, event) in completions.iter().enumerate() {
        assert!(
            event.contains(&format!("\"completed\":{}", k + 1)),
            "events stream in submission order: {event}"
        );
    }

    let pinned = format!("{PIN_BATCH_STREAM_DIGEST:#018x}");
    assert_eq!(
        client::digest_of(&outcome.summary),
        Some(pinned.as_str()),
        "served digest must match the pinned stream digest"
    );

    // Byte-identity against the in-process runner: same digest field, and
    // the whole per-scenario results array must be the identical bytes.
    let batch = GridSpec::parse(PIN_BATCH_GRID)
        .expect("pin grid parses")
        .expand()
        .expect("pin grid expands");
    let report = FleetRunner::new(3).run(batch);
    assert_eq!(report.digest(), PIN_BATCH_STREAM_DIGEST);
    let local = report.summary_json();
    assert_eq!(
        results_array(&outcome.summary),
        results_array(&local),
        "served results array must be byte-identical to the in-process one"
    );

    handle.shutdown();
}

#[test]
fn two_concurrent_jobs_share_the_pool_and_interleave() {
    let handle = start_server(2);
    let addr = handle.addr().to_string();
    let timeline: Arc<Mutex<Vec<(usize, Instant)>>> = Arc::new(Mutex::new(Vec::new()));

    let clients: Vec<_> = (0..2)
        .map(|tenant| {
            let addr = addr.clone();
            let timeline = timeline.clone();
            std::thread::spawn(move || {
                client::run_sweep(&addr, BOUNCE_GRID, &Default::default(), |_| {
                    timeline.lock().unwrap().push((tenant, Instant::now()));
                })
                .expect("served sweep completes")
            })
        })
        .collect();
    let outcomes: Vec<_> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    assert!(outcomes.iter().all(|o| o.total == 6));
    assert_ne!(outcomes[0].job, outcomes[1].job);
    // Identical grids must fold identical digests, tenancy notwithstanding.
    assert_eq!(
        client::digest_of(&outcomes[0].summary),
        client::digest_of(&outcomes[1].summary)
    );

    // Fairness: each tenant's event span overlaps the other's — neither
    // job ran to completion while the other starved.
    let timeline = timeline.lock().unwrap();
    let span = |tenant: usize| {
        let stamps: Vec<_> = timeline
            .iter()
            .filter(|(t, _)| *t == tenant)
            .map(|(_, at)| *at)
            .collect();
        assert_eq!(stamps.len(), 6, "tenant {tenant} saw all its events");
        (*stamps.first().unwrap(), *stamps.last().unwrap())
    };
    let (first0, last0) = span(0);
    let (first1, last1) = span(1);
    assert!(
        first0 < last1 && first1 < last0,
        "the two jobs' progress streams must interleave"
    );

    handle.shutdown();
}

#[test]
fn partial_query_returns_a_byte_exact_prefix_of_the_final_summary() {
    let handle = start_server(2);
    let addr = handle.addr().to_string();

    // Hand-rolled submit so the job id is visible mid-protocol.
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let mut request = String::from("{\"t\":\"submit\",\"proto\":1,\"grid\":");
    quanto_fleet::wire::push_json_str(&mut request, BOUNCE_GRID);
    request.push_str(",\"seconds\":null,\"seeds\":null,\"pairs\":null}\n");
    writer.write_all(request.as_bytes()).expect("submit");

    let mut line = String::new();
    reader.read_line(&mut line).expect("accepted line");
    assert!(line.starts_with("{\"t\":\"accepted\","), "{line}");
    let job: u64 = {
        let start = line.find("\"job\":").expect("job id") + 6;
        line[start..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse()
            .expect("job id parses")
    };

    // Let a couple of cells merge, then snapshot from a second connection.
    for _ in 0..2 {
        line.clear();
        reader.read_line(&mut line).expect("progress line");
        assert!(line.starts_with("{\"t\":\"progress\","), "{line}");
    }
    let snapshot = client::partial(&addr, job).expect("partial answers mid-sweep");
    assert_eq!(snapshot.job, job);
    assert_eq!(snapshot.total, 6);
    assert!(
        snapshot.completed >= 2,
        "two progress events were already streamed"
    );

    // Drain to the final summary.
    let summary = loop {
        line.clear();
        reader.read_line(&mut line).expect("stream line");
        if line.starts_with("{\"t\":\"final\",") {
            let start = line.find("\"summary\":").expect("summary payload") + "\"summary\":".len();
            break line.trim_end()[start..line.trim_end().len() - 1].to_string();
        }
        assert!(line.starts_with("{\"t\":\"progress\","), "{line}");
    };

    // The snapshot (sans closing bracket) must be a byte-exact prefix of
    // the final results array, ending on an element boundary.
    let final_results = results_array(&summary);
    let prefix = &snapshot.results[..snapshot.results.len() - 1];
    assert!(
        final_results.starts_with(prefix),
        "partial results must be a byte-exact prefix\n partial: {}\n final: {final_results}",
        snapshot.results
    );
    let boundary = final_results.as_bytes()[prefix.len()];
    assert!(
        boundary == b',' || boundary == b']',
        "prefix must end on an element boundary"
    );

    // Completed jobs answer `done` until their session retires them;
    // unknown jobs are a server-side error.
    match client::partial(&addr, job + 1000) {
        Err(client::ClientError::Server(why)) => assert!(why.contains("unknown job"), "{why}"),
        other => panic!("expected an unknown-job error, got {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn client_disconnect_cancels_the_job_and_frees_the_pool() {
    let handle = start_server(1);
    let addr = handle.addr().to_string();

    // Submit, read the accepted line, then vanish mid-sweep.
    {
        let stream = TcpStream::connect(&addr).expect("connect");
        let mut writer = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream);
        let mut request = String::from("{\"t\":\"submit\",\"proto\":1,\"grid\":");
        quanto_fleet::wire::push_json_str(&mut request, BOUNCE_GRID);
        request.push_str("}\n");
        writer.write_all(request.as_bytes()).expect("submit");
        let mut line = String::new();
        reader.read_line(&mut line).expect("accepted line");
        assert!(line.starts_with("{\"t\":\"accepted\","), "{line}");
    } // both halves drop: EOF on the daemon's watchdog

    // The daemon notices, cancels, and retires the job.
    let deadline = Instant::now() + Duration::from_secs(30);
    while handle.active_jobs() != 0 {
        assert!(
            Instant::now() < deadline,
            "disconnected job was never retired"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The single worker is free again: a fresh tenant completes.
    let outcome = client::run_sweep(
        &addr,
        "[grid]\nname = after\nseconds = 1\n\n[cell.idle]\napp = idle\n",
        &Default::default(),
        |_| {},
    )
    .expect("the pool serves the next tenant");
    assert_eq!(outcome.total, 1);

    handle.shutdown();
}

#[test]
fn metrics_render_daemon_counters_over_both_transports() {
    let handle = start_server(2);
    let addr = handle.addr().to_string();
    client::run_sweep(
        &addr,
        "[grid]\nname = m\nseconds = 1\n\n[cell.idle]\napp = idle\n",
        &Default::default(),
        |_| {},
    )
    .expect("sweep completes");
    // The session retires the job just after the final line the client
    // returned on — wait for it so `serve.jobs.active` reads 0.
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.active_jobs() != 0 {
        assert!(Instant::now() < deadline, "finished job was never retired");
        std::thread::sleep(Duration::from_millis(10));
    }

    let text = client::metrics(&addr).expect("metrics reply");
    for needle in [
        "counter serve.jobs.submitted 1",
        "counter serve.jobs.completed 1",
        "counter serve.scenarios.executed 1",
        "counter serve.queries.metrics 1",
        "gauge serve.jobs.active 0",
        "gauge serve.workers 2",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    // The same document over plain HTTP, for curl and browsers.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("request");
    let mut response = String::new();
    BufReader::new(stream)
        .read_to_string(&mut response)
        .expect("response");
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    assert!(response.contains("Content-Type: text/plain"), "{response}");
    assert!(
        response.contains("counter serve.queries.metrics 2"),
        "the HTTP hit counts too:\n{response}"
    );

    handle.shutdown();
}
