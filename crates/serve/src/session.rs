//! One thread per client connection: the JSON-lines protocol surface.
//!
//! The first line decides everything (`docs/PROTOCOL.md` has the worked
//! examples):
//!
//! * `{"t":"submit",…}` — register a job, reply `accepted`, then stream
//!   its progress events until the `final` line;
//! * `{"t":"partial","job":N}` — one-shot snapshot of a job's merged
//!   prefix;
//! * `{"t":"metrics"}` — one-shot metrics text, JSON-wrapped;
//! * `GET /metrics …` — the same text as a plain HTTP/1.0 response, so a
//!   browser or `curl` needs no client.
//!
//! A submit session owns its job: if the client disconnects mid-sweep
//! (detected by the EOF watchdog, or by a failed event write), the job is
//! cancelled, its queue cleared, and the pool moves on to other tenants.

use crate::registry::{self, Shared};
use crate::{metrics, PROTO_VERSION};
use quanto_fleet::dist::GridOverrides;
use quanto_fleet::wire::{push_json_str, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// Serves one accepted connection to completion.
pub(crate) fn handle(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    if reader.read_line(&mut line).unwrap_or(0) == 0 {
        return;
    }
    if line.starts_with("GET ") {
        return http_metrics(reader, writer, shared);
    }
    let Some(msg) = Value::parse(line.trim_end()) else {
        shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let _ = error_line(&mut writer, "malformed request (not wire-subset JSON)");
        return;
    };
    match msg.get_str("t") {
        Some("submit") => submit(reader, writer, shared, &msg),
        Some("partial") => partial(writer, shared, &msg),
        Some("metrics") => metrics_reply(writer, shared),
        other => {
            shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
            let _ = error_line(
                &mut writer,
                &format!("unknown request type {:?}", other.unwrap_or("<missing>")),
            );
        }
    }
}

/// Reads one optional-`null` `u64` field: absent or `null` → `None`,
/// a number → `Some(n)`, anything else → protocol error.
fn opt_u64(msg: &Value, key: &str) -> Result<Option<u64>, String> {
    match msg.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("field {key:?} must be a u64 or null")),
    }
}

fn submit(
    mut reader: BufReader<TcpStream>,
    mut writer: TcpStream,
    shared: &Arc<Shared>,
    msg: &Value,
) {
    let reject = |writer: &mut TcpStream, shared: &Shared, why: &str| {
        shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let _ = error_line(writer, why);
    };
    match msg.get_u64("proto") {
        Some(PROTO_VERSION) => {}
        _ => {
            return reject(
                &mut writer,
                shared,
                &format!("unsupported protocol version (this daemon speaks {PROTO_VERSION})"),
            )
        }
    }
    let Some(grid) = msg.get_str("grid") else {
        return reject(&mut writer, shared, "submit is missing the grid text");
    };
    let overrides = {
        let seconds = match opt_u64(msg, "seconds") {
            Ok(bits) => bits.map(f64::from_bits),
            Err(why) => return reject(&mut writer, shared, &why),
        };
        let seed_count = match opt_u64(msg, "seeds") {
            Ok(n) => n,
            Err(why) => return reject(&mut writer, shared, &why),
        };
        let pairs = match opt_u64(msg, "pairs") {
            Ok(None) => None,
            Ok(Some(p)) if p <= u16::MAX as u64 => Some(p as u16),
            Ok(Some(_)) => return reject(&mut writer, shared, "field \"pairs\" exceeds u16"),
            Err(why) => return reject(&mut writer, shared, &why),
        };
        GridOverrides {
            seconds,
            seed_count,
            pairs,
        }
    };

    let job = match registry::submit(shared, grid, &overrides) {
        Ok(job) => job,
        Err(why) => return reject(&mut writer, shared, &why),
    };
    let accepted = format!(
        "{{\"t\":\"accepted\",\"proto\":{PROTO_VERSION},\"job\":{},\"total\":{},\"warm\":{}}}",
        job.id, job.total, job.warm
    );
    if write_line(&mut writer, &accepted).is_err() {
        job.cancel(shared);
        registry::finish_job(shared, job.id);
        return;
    }

    // EOF watchdog: the client writes nothing after the submit line, so a
    // read returning marks disconnect (or a stray line, treated the same)
    // and cancels the job immediately — not at the next event write.
    let watchdog = {
        let job = job.clone();
        let shared = shared.clone();
        std::thread::spawn(move || {
            let mut stray = String::new();
            let _ = reader.read_line(&mut stray);
            job.cancel(&shared);
        })
    };

    loop {
        let (events, summary, cancelled) = {
            let mut st = job.state.lock().expect("job state poisoned");
            while st.events.is_empty()
                && st.summary.is_none()
                && !job.cancelled.load(Ordering::Relaxed)
            {
                let (guard, _) = job
                    .events
                    .wait_timeout(st, Duration::from_millis(200))
                    .expect("job state poisoned");
                st = guard;
            }
            let events: Vec<_> = st.events.drain(..).collect();
            (
                events,
                st.summary.clone(),
                job.cancelled.load(Ordering::Relaxed),
            )
        };
        for event in &events {
            let line = format!(
                "{{\"t\":\"progress\",\"job\":{},\"event\":{}}}",
                job.id,
                event.to_json()
            );
            if write_line(&mut writer, &line).is_err() {
                job.cancel(shared);
                registry::finish_job(shared, job.id);
                return;
            }
        }
        if let Some(summary) = summary {
            let line = format!(
                "{{\"t\":\"final\",\"job\":{},\"summary\":{}}}",
                job.id, summary
            );
            let _ = write_line(&mut writer, &line);
            break;
        }
        if cancelled {
            let _ = error_line(&mut writer, &format!("job {} cancelled", job.id));
            break;
        }
    }
    registry::finish_job(shared, job.id);
    drop(watchdog);
}

fn partial(mut writer: TcpStream, shared: &Arc<Shared>, msg: &Value) {
    shared.stats.partial_queries.fetch_add(1, Ordering::Relaxed);
    let Some(id) = msg.get_u64("job") else {
        shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
        let _ = error_line(&mut writer, "partial is missing the job id");
        return;
    };
    let job = shared
        .registry
        .lock()
        .expect("job table poisoned")
        .jobs
        .get(&id)
        .cloned();
    let Some(job) = job else {
        let _ = error_line(&mut writer, &format!("unknown job {id}"));
        return;
    };
    let line = {
        let st = job.state.lock().expect("job state poisoned");
        format!(
            "{{\"t\":\"partial\",\"job\":{id},\"total\":{},\"completed\":{},\"done\":{},\"results\":{}}}",
            job.total,
            st.merged,
            st.summary.is_some(),
            st.partial.render_array()
        )
    };
    let _ = write_line(&mut writer, &line);
}

fn metrics_reply(mut writer: TcpStream, shared: &Arc<Shared>) {
    shared.stats.metrics_queries.fetch_add(1, Ordering::Relaxed);
    let text = metrics::render(shared);
    let mut line = String::with_capacity(text.len() + 32);
    line.push_str("{\"t\":\"metrics\",\"text\":");
    push_json_str(&mut line, &text);
    line.push('}');
    let _ = write_line(&mut writer, &line);
}

/// Answers `GET /metrics` (any GET, in fact) with the metrics text as a
/// plain HTTP/1.0 response, draining the request headers first so the
/// close never races the client's read.
fn http_metrics(mut reader: BufReader<TcpStream>, mut writer: TcpStream, shared: &Arc<Shared>) {
    shared.stats.metrics_queries.fetch_add(1, Ordering::Relaxed);
    let _ = writer.set_read_timeout(Some(Duration::from_millis(200)));
    let mut header = String::new();
    loop {
        header.clear();
        match reader.read_line(&mut header) {
            Ok(0) | Err(_) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
        }
    }
    let body = metrics::render(shared);
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = writer.write_all(response.as_bytes());
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn error_line(writer: &mut TcpStream, message: &str) -> std::io::Result<()> {
    let mut line = String::with_capacity(message.len() + 32);
    line.push_str("{\"t\":\"error\",\"message\":");
    push_json_str(&mut line, message);
    line.push('}');
    write_line(writer, &line)
}
