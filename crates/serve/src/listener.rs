//! The daemon front door: bind, spawn, accept, shut down.

use crate::registry::Shared;
use crate::{scheduler, session, ServeConfig};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A bound (but not yet running) daemon.  [`Server::start`] spawns the
/// worker pool and the accept loop and hands back a [`ServerHandle`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listening socket and opens the result cache (if any).
    /// Use port 0 to let the OS pick — [`Server::local_addr`] reports the
    /// choice.
    pub fn bind(addr: &str, config: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared::new(&config)?);
        Ok(Server { listener, shared })
    }

    /// The bound address.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the worker pool and the accept loop; sessions get a thread
    /// each as connections arrive.
    pub fn start(self) -> ServerHandle {
        let addr = self
            .listener
            .local_addr()
            .expect("bound listener has an address");
        let mut workers = Vec::with_capacity(self.shared.workers);
        for w in 0..self.shared.workers {
            let shared = self.shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || scheduler::worker_loop(shared, w))
                    .expect("spawn worker thread"),
            );
        }
        let shared = self.shared.clone();
        let listener = self.listener;
        let acceptor = std::thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if shared.shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let shared = shared.clone();
                    std::thread::spawn(move || session::handle(stream, &shared));
                }
            })
            .expect("spawn accept thread");
        ServerHandle {
            shared: self.shared,
            addr,
            acceptor,
            workers,
        }
    }
}

/// A running daemon.  Dropping it leaves the threads running (the binary
/// relies on that); call [`ServerHandle::shutdown`] for a clean stop.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs currently registered (running, or finished but not yet
    /// delivered to their session).  Zero means the pool is idle.
    pub fn active_jobs(&self) -> usize {
        self.shared
            .registry
            .lock()
            .expect("job table poisoned")
            .jobs
            .len()
    }

    /// Cancels every live job, stops the workers and the accept loop, and
    /// joins them.  In-flight sessions see their jobs cancelled and exit
    /// on their own.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        let jobs: Vec<_> = self
            .shared
            .registry
            .lock()
            .expect("job table poisoned")
            .jobs
            .values()
            .cloned()
            .collect();
        for job in jobs {
            job.cancel(&self.shared);
        }
        self.shared.work.notify_all();
        // A throwaway connection unblocks the accept loop so it can see
        // the shutdown flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }

    /// Blocks until the accept loop exits (it never does on its own — this
    /// is the daemon binary's "run forever").
    pub fn join(self) {
        let _ = self.acceptor.join();
        for worker in self.workers {
            let _ = worker.join();
        }
    }
}
