//! The blocking client for the `quanto-serve` wire protocol.
//!
//! `fleet_sweep --server` and the end-to-end tests speak through here.
//! One deliberate asymmetry with the server: progress events, final
//! summaries and partial results contain decimal floats, which the
//! [`quanto_fleet::wire`] reader rejects by design (digest-bearing floats
//! travel as bit patterns; summaries are for humans and `jq`).  The
//! client therefore never parses those documents — it slices them out of
//! the envelope **verbatim** (the envelope's payload is always the last
//! field), so what the caller prints is byte-identical to what the
//! daemon's accumulator rendered.  Control lines (`accepted`, `error`,
//! `metrics`) carry no floats and are parsed normally.

use crate::PROTO_VERSION;
use quanto_fleet::dist::GridOverrides;
use quanto_fleet::wire::{push_json_str, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting, reading or writing the socket failed.
    Io(std::io::Error),
    /// The daemon replied with something outside the protocol.
    Protocol(String),
    /// The daemon rejected the request with an `error` line.
    Server(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(why) => write!(f, "protocol error: {why}"),
            ClientError::Server(why) => write!(f, "server error: {why}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A completed server-side sweep.
#[derive(Debug)]
pub struct Outcome {
    /// The job id the daemon assigned.
    pub job: u64,
    /// Scenarios in the expanded grid.
    pub total: usize,
    /// Cells answered from the result cache at submit.
    pub warm: usize,
    /// The final summary document, verbatim — byte-identical to
    /// `FleetReport::summary_json` for the same grid run in-process
    /// (modulo the display-only `threads`, `wall_clock_ms` and `cache`
    /// fields).
    pub summary: String,
}

/// A `partial` query's snapshot of a running (or just-finished) job.
#[derive(Debug)]
pub struct PartialSnapshot {
    /// The queried job.
    pub job: u64,
    /// Scenarios in its grid.
    pub total: usize,
    /// Cells merged so far.
    pub completed: usize,
    /// Whether the final summary exists already.
    pub done: bool,
    /// The merged prefix, verbatim — a byte-exact prefix of the final
    /// summary's `results` array.
    pub results: String,
}

/// Submits `grid_text` (with `overrides`) to the daemon at `addr`,
/// invoking `on_progress` with each progress event's JSON document
/// (verbatim) as the sweep advances, and returns the final summary.
pub fn run_sweep(
    addr: &str,
    grid_text: &str,
    overrides: &GridOverrides,
    mut on_progress: impl FnMut(&str),
) -> Result<Outcome, ClientError> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    let mut request = format!("{{\"t\":\"submit\",\"proto\":{PROTO_VERSION},\"grid\":");
    push_json_str(&mut request, grid_text);
    match overrides.seconds {
        Some(s) => request.push_str(&format!(",\"seconds\":{}", s.to_bits())),
        None => request.push_str(",\"seconds\":null"),
    }
    match overrides.seed_count {
        Some(n) => request.push_str(&format!(",\"seeds\":{n}")),
        None => request.push_str(",\"seeds\":null"),
    }
    match overrides.pairs {
        Some(p) => request.push_str(&format!(",\"pairs\":{p}")),
        None => request.push_str(",\"pairs\":null"),
    }
    request.push_str("}\n");
    writer.write_all(request.as_bytes())?;
    writer.flush()?;

    let line = read_line(&mut reader)?;
    let accepted = parse_control(&line)?;
    if accepted.get_str("t") != Some("accepted") {
        return Err(ClientError::Protocol(format!(
            "expected an accepted line, got: {line}"
        )));
    }
    let job = field(&accepted, "job", &line)?;
    let total = field(&accepted, "total", &line)? as usize;
    let warm = field(&accepted, "warm", &line)? as usize;

    loop {
        let line = read_line(&mut reader)?;
        if line.starts_with("{\"t\":\"progress\",") {
            on_progress(payload(&line, "\"event\":")?);
            continue;
        }
        if line.starts_with("{\"t\":\"final\",") {
            let summary = payload(&line, "\"summary\":")?.to_string();
            return Ok(Outcome {
                job,
                total,
                warm,
                summary,
            });
        }
        // Anything else is a control line: an error, or protocol skew.
        parse_control(&line)?;
        return Err(ClientError::Protocol(format!("unexpected line: {line}")));
    }
}

/// Queries the merged prefix of job `job` on the daemon at `addr`.
pub fn partial(addr: &str, job: u64) -> Result<PartialSnapshot, ClientError> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writer.write_all(format!("{{\"t\":\"partial\",\"job\":{job}}}\n").as_bytes())?;
    writer.flush()?;
    let line = read_line(&mut reader)?;
    if !line.starts_with("{\"t\":\"partial\",") {
        parse_control(&line)?;
        return Err(ClientError::Protocol(format!("unexpected line: {line}")));
    }
    Ok(PartialSnapshot {
        job: scan_u64(&line, "\"job\":")?,
        total: scan_u64(&line, "\"total\":")? as usize,
        completed: scan_u64(&line, "\"completed\":")? as usize,
        done: line.contains("\"done\":true"),
        results: payload(&line, "\"results\":")?.to_string(),
    })
}

/// Fetches the daemon's metrics text (the same document `GET /metrics`
/// serves over HTTP).
pub fn metrics(addr: &str) -> Result<String, ClientError> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    writer.write_all(b"{\"t\":\"metrics\"}\n")?;
    writer.flush()?;
    let line = read_line(&mut reader)?;
    let reply = parse_control(&line)?;
    if reply.get_str("t") != Some("metrics") {
        return Err(ClientError::Protocol(format!("unexpected line: {line}")));
    }
    reply
        .get_str("text")
        .map(str::to_string)
        .ok_or_else(|| ClientError::Protocol("metrics reply is missing text".to_string()))
}

/// Slices the `"digest":"0x…"` value out of a summary document — 18
/// characters, `0x` plus 16 hex digits, exactly as `summary_json` and
/// `docs/PROTOCOL.md` specify.
pub fn digest_of(summary: &str) -> Option<&str> {
    let start = summary.find("\"digest\":\"")? + "\"digest\":\"".len();
    let digest = summary.get(start..start + 18)?;
    digest
        .strip_prefix("0x")
        .is_some_and(|hex| hex.bytes().all(|b| b.is_ascii_hexdigit()))
        .then_some(digest)
}

fn read_line(reader: &mut BufReader<TcpStream>) -> Result<String, ClientError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ClientError::Protocol(
            "connection closed mid-conversation".to_string(),
        ));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(line)
}

/// Parses a float-free control line, promoting `error` lines to
/// [`ClientError::Server`].
fn parse_control(line: &str) -> Result<Value, ClientError> {
    let value = Value::parse(line)
        .ok_or_else(|| ClientError::Protocol(format!("unparsable line: {line}")))?;
    if value.get_str("t") == Some("error") {
        return Err(ClientError::Server(
            value
                .get_str("message")
                .unwrap_or("<no message>")
                .to_string(),
        ));
    }
    Ok(value)
}

fn field(value: &Value, key: &str, line: &str) -> Result<u64, ClientError> {
    value
        .get_u64(key)
        .ok_or_else(|| ClientError::Protocol(format!("missing {key:?} in: {line}")))
}

/// The envelope payload: everything after `marker`, minus the closing
/// brace.  Valid because the payload is always the envelope's last field.
fn payload<'a>(line: &'a str, marker: &str) -> Result<&'a str, ClientError> {
    let start = line
        .find(marker)
        .ok_or_else(|| ClientError::Protocol(format!("missing {marker} in: {line}")))?
        + marker.len();
    Ok(&line[start..line.len() - 1])
}

/// Reads the decimal run right after `marker` (enough for the envelope's
/// own integer fields; payload documents are never scanned this way).
fn scan_u64(line: &str, marker: &str) -> Result<u64, ClientError> {
    let start = line
        .find(marker)
        .ok_or_else(|| ClientError::Protocol(format!("missing {marker} in: {line}")))?
        + marker.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| ClientError::Protocol(format!("bad number after {marker} in: {line}")))
}
