//! The per-job partial-summary store.
//!
//! Every merged cell's per-scenario summary line
//! ([`quanto_fleet::FleetProgress::result_json`] — the exact string
//! `FleetReport::summary_json` places in its `results` array) is appended
//! here in merge order.  A mid-sweep `partial` query therefore answers
//! with a **byte-exact prefix** of the final summary's `results` array,
//! without touching the accumulator or blocking the sweep.

/// Merged per-scenario summary lines, in submission order.
#[derive(Debug, Default)]
pub(crate) struct PartialStore {
    entries: Vec<String>,
}

impl PartialStore {
    /// Appends the next merged cell's summary line.
    pub(crate) fn push(&mut self, scenario_json: String) {
        self.entries.push(scenario_json);
    }

    /// Renders the prefix as a JSON array — byte-identical to the first
    /// `len()` elements of the final summary's `results` array.
    pub(crate) fn render_array(&self) -> String {
        let mut out =
            String::with_capacity(2 + self.entries.iter().map(|e| e.len() + 1).sum::<usize>());
        out.push('[');
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(entry);
        }
        out.push(']');
        out
    }
}
