//! The daemon's metrics rendering.
//!
//! One deterministic text document ([`quanto_obs::Registry::to_text`]
//! format: `counter`/`gauge`/`histogram` lines, key-ascending) combining
//! three sources:
//!
//! * `serve.*` counters and gauges maintained by the daemon itself
//!   (jobs submitted/completed/cancelled, cells executed, query counts);
//! * per-live-job progress gauges (`serve.job.<id>.merged` / `.total`);
//! * everything the worker pool recorded through `quanto-obs` (spans,
//!   `cache.hits` / `cache.misses` / `cache.writes`, engine counters),
//!   merged via [`quanto_obs::harvest`].
//!
//! Harvest drains, so the renderer folds each harvest into a persistent
//! registry first — repeated queries are monotonic, not windowed.

use crate::registry::Shared;
use std::sync::atomic::Ordering;

/// Renders the current metrics text.
pub(crate) fn render(shared: &Shared) -> String {
    // Fold the newest thread dumps into the persistent registry.
    quanto_obs::flush_thread();
    let mut reg = {
        let mut acc = shared.obs_merged.lock().expect("obs registry poisoned");
        acc.merge(&quanto_obs::harvest().merged);
        acc.clone()
    };

    let s = &shared.stats;
    reg.counter_add(
        "serve.jobs.submitted",
        s.jobs_submitted.load(Ordering::Relaxed),
    );
    reg.counter_add(
        "serve.jobs.completed",
        s.jobs_completed.load(Ordering::Relaxed),
    );
    reg.counter_add(
        "serve.jobs.cancelled",
        s.jobs_cancelled.load(Ordering::Relaxed),
    );
    reg.counter_add(
        "serve.scenarios.executed",
        s.scenarios_executed.load(Ordering::Relaxed),
    );
    reg.counter_add("serve.scenarios.warm", s.warm_hits.load(Ordering::Relaxed));
    reg.counter_add(
        "serve.queries.partial",
        s.partial_queries.load(Ordering::Relaxed),
    );
    reg.counter_add(
        "serve.queries.metrics",
        s.metrics_queries.load(Ordering::Relaxed),
    );
    reg.counter_add(
        "serve.errors.protocol",
        s.protocol_errors.load(Ordering::Relaxed),
    );
    reg.gauge_set("serve.workers", shared.workers as u64);

    {
        let table = shared.registry.lock().expect("job table poisoned");
        reg.gauge_set("serve.jobs.active", table.jobs.len() as u64);
        let mut ids: Vec<u64> = table.jobs.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let job = &table.jobs[&id];
            let merged = job.state.lock().expect("job state poisoned").merged;
            reg.gauge_set(&format!("serve.job.{id}.merged"), merged as u64);
            reg.gauge_set(&format!("serve.job.{id}.total"), job.total as u64);
        }
    }
    reg.to_text()
}
