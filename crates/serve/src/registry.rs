//! The job table: every live sweep's queue, reorder buffer and accumulator.
//!
//! A job is the daemon's unit of tenancy.  Submission expands the grid,
//! probes the result cache for every cell (hits never enter the queue),
//! and parks the misses in a per-job chunk queue the shared worker pool
//! drains.  Completed cells flow through a reorder buffer into a
//! [`ReportAccumulator`] strictly in submission-index order — the same
//! seam `FleetRunner` and the dist coordinator use, which is what makes a
//! served job's stream digest byte-identical to the in-process run.

use crate::partial::PartialStore;
use crate::ServeConfig;
use quanto_fleet::dist::GridOverrides;
use quanto_fleet::{
    CacheStats, FleetProgress, GridSpec, ReportAccumulator, ResultCache, Retention, Scenario,
    ScenarioResult,
};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Daemon-lifetime counters, mirrored into the metrics rendering.
#[derive(Debug, Default)]
pub(crate) struct ServeStats {
    pub(crate) jobs_submitted: AtomicU64,
    pub(crate) jobs_completed: AtomicU64,
    pub(crate) jobs_cancelled: AtomicU64,
    pub(crate) scenarios_executed: AtomicU64,
    pub(crate) warm_hits: AtomicU64,
    pub(crate) partial_queries: AtomicU64,
    pub(crate) metrics_queries: AtomicU64,
    pub(crate) protocol_errors: AtomicU64,
}

/// Everything the worker pool, the accept loop and the sessions share.
pub(crate) struct Shared {
    /// The job table.  Lock ordering: `registry` before any per-job lock;
    /// never take it while holding one.
    pub(crate) registry: Mutex<JobTable>,
    /// Workers park here when no job has schedulable work.
    pub(crate) work: Condvar,
    /// The shared result cache, probed at submit and written back by the
    /// workers.
    pub(crate) cache: Option<ResultCache>,
    /// Pool size (also the chunk-size denominator for `take_chunk`).
    pub(crate) workers: usize,
    /// Per-job backpressure window: a job's queue front must be within
    /// `merged + window` to be claimable, bounding its reorder buffer.
    pub(crate) window: usize,
    /// Raised once; workers and the accept loop exit at the next check.
    pub(crate) shutdown: AtomicBool,
    pub(crate) stats: ServeStats,
    /// Obs registries harvested so far — metrics queries merge the latest
    /// harvest in here so repeated queries stay monotonic even though
    /// [`quanto_obs::harvest`] drains.
    pub(crate) obs_merged: Mutex<quanto_obs::Registry>,
}

impl Shared {
    pub(crate) fn new(config: &ServeConfig) -> std::io::Result<Shared> {
        let cache = match &config.cache_dir {
            Some(dir) => Some(ResultCache::open(dir)?),
            None => None,
        };
        let workers = config.workers.max(1);
        Ok(Shared {
            registry: Mutex::new(JobTable::default()),
            work: Condvar::new(),
            cache,
            workers,
            window: (2 * workers).max(8),
            shutdown: AtomicBool::new(false),
            stats: ServeStats::default(),
            obs_merged: Mutex::new(quanto_obs::Registry::default()),
        })
    }
}

/// The live jobs, plus the round-robin cursor the scheduler walks.
#[derive(Default)]
pub(crate) struct JobTable {
    pub(crate) jobs: HashMap<u64, Arc<Job>>,
    /// Jobs with queued work, in submission order; the scheduler's fairness
    /// ring.
    pub(crate) ring: Vec<u64>,
    /// Next ring slot to offer work from.
    pub(crate) rr: usize,
    next_id: u64,
}

/// One submitted sweep.
pub(crate) struct Job {
    pub(crate) id: u64,
    pub(crate) total: usize,
    /// Cells answered by the cache probe at submit (never queued).
    pub(crate) warm: usize,
    pub(crate) scenarios: Vec<Scenario>,
    /// Indices not yet claimed by a worker, ascending.  The scheduler
    /// serves it through [`quanto_fleet::dist::take_chunk`].
    pub(crate) queue: Mutex<VecDeque<usize>>,
    pub(crate) state: Mutex<JobState>,
    /// Signalled on every merge, on completion and on cancellation; the
    /// submitting session waits here to stream events out.
    pub(crate) events: Condvar,
    pub(crate) cancelled: AtomicBool,
}

/// The mutable half of a job, behind its lock.
pub(crate) struct JobState {
    /// `Some` until the last cell merges, then consumed by `finish`.
    acc: Option<ReportAccumulator>,
    /// Completed cells waiting for their submission-order turn.
    pending: BTreeMap<usize, ScenarioResult>,
    /// Cells merged so far (also the next index to merge).
    pub(crate) merged: usize,
    /// Progress events not yet streamed to the client.
    pub(crate) events: VecDeque<FleetProgress>,
    /// Merged per-scenario summary lines, for `partial` queries.
    pub(crate) partial: PartialStore,
    /// The final `summary_json` line, set exactly once at completion.
    pub(crate) summary: Option<String>,
    /// The final stream digest, set with `summary`.
    pub(crate) digest: Option<u64>,
    started: Instant,
    /// Merged cells that were cache hits (warm or runtime).
    hits: u64,
}

impl Job {
    /// Hands one completed cell to the reorder buffer and merges whatever
    /// is now in order.
    pub(crate) fn deliver(&self, index: usize, result: ScenarioResult, shared: &Shared) {
        let mut st = self.state.lock().expect("job state poisoned");
        st.pending.insert(index, result);
        self.merge_ready(&mut st, shared);
    }

    /// Drains the reorder buffer: merges every pending result whose turn
    /// has come, emits its progress event, and finalizes the report when
    /// the last one lands.  Call with the state lock held.
    pub(crate) fn merge_ready(&self, st: &mut JobState, shared: &Shared) {
        while let Some(result) = st.pending.remove(&st.merged) {
            let completed = st.merged + 1;
            let elapsed_ms = st.started.elapsed().as_millis() as u64;
            let eta_ms = (completed >= 2)
                .then(|| elapsed_ms * (self.total - completed) as u64 / completed as u64);
            let event = FleetProgress {
                index: result.index,
                name: result.scenario.name.clone(),
                completed,
                total: self.total,
                medium_kind: result.medium_kind,
                medium_counters: result.medium_counters().ok().copied(),
                summaries: result.summaries.clone(),
                elapsed_ms,
                eta_ms,
                shard: None,
                cache_hit: result.cache_hit(),
            };
            if result.cache_hit() {
                st.hits += 1;
            }
            st.partial.push(event.result_json());
            st.acc
                .as_mut()
                .expect("accumulator lives until the last merge")
                .absorb(result);
            st.events.push_back(event);
            st.merged = completed;
        }
        if st.merged == self.total && st.summary.is_none() {
            let acc = st.acc.take().expect("finish happens exactly once");
            let mut report = acc.finish(shared.workers, st.started.elapsed(), 0);
            if shared.cache.is_some() {
                // Per-job view of the shared cache: merged hits are exact;
                // every miss was simulated and written back.
                let misses = self.total as u64 - st.hits;
                report.set_cache_stats(CacheStats {
                    hits: st.hits,
                    misses,
                    writes: misses,
                });
            }
            st.digest = Some(report.digest());
            st.summary = Some(report.summary_json());
            shared.stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
        }
        self.events.notify_all();
    }

    /// Cancels a still-running job: clears its queue (in-flight cells
    /// finish but merge into a job nobody will read) and wakes its
    /// session.  Idempotent; a no-op after completion.  Returns whether
    /// this call did the cancelling.
    pub(crate) fn cancel(&self, shared: &Shared) -> bool {
        if self
            .state
            .lock()
            .expect("job state poisoned")
            .summary
            .is_some()
        {
            return false;
        }
        if self.cancelled.swap(true, Ordering::Relaxed) {
            return false;
        }
        self.queue.lock().expect("job queue poisoned").clear();
        shared.stats.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
        self.events.notify_all();
        true
    }
}

/// Expands, probes and registers one submitted grid.  Warm cells merge
/// before this returns, so an all-warm job arrives already complete.
pub(crate) fn submit(
    shared: &Arc<Shared>,
    grid_text: &str,
    overrides: &GridOverrides,
) -> Result<Arc<Job>, String> {
    let mut spec = GridSpec::parse(grid_text).map_err(|e| format!("grid error: {e}"))?;
    overrides.apply(&mut spec);
    let scenarios = spec.expand().map_err(|e| format!("grid error: {e}"))?;
    let total = scenarios.len();
    if total == 0 {
        return Err("grid expands to zero scenarios".to_string());
    }

    let mut state = JobState {
        acc: Some(ReportAccumulator::new(total, Retention::Stream)),
        pending: BTreeMap::new(),
        merged: 0,
        events: VecDeque::new(),
        partial: PartialStore::default(),
        summary: None,
        digest: None,
        started: Instant::now(),
        hits: 0,
    };
    let mut queue = VecDeque::with_capacity(total);
    let mut warm = 0usize;
    for (i, scenario) in scenarios.iter().enumerate() {
        match shared.cache.as_ref().and_then(|c| c.probe(i, scenario)) {
            Some(result) => {
                state.pending.insert(i, result);
                warm += 1;
            }
            None => queue.push_back(i),
        }
    }
    shared
        .stats
        .warm_hits
        .fetch_add(warm as u64, Ordering::Relaxed);

    let id = {
        let mut table = shared.registry.lock().expect("job table poisoned");
        table.next_id += 1;
        table.next_id
    };
    let job = Arc::new(Job {
        id,
        total,
        warm,
        scenarios,
        queue: Mutex::new(queue),
        state: Mutex::new(state),
        events: Condvar::new(),
        cancelled: AtomicBool::new(false),
    });
    {
        let mut st = job.state.lock().expect("job state poisoned");
        job.merge_ready(&mut st, shared);
    }
    {
        let mut table = shared.registry.lock().expect("job table poisoned");
        table.jobs.insert(id, job.clone());
        if warm < total {
            table.ring.push(id);
        }
    }
    shared.stats.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    shared.work.notify_all();
    Ok(job)
}

/// Unregisters a job once its session has delivered the final line (or
/// died).  Partial queries for it answer "unknown job" from here on.
pub(crate) fn finish_job(shared: &Shared, id: u64) {
    let mut table = shared.registry.lock().expect("job table poisoned");
    table.jobs.remove(&id);
    table.ring.retain(|&j| j != id);
    if table.ring.is_empty() {
        table.rr = 0;
    } else {
        table.rr %= table.ring.len();
    }
}
