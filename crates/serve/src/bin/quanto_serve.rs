//! The `quanto-serve` daemon binary.
//!
//! Binds, prints one `quanto-serve listening on ADDR` line (scripts
//! capture it — with `--addr 127.0.0.1:0` it is the only way to learn
//! the port), then serves forever.  `fleet_sweep --server ADDR` is the
//! matching client; `docs/PROTOCOL.md` documents the wire format.

use quanto_serve::{ServeConfig, Server};
use std::io::Write;

const USAGE: &str = "usage: quanto_serve [--addr HOST:PORT] [--workers N] \
[--cache DIR | --no-cache] [--obs]

  --addr HOST:PORT   listen address (default 127.0.0.1:7645; port 0 = ephemeral)
  --workers N        shared worker-pool size (default: available cores)
  --cache DIR        result-cache directory (default .quanto-cache)
  --no-cache         disable the result cache
  --obs              enable quanto-obs tracing (spans/counters feed /metrics)
";

const DEFAULT_ADDR: &str = "127.0.0.1:7645";
const DEFAULT_CACHE_DIR: &str = ".quanto-cache";

struct Args {
    addr: String,
    config: ServeConfig,
    obs: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut addr = DEFAULT_ADDR.to_string();
    let mut workers: Option<usize> = None;
    let mut cache: Option<String> = None;
    let mut no_cache = false;
    let mut obs = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--workers" => {
                workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| "--workers needs a positive integer".to_string())?,
                )
            }
            "--cache" => cache = Some(value("--cache")?),
            "--no-cache" => no_cache = true,
            "--obs" => obs = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if no_cache && cache.is_some() {
        return Err("--cache and --no-cache are mutually exclusive".to_string());
    }
    let cache_dir = if no_cache {
        None
    } else {
        Some(
            cache
                .unwrap_or_else(|| DEFAULT_CACHE_DIR.to_string())
                .into(),
        )
    };
    let mut config = ServeConfig {
        cache_dir,
        ..ServeConfig::default()
    };
    if let Some(w) = workers {
        if w == 0 {
            return Err("--workers needs a positive integer".to_string());
        }
        config.workers = w;
    }
    Ok(Args { addr, config, obs })
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(why) => {
            eprintln!("error: {why}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if args.obs {
        quanto_obs::set_enabled(true);
    }
    let server = match Server::bind(&args.addr, args.config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    let addr = server.local_addr().expect("bound listener has an address");
    println!("quanto-serve listening on {addr}");
    let _ = std::io::stdout().flush();
    server.start().join();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Result<Args, String> {
        parse_args(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults_listen_on_the_fixed_port_with_a_cache() {
        let parsed = args(&[]).expect("defaults parse");
        assert_eq!(parsed.addr, DEFAULT_ADDR);
        assert_eq!(
            parsed.config.cache_dir.as_deref(),
            Some(std::path::Path::new(DEFAULT_CACHE_DIR))
        );
        assert!(!parsed.obs);
    }

    #[test]
    fn flags_parse_and_conflict() {
        let parsed = args(&[
            "--addr",
            "0.0.0.0:0",
            "--workers",
            "3",
            "--no-cache",
            "--obs",
        ])
        .expect("flags parse");
        assert_eq!(parsed.addr, "0.0.0.0:0");
        assert_eq!(parsed.config.workers, 3);
        assert!(parsed.config.cache_dir.is_none());
        assert!(parsed.obs);
        assert!(args(&["--cache", "d", "--no-cache"]).is_err());
        assert!(args(&["--workers", "0"]).is_err());
        assert!(args(&["--bogus"]).is_err());
    }
}
