//! The shared worker pool and its fair round-robin chunk scheduler.
//!
//! Every worker loops: pick the next job in ring order that has claimable
//! work, take a chunk of its queue with [`take_chunk`] (the same guided
//! self-scheduling the dist coordinator serves shards with), execute each
//! cell through [`execute_or_cached`], and hand the results to the job's
//! reorder buffer.  Two rules keep tenants honest:
//!
//! * **fairness** — the ring cursor advances past a job after every claim,
//!   so with two jobs and two workers each job holds about half the pool
//!   regardless of which was submitted first;
//! * **backpressure** — a job whose queue front is more than
//!   `window` cells ahead of its merge point is skipped until its session
//!   drains, bounding the reorder buffer exactly like the in-process
//!   runner's merge gate.

use crate::registry::{Job, Shared};
use quanto_fleet::dist::take_chunk;
use quanto_fleet::{execute_or_cached, Retention};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// One pool worker; runs until shutdown.
pub(crate) fn worker_loop(shared: Arc<Shared>, worker: usize) {
    quanto_obs::set_thread_label(&format!("serve-worker-{worker}"));
    while !shared.shutdown.load(Ordering::Relaxed) {
        match claim(&shared) {
            Some((job, chunk)) => run_chunk(&shared, &job, chunk),
            None => {
                let table = shared.registry.lock().expect("job table poisoned");
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                // Parked until a submit/merge notifies; the timeout only
                // bounds the race where the notify lands between our failed
                // claim and this wait.
                let _ = shared
                    .work
                    .wait_timeout(table, Duration::from_millis(25))
                    .expect("job table poisoned");
            }
        }
    }
    quanto_obs::flush_thread();
}

/// Picks the next claimable job round-robin and takes one chunk, clamped
/// to the job's backpressure window.  `None` when no job has work a
/// worker may start right now.
fn claim(shared: &Shared) -> Option<(Arc<Job>, Vec<usize>)> {
    let mut table = shared.registry.lock().expect("job table poisoned");
    let slots = table.ring.len();
    for step in 0..slots {
        let slot = (table.rr + step) % slots;
        let id = table.ring[slot];
        let Some(job) = table.jobs.get(&id).cloned() else {
            continue;
        };
        if job.cancelled.load(Ordering::Relaxed) {
            continue;
        }
        let limit = job.state.lock().expect("job state poisoned").merged + shared.window;
        {
            let queue = job.queue.lock().expect("job queue poisoned");
            match queue.front() {
                None => continue,
                // The whole queue front is past the window: backpressured.
                Some(&front) if front >= limit => continue,
                Some(_) => {}
            }
        }
        let mut chunk = take_chunk(&job.queue, shared.workers.max(1) as u32);
        // Return the tail beyond the window to the queue front; claiming it
        // now would only bloat the reorder buffer.
        if let Some(cut) = chunk.iter().position(|&i| i >= limit) {
            let mut queue = job.queue.lock().expect("job queue poisoned");
            for &i in chunk[cut..].iter().rev() {
                queue.push_front(i);
            }
            chunk.truncate(cut);
        }
        if chunk.is_empty() {
            continue;
        }
        table.rr = (slot + 1) % slots;
        return Some((job, chunk));
    }
    None
}

/// Executes one claimed chunk, feeding each result to the job's reorder
/// buffer as it lands.  Bails between cells if the job is cancelled.
fn run_chunk(shared: &Shared, job: &Arc<Job>, chunk: Vec<usize>) {
    let span = quanto_obs::span_with("serve.chunk", &chunk.len().to_string());
    for index in chunk {
        if job.cancelled.load(Ordering::Relaxed) {
            break;
        }
        let result = execute_or_cached(
            index,
            job.scenarios[index].clone(),
            Retention::Stream,
            shared.cache.as_ref(),
        );
        shared
            .stats
            .scenarios_executed
            .fetch_add(1, Ordering::Relaxed);
        job.deliver(index, result, shared);
        // Merging may have reopened this job's backpressure window.
        shared.work.notify_all();
    }
    drop(span);
    quanto_obs::flush_thread();
}
