#![deny(missing_docs)]
//! `quanto-serve`: sweep-as-a-service.
//!
//! The CLI sweep (`fleet_sweep`) and the distributed sweep
//! ([`quanto_fleet::dist`]) both assume one sweep owns the process.  This
//! crate turns the same machinery into a long-lived daemon: many clients
//! submit [`quanto_fleet::GridSpec`] jobs over TCP, all jobs share **one**
//! worker pool, and every client watches its own job's
//! [`quanto_fleet::FleetProgress`] events stream back live.
//!
//! The moving parts, each its own module:
//!
//! * [`Server`] (`listener`) — binds, spawns the pool and the accept loop,
//!   hands back a [`ServerHandle`] for address queries and clean shutdown;
//! * `registry` — the job table: per-job chunk queue, reorder buffer and
//!   [`quanto_fleet::ReportAccumulator`], so a job's final stream digest is
//!   byte-identical to the same grid run in-process;
//! * `scheduler` — the shared workers: fair round-robin over jobs, chunks
//!   claimed with [`quanto_fleet::dist::take_chunk`], per-job backpressure
//!   window so no job's reorder buffer grows unboundedly;
//! * `session` — one thread per connection speaking the JSON-lines client
//!   protocol (`submit` / `partial` / `metrics`, documented with worked
//!   examples in `docs/PROTOCOL.md`), plus a plain-HTTP `GET /metrics`;
//! * `partial` — the per-job prefix of merged per-scenario summaries, so a
//!   mid-sweep `partial` query answers without blocking the sweep;
//! * `metrics` — renders daemon counters plus the merged
//!   [`quanto_obs::harvest`] registry as deterministic metrics text;
//! * [`client`] — the blocking client `fleet_sweep --server` and the tests
//!   use.
//!
//! Jobs probe the content-addressed [`quanto_fleet::ResultCache`] before
//! queueing work, so a warm cell never occupies a worker.
//!
//! # Example
//!
//! ```
//! use quanto_serve::{client, Server, ServeConfig};
//!
//! let server = Server::bind(
//!     "127.0.0.1:0",
//!     ServeConfig { workers: 2, cache_dir: None },
//! )
//! .unwrap();
//! let handle = server.start();
//! let addr = handle.addr().to_string();
//!
//! let grid = "[grid]\nname = docs\nseconds = 1\n\n[cell.idle]\napp = idle\n";
//! let outcome = client::run_sweep(&addr, grid, &Default::default(), |_event| {}).unwrap();
//! assert_eq!(outcome.total, 1);
//! assert!(client::digest_of(&outcome.summary).is_some());
//! handle.shutdown();
//! ```

mod listener;
mod metrics;
mod partial;
mod registry;
mod scheduler;
mod session;

pub mod client;

pub use listener::{Server, ServerHandle};

use std::path::PathBuf;

/// Version stamp of the client wire protocol.  Every `submit` request
/// carries it; a mismatch is rejected before any work is queued.  Bump it
/// when a message shape changes incompatibly (see `docs/PROTOCOL.md`).
pub const PROTO_VERSION: u64 = 1;

/// How a [`Server`] runs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads in the shared pool (minimum 1).  Every job's chunks
    /// are served from this one pool, round-robin across active jobs.
    pub workers: usize,
    /// Result-cache directory probed before queueing and written back to
    /// after simulating; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    /// One worker per available core, no cache.
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache_dir: None,
        }
    }
}
