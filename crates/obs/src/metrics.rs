//! Counters, gauges and power-of-two-bucket histograms with byte-stable
//! merge order.
//!
//! Each thread records into its own [`Registry`]; [`crate::harvest`] merges
//! them with commutative, associative rules (counters sum, gauges keep the
//! maximum, histograms add bucket-wise) over `BTreeMap` keys, so the merged
//! registry — and its [`Registry::to_text`] rendering — is byte-identical
//! for any thread count and any merge order. That is the property the
//! N-thread-vs-1-thread determinism test pins.

use std::collections::BTreeMap;

/// A histogram over `u64` values with one bucket per power of two.
///
/// Bucket `k` counts values `v` with `bit_width(v) == k`: bucket 0 holds
/// only zero, bucket 1 holds `1`, bucket 2 holds `2..=3`, bucket `k` holds
/// `2^(k-1) ..= 2^k - 1`. Coarse on purpose — occupancy and queue-depth
/// distributions need shape, not precision, and bucket-wise addition makes
/// the merge exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// The bucket index `v` falls in: its bit width.
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one value.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds another histogram bucket-wise.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// `(bucket index, count)` for every non-empty bucket, ascending.
    pub fn nonempty_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| (i, n))
            .collect()
    }
}

/// One thread's metrics; merged across threads at harvest.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Adds `n` to the counter `key`.
    pub fn counter_add(&mut self, key: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(key) {
            *c += n;
        } else {
            self.counters.insert(key.to_string(), n);
        }
    }

    /// Sets the gauge `key` to `v`.
    pub fn gauge_set(&mut self, key: &str, v: u64) {
        self.gauges.insert(key.to_string(), v);
    }

    /// Records `v` into the histogram `key`.
    pub fn observe(&mut self, key: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(key) {
            h.observe(v);
        } else {
            let mut h = Histogram::default();
            h.observe(v);
            self.histograms.insert(key.to_string(), h);
        }
    }

    /// The counter `key`, if recorded.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.get(key).copied()
    }

    /// The gauge `key`, if recorded.
    pub fn gauge(&self, key: &str) -> Option<u64> {
        self.gauges.get(key).copied()
    }

    /// The histogram `key`, if recorded.
    pub fn histogram(&self, key: &str) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// All counters, key-ascending.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges, key-ascending.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms, key-ascending.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, h)| (k.as_str(), h))
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Folds another registry in: counters sum, gauges keep the maximum,
    /// histograms add bucket-wise. Commutative and associative, so the
    /// result is independent of merge order and thread count.
    pub fn merge(&mut self, other: &Registry) {
        for (k, &v) in &other.counters {
            self.counter_add(k, v);
        }
        for (k, &v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(v);
        }
        for (k, h) in &other.histograms {
            if let Some(mine) = self.histograms.get_mut(k) {
                mine.merge(h);
            } else {
                self.histograms.insert(k.clone(), h.clone());
            }
        }
    }

    /// A deterministic text rendering: one line per metric, key-ascending
    /// within each section. Byte-identical for equal contents — the
    /// determinism tests compare these bytes directly.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            out.push_str(&format!("counter {k} {v}\n"));
        }
        for (k, v) in &self.gauges {
            out.push_str(&format!("gauge {k} {v}\n"));
        }
        for (k, h) in &self.histograms {
            out.push_str(&format!(
                "histogram {k} count={} sum={} min={} max={} buckets=",
                h.count(),
                h.sum(),
                h.min().unwrap_or(0),
                h.max().unwrap_or(0)
            ));
            for (i, (bucket, n)) in h.nonempty_buckets().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{bucket}:{n}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_split_at_powers_of_two() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(7), 3);
        assert_eq!(Histogram::bucket_of(8), 4);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::default();
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        for v in [3, 0, 17, 3] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 23);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(17));
        assert_eq!(h.nonempty_buckets(), vec![(0, 1), (2, 2), (5, 1)]);
    }

    #[test]
    fn merge_is_order_independent_and_thread_count_blind() {
        // Simulate the same stream of events recorded on 1 thread vs
        // sharded over 3, merged in two different orders: every rendering
        // must be byte-identical.
        let events: Vec<(u64, u64)> = (0..60).map(|i| (i % 7, i * 13 % 97)).collect();
        let record = |into: &mut Registry, slice: &[(u64, u64)]| {
            for &(c, v) in slice {
                into.counter_add("events", c);
                // Gauges are recorded as running maxima (how the runner
                // uses them), matching the merge's keep-the-max rule.
                let peak = into.gauge("peak").unwrap_or(0).max(v);
                into.gauge_set("peak", peak);
                into.observe("occupancy", v);
            }
        };
        let mut single = Registry::default();
        record(&mut single, &events);

        let shards: Vec<Registry> = events
            .chunks(20)
            .map(|chunk| {
                let mut r = Registry::default();
                record(&mut r, chunk);
                r
            })
            .collect();
        let mut forward = Registry::default();
        for s in &shards {
            forward.merge(s);
        }
        let mut backward = Registry::default();
        for s in shards.iter().rev() {
            backward.merge(s);
        }
        assert_eq!(forward.to_text(), backward.to_text());
        assert_eq!(forward.to_text(), single.to_text());
    }

    #[test]
    fn text_rendering_is_stable_and_sorted() {
        let mut r = Registry::default();
        r.counter_add("z.last", 2);
        r.counter_add("a.first", 1);
        r.gauge_set("mid", 9);
        r.observe("h", 5);
        assert_eq!(
            r.to_text(),
            "counter a.first 1\ncounter z.last 2\ngauge mid 9\nhistogram h count=1 sum=5 min=5 max=5 buckets=3:1\n"
        );
    }
}
