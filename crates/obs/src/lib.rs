//! `quanto-obs`: the sweep engine turning the paper's lens on itself.
//!
//! Quanto attributes a scarce resource (energy) to the activities that
//! spend it; this crate does the same for the simulator's own wall-clock.
//! It is a zero-dependency observability layer with two primitives:
//!
//! - **Spans** — thread-local stacks of named, nesting-checked intervals
//!   over one process-wide monotonic clock ([`span`], [`span_with`]).
//!   Closing a span out of order panics: a span tree that lies about
//!   nesting would attribute time to the wrong phase, which is worse than
//!   no attribution.
//! - **Metrics** — per-thread registries of counters, gauges and
//!   power-of-two-bucket histograms ([`counter_add`], [`gauge_set`],
//!   [`observe`]) merged at [`harvest`] time in byte-stable order (see
//!   [`metrics::Registry`]).
//!
//! # Determinism contract
//!
//! The layer is **off by default** and, crucially, *non-perturbing*: no
//! simulation hot path branches on the flag. Enabled or not, every pinned
//! fleet digest must hold byte-identical (enforced by
//! `crates/fleet/tests/obs_equivalence.rs`). All recording goes to
//! thread-local state — there is no cross-thread synchronization until a
//! thread exits (its state drains into a global sink) or [`harvest`] runs.
//!
//! When the flag is off, [`span`] returns an inert guard and the metric
//! calls return after one relaxed atomic load, so instrumented code pays
//! approximately nothing (pinned by the `obs_overhead` bench).

pub mod metrics;
pub mod profile;

pub use metrics::{Histogram, Registry};
pub use profile::{PhaseCell, Profile, ScenarioRow, WorkerRow};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static SINK: Mutex<Vec<ThreadDump>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Turns recording on or off process-wide. The first enable pins the
/// monotonic epoch all span timestamps are measured from.
pub fn set_enabled(on: bool) {
    if on {
        EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether recording is on. One relaxed load — the only cost the
/// instrumented hot paths pay when observability is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Microseconds since the recording epoch.
fn now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// One finished span: a named interval on one thread's stack.
#[derive(Debug, Clone)]
pub struct ClosedSpan {
    /// Span kind — one of the small fixed vocabulary the profile layer
    /// aggregates by (`"worker"`, `"scenario"`, `"build"`, `"run"`,
    /// `"analyze"`, `"stall"`, `"merge"`).
    pub name: &'static str,
    /// Free-form qualifier (scenario name, app kind); empty when none.
    pub detail: String,
    /// Start, µs since the epoch.
    pub start_us: u64,
    /// End, µs since the epoch.
    pub end_us: u64,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
}

impl ClosedSpan {
    /// Span duration in microseconds.
    pub fn dur_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Everything one thread recorded: its label, its closed spans (in close
/// order) and its metrics registry.
#[derive(Debug, Clone, Default)]
pub struct ThreadDump {
    /// `worker-N` for fleet workers, `thread-N` otherwise.
    pub label: String,
    /// Closed spans, in the order they closed.
    pub spans: Vec<ClosedSpan>,
    /// This thread's metrics.
    pub registry: Registry,
}

impl ThreadDump {
    fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.registry.is_empty()
    }
}

struct OpenSpan {
    name: &'static str,
    detail: String,
    start_us: u64,
}

/// Per-thread recording state. Dropping it (thread exit) drains what was
/// recorded into the global sink as a backstop; threads that must be
/// visible to a harvest right after a join call [`flush_thread`] instead.
struct ThreadState {
    label: String,
    open: Vec<OpenSpan>,
    closed: Vec<ClosedSpan>,
    registry: Registry,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            label: format!("thread-{}", NEXT_THREAD.fetch_add(1, Ordering::Relaxed)),
            open: Vec::new(),
            closed: Vec::new(),
            registry: Registry::default(),
        }
    }

    fn take_dump(&mut self) -> ThreadDump {
        ThreadDump {
            label: self.label.clone(),
            spans: std::mem::take(&mut self.closed),
            registry: std::mem::take(&mut self.registry),
        }
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        let dump = self.take_dump();
        if !dump.is_empty() {
            if let Ok(mut sink) = SINK.lock() {
                sink.push(dump);
            }
        }
    }
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Names the current thread in dumps and profiles (e.g. `worker-3`).
/// No-op while recording is off.
pub fn set_thread_label(label: &str) {
    if !enabled() {
        return;
    }
    STATE.with(|s| s.borrow_mut().label = label.to_string());
}

/// An open span; closing happens on drop. Guards must drop in strict LIFO
/// order — a guard outliving a span opened after it panics at drop time.
#[must_use = "a span measures nothing unless it is held"]
pub struct SpanGuard {
    /// Depth this span was opened at; `u32::MAX` marks an inert guard.
    depth: u32,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard { depth: u32::MAX };
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.depth == u32::MAX {
            return;
        }
        let end_us = now_us();
        STATE.with(|s| {
            let mut st = s.borrow_mut();
            let top = st.open.len() as u32;
            if top != self.depth + 1 {
                // Unbalanced exit: closing a span that is not the top of
                // this thread's stack. Attribute nothing — and fail loudly,
                // unless a panic is already unwinding through the guards.
                if !std::thread::panicking() {
                    panic!(
                        "unbalanced span exit: closing depth {} with stack at {}",
                        self.depth, top
                    );
                }
                return;
            }
            let open = st.open.pop().expect("stack nonempty: top > 0");
            let depth = st.open.len() as u32;
            st.closed.push(ClosedSpan {
                name: open.name,
                detail: open.detail,
                start_us: open.start_us,
                end_us,
                depth,
            });
        });
    }
}

/// Opens a span named `name` on this thread's stack. Inert when recording
/// is off.
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, "")
}

/// Opens a span with a detail qualifier (allocated only while recording).
pub fn span_with(name: &'static str, detail: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard::INERT;
    }
    let start_us = now_us();
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let depth = st.open.len() as u32;
        st.open.push(OpenSpan {
            name,
            detail: detail.to_string(),
            start_us,
        });
        SpanGuard { depth }
    })
}

/// Adds `n` to the counter `key` on this thread. No-op while off.
#[inline]
pub fn counter_add(key: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    STATE.with(|s| s.borrow_mut().registry.counter_add(key, n));
}

/// Sets the gauge `key` on this thread (merge keeps the maximum across
/// threads). No-op while off.
#[inline]
pub fn gauge_set(key: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    STATE.with(|s| s.borrow_mut().registry.gauge_set(key, v));
}

/// Records `v` into the histogram `key` on this thread. No-op while off.
#[inline]
pub fn observe(key: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    STATE.with(|s| s.borrow_mut().registry.observe(key, v));
}

/// Hands the calling thread's recorded data to the global sink now.
///
/// Worker threads must call this as their last act: `thread::scope` (and
/// `JoinHandle::join` on some platforms) unblocks when the spawned closure
/// returns, which is *before* the thread's TLS destructors run — so a
/// harvest right after a join can miss dumps that only the destructor
/// would have flushed. The destructor stays as a backstop for threads that
/// never flush explicitly; flushing twice is harmless (the second dump is
/// empty and dropped).
pub fn flush_thread() {
    let dump = STATE.with(|s| s.borrow_mut().take_dump());
    if !dump.is_empty() {
        SINK.lock().expect("obs sink poisoned").push(dump);
    }
}

/// Everything recorded so far: per-thread dumps (sorted by label for
/// stable output) plus the registries merged into one.
#[derive(Debug, Clone, Default)]
pub struct HarvestResult {
    /// One dump per thread that recorded anything, sorted by label.
    pub threads: Vec<ThreadDump>,
    /// All per-thread registries merged ([`Registry::merge`] semantics).
    pub merged: Registry,
}

impl HarvestResult {
    /// Renders the harvest as deterministic metrics text: the merged
    /// registry in [`Registry::to_text`] format, with an `obs.threads`
    /// gauge recording how many threads contributed.  This is the body
    /// the `quanto-serve` metrics endpoint builds on, and a convenient
    /// one-call dump for CLI `--obs` summaries.
    pub fn to_text(&self) -> String {
        let mut registry = self.merged.clone();
        registry.gauge_set("obs.threads", self.threads.len() as u64);
        registry.to_text()
    }
}

/// Drains and returns everything recorded so far: dumps parked in the
/// global sink by flushed or exited threads, plus the calling thread's own
/// state. Threads that recorded data must have called [`flush_thread`] (or
/// fully terminated) first — a still-running thread's data is simply not
/// there yet.
pub fn harvest() -> HarvestResult {
    let mut threads: Vec<ThreadDump> = {
        let mut sink = SINK.lock().expect("obs sink poisoned");
        std::mem::take(&mut *sink)
    };
    let own = STATE.with(|s| s.borrow_mut().take_dump());
    if !own.is_empty() {
        threads.push(own);
    }
    threads.sort_by(|a, b| a.label.cmp(&b.label));
    let mut merged = Registry::default();
    for t in &threads {
        merged.merge(&t.registry);
    }
    HarvestResult { threads, merged }
}

/// Clears the global sink and the calling thread's state (label included).
/// Test scaffolding — production code harvests instead.
pub fn reset() {
    SINK.lock().expect("obs sink poisoned").clear();
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        st.open.clear();
        st.closed.clear();
        st.registry = Registry::default();
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests here mutate process-global state (the enabled flag, the sink);
    /// serialize them so the default multi-threaded test runner cannot
    /// interleave their enable/disable windows.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_and_metrics_record_nothing() {
        let _g = lock();
        set_enabled(false);
        reset();
        {
            let _s = span("worker");
            counter_add("engine.events_dispatched", 5);
            observe("runner.reorder_window_occupancy", 3);
        }
        let h = harvest();
        assert!(h.threads.is_empty());
        assert!(h.merged.is_empty());
    }

    #[test]
    fn spans_nest_and_close_in_lifo_order() {
        let _g = lock();
        set_enabled(true);
        reset();
        {
            let _outer = span_with("scenario", "lpl_ch26_seed1");
            {
                let _inner = span("run");
            }
        }
        set_enabled(false);
        let h = harvest();
        assert_eq!(h.threads.len(), 1);
        let spans = &h.threads[0].spans;
        // Close order: inner first.
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].name, spans[0].depth), ("run", 1));
        assert_eq!((spans[1].name, spans[1].depth), ("scenario", 0));
        assert_eq!(spans[1].detail, "lpl_ch26_seed1");
        assert!(spans[0].start_us >= spans[1].start_us);
        assert!(spans[0].end_us <= spans[1].end_us);
    }

    #[test]
    fn unbalanced_span_exit_panics() {
        let _g = lock();
        set_enabled(true);
        reset();
        let result = std::panic::catch_unwind(|| {
            let outer = span("worker");
            let inner = span("run");
            // Dropping the outer guard while the inner is still open is an
            // unbalanced exit.
            drop(outer);
            drop(inner);
        });
        set_enabled(false);
        reset();
        assert!(result.is_err(), "out-of-order span close must panic");
    }

    #[test]
    fn counters_accumulate_and_merge_across_threads() {
        let _g = lock();
        set_enabled(true);
        reset();
        counter_add("engine.heap_pushes", 2);
        counter_add("engine.heap_pushes", 3);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                scope.spawn(|| {
                    counter_add("engine.heap_pushes", 10);
                    flush_thread();
                });
            }
        });
        set_enabled(false);
        let h = harvest();
        assert_eq!(h.merged.counter("engine.heap_pushes"), Some(25));
    }

    #[test]
    fn thread_labels_name_the_dumps() {
        let _g = lock();
        set_enabled(true);
        reset();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                set_thread_label("worker-0");
                counter_add("x", 1);
                flush_thread();
            });
        });
        set_enabled(false);
        let h = harvest();
        assert_eq!(h.threads.len(), 1);
        assert_eq!(h.threads[0].label, "worker-0");
    }
}
