//! Profile assembly: turns a raw [`HarvestResult`] into the documents
//! `fleet_sweep --obs` surfaces — a human-readable attribution table, a
//! structured JSON profile, and a chrome://tracing-compatible trace-event
//! array.
//!
//! The builder keys on the span-name vocabulary the fleet layer emits:
//! `worker` (one per worker loop), `scenario` (detail = scenario name),
//! `build`/`run`/`analyze` (detail = app kind), `stall` (backpressure
//! waits), `merge` (reorder-loop work) and `send` (result handoff to the
//! merge thread). Unknown names pass through to
//! the trace array untouched, so new instrumentation shows up in viewers
//! before the table learns about it.

use crate::{ClosedSpan, HarvestResult};
use std::collections::BTreeMap;

/// Aggregated time for one `(phase, scenario kind)` cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseCell {
    /// Phase name: `build`, `run` or `analyze`.
    pub phase: String,
    /// App kind the phase ran for (`lpl`, `blink`, …).
    pub kind: String,
    /// Total time across all such spans, µs.
    pub total_us: u64,
    /// Number of spans aggregated.
    pub count: u64,
}

/// Utilization of one worker thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerRow {
    /// Thread label (`worker-0`, …).
    pub label: String,
    /// Total time inside `worker` spans, µs.
    pub elapsed_us: u64,
    /// Total time inside `scenario` spans, µs.
    pub busy_us: u64,
    /// Total time inside `stall` (backpressure) spans, µs.
    pub stall_us: u64,
    /// Total time inside `merge` (reorder-loop) spans, µs.
    pub merge_us: u64,
    /// Total time inside `send` (result handoff) spans, µs.
    pub send_us: u64,
    /// Total time inside phase (`build`/`run`/`analyze`) spans, µs.
    pub phase_us: u64,
    /// Scenarios this worker executed.
    pub scenarios: u64,
}

/// Aggregated cost of one scenario (across repeat runs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioRow {
    /// Scenario name.
    pub name: String,
    /// Total time across runs, µs.
    pub total_us: u64,
    /// Times the scenario ran.
    pub runs: u64,
}

/// The assembled profile.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Phase × kind attribution, sorted by (phase, kind).
    pub phases: Vec<PhaseCell>,
    /// Worker utilization, sorted by label.
    pub workers: Vec<WorkerRow>,
    /// Scenario costs, most expensive first.
    pub scenarios: Vec<ScenarioRow>,
}

const PHASE_NAMES: [&str; 3] = ["build", "run", "analyze"];

impl Profile {
    /// Aggregates a harvest into phase, worker and scenario tables.
    pub fn build(h: &HarvestResult) -> Profile {
        let mut phases: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        let mut scenarios: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut workers = Vec::new();
        for t in &h.threads {
            let mut row = WorkerRow {
                label: t.label.clone(),
                elapsed_us: 0,
                busy_us: 0,
                stall_us: 0,
                merge_us: 0,
                send_us: 0,
                phase_us: 0,
                scenarios: 0,
            };
            for s in &t.spans {
                match s.name {
                    "worker" => row.elapsed_us += s.dur_us(),
                    "scenario" => {
                        row.busy_us += s.dur_us();
                        row.scenarios += 1;
                        let slot = scenarios.entry(s.detail.clone()).or_insert((0, 0));
                        slot.0 += s.dur_us();
                        slot.1 += 1;
                    }
                    "stall" => row.stall_us += s.dur_us(),
                    "merge" => row.merge_us += s.dur_us(),
                    "send" => row.send_us += s.dur_us(),
                    name if PHASE_NAMES.contains(&name) => {
                        row.phase_us += s.dur_us();
                        let key = (name.to_string(), s.detail.clone());
                        let slot = phases.entry(key).or_insert((0, 0));
                        slot.0 += s.dur_us();
                        slot.1 += 1;
                    }
                    _ => {}
                }
            }
            if row.elapsed_us > 0 || row.busy_us > 0 {
                workers.push(row);
            }
        }
        let mut scenario_rows: Vec<ScenarioRow> = scenarios
            .into_iter()
            .map(|(name, (total_us, runs))| ScenarioRow {
                name,
                total_us,
                runs,
            })
            .collect();
        // Most expensive first; ties break by name so the order is stable.
        scenario_rows.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        Profile {
            phases: phases
                .into_iter()
                .map(|((phase, kind), (total_us, count))| PhaseCell {
                    phase,
                    kind,
                    total_us,
                    count,
                })
                .collect(),
            workers,
            scenarios: scenario_rows,
        }
    }

    /// The human-readable profile: time by phase × kind, worker
    /// utilization, the top `top_n` hottest scenarios, and the merged
    /// counters.
    pub fn render_table(&self, h: &HarvestResult, top_n: usize) -> String {
        let mut out = String::new();
        out.push_str("== obs profile ==\n");
        out.push_str("phase      kind              total        spans\n");
        for c in &self.phases {
            out.push_str(&format!(
                "{:<10} {:<14} {:>12} {:>8}\n",
                c.phase,
                c.kind,
                fmt_us(c.total_us),
                c.count
            ));
        }
        out.push_str(
            "\nworker     elapsed      busy         stall        merge        send         util\n",
        );
        for w in &self.workers {
            let util = if w.elapsed_us > 0 {
                100.0 * w.busy_us as f64 / w.elapsed_us as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "{:<10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>6.1}%\n",
                w.label,
                fmt_us(w.elapsed_us),
                fmt_us(w.busy_us),
                fmt_us(w.stall_us),
                fmt_us(w.merge_us),
                fmt_us(w.send_us),
                util
            ));
        }
        out.push_str("\nhottest scenarios\n");
        for s in self.scenarios.iter().take(top_n) {
            out.push_str(&format!(
                "{:<28} {:>12}  ({} runs)\n",
                s.name,
                fmt_us(s.total_us),
                s.runs
            ));
        }
        if !h.merged.is_empty() {
            out.push_str("\nmerged metrics\n");
            out.push_str(&h.merged.to_text());
        }
        out
    }

    /// The structured profile document: aggregates plus merged metrics plus
    /// a chrome://tracing-compatible `trace_events` array (load the file in
    /// a trace viewer and read the `trace_events` key, or extract it as a
    /// standalone JSON array).
    pub fn to_json(&self, h: &HarvestResult) -> String {
        let mut out = String::from("{\"version\":1,");
        out.push_str("\"phases\":[");
        for (i, c) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"phase\":{},\"kind\":{},\"total_us\":{},\"count\":{}}}",
                json_str(&c.phase),
                json_str(&c.kind),
                c.total_us,
                c.count
            ));
        }
        out.push_str("],\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":{},\"elapsed_us\":{},\"busy_us\":{},\"stall_us\":{},\"merge_us\":{},\"send_us\":{},\"phase_us\":{},\"scenarios\":{}}}",
                json_str(&w.label),
                w.elapsed_us,
                w.busy_us,
                w.stall_us,
                w.merge_us,
                w.send_us,
                w.phase_us,
                w.scenarios
            ));
        }
        out.push_str("],\"scenarios\":[");
        for (i, s) in self.scenarios.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"total_us\":{},\"runs\":{}}}",
                json_str(&s.name),
                s.total_us,
                s.runs
            ));
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in h.merged.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(k), v));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in h.merged.gauges().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", json_str(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, hist)) in h.merged.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                json_str(k),
                hist.count(),
                hist.sum(),
                hist.min().unwrap_or(0),
                hist.max().unwrap_or(0)
            ));
            for (j, (bucket, n)) in hist.nonempty_buckets().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bucket},{n}]"));
            }
            out.push_str("]}");
        }
        out.push_str("},\"trace_events\":[");
        let mut first = true;
        for (tid, t) in h.threads.iter().enumerate() {
            if !first {
                out.push(',');
            }
            first = false;
            // Thread-name metadata event, so viewers show worker labels.
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
                tid,
                json_str(&t.label)
            ));
            for s in &t.spans {
                out.push(',');
                out.push_str(&trace_event(s, tid));
            }
        }
        out.push_str("]}");
        out
    }
}

/// One complete ("X"-phase) chrome trace event for a closed span.
fn trace_event(s: &ClosedSpan, tid: usize) -> String {
    let name = if s.detail.is_empty() {
        s.name.to_string()
    } else {
        format!("{} {}", s.name, s.detail)
    };
    format!(
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":{},\"cat\":{},\"ts\":{},\"dur\":{}}}",
        tid,
        json_str(&name),
        json_str(s.name),
        s.start_us,
        s.dur_us()
    )
}

/// Formats microseconds for the table (`12.3 ms`, `4.56 s`).
fn fmt_us(us: u64) -> String {
    let us = us as f64;
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.1} ms", us / 1e3)
    } else {
        format!("{us:.0} µs")
    }
}

/// Minimal JSON string escaping (quotes, backslash, control bytes).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClosedSpan, Registry, ThreadDump};

    fn span(name: &'static str, detail: &str, start: u64, end: u64, depth: u32) -> ClosedSpan {
        ClosedSpan {
            name,
            detail: detail.to_string(),
            start_us: start,
            end_us: end,
            depth,
        }
    }

    fn harvest_fixture() -> HarvestResult {
        let mut registry = Registry::default();
        registry.counter_add("engine.events_dispatched", 42);
        let threads = vec![ThreadDump {
            label: "worker-0".to_string(),
            spans: vec![
                span("build", "lpl", 10, 40, 2),
                span("run", "lpl", 40, 900, 2),
                span("analyze", "lpl", 900, 960, 2),
                span("scenario", "lpl_ch26_seed1", 5, 970, 1),
                span("stall", "", 970, 1000, 1),
                span("worker", "", 0, 1010, 0),
            ],
            registry: registry.clone(),
        }];
        HarvestResult {
            threads,
            merged: registry,
        }
    }

    #[test]
    fn build_attributes_time_to_phases_workers_and_scenarios() {
        let p = Profile::build(&harvest_fixture());
        assert_eq!(p.phases.len(), 3);
        let run = p.phases.iter().find(|c| c.phase == "run").unwrap();
        assert_eq!(
            (run.kind.as_str(), run.total_us, run.count),
            ("lpl", 860, 1)
        );
        assert_eq!(p.workers.len(), 1);
        let w = &p.workers[0];
        assert_eq!(
            (w.elapsed_us, w.busy_us, w.stall_us, w.phase_us, w.scenarios),
            (1010, 965, 30, 950, 1)
        );
        assert_eq!(p.scenarios.len(), 1);
        assert_eq!(p.scenarios[0].name, "lpl_ch26_seed1");
    }

    #[test]
    fn json_document_has_the_advertised_shape() {
        let h = harvest_fixture();
        let p = Profile::build(&h);
        let json = p.to_json(&h);
        assert!(json.starts_with("{\"version\":1,"));
        for key in [
            "\"phases\":[",
            "\"workers\":[",
            "\"scenarios\":[",
            "\"counters\":{",
            "\"histograms\":{",
            "\"trace_events\":[",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"engine.events_dispatched\":42"));
    }

    #[test]
    fn table_renders_phases_and_utilization() {
        let h = harvest_fixture();
        let p = Profile::build(&h);
        let table = p.render_table(&h, 10);
        assert!(table.contains("== obs profile =="));
        assert!(table.contains("worker-0"));
        assert!(table.contains("lpl_ch26_seed1"));
        assert!(table.contains("engine.events_dispatched"));
    }

    #[test]
    fn json_strings_escape_quotes_and_controls() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
