//! 2.4 GHz channel arithmetic.
//!
//! 802.15.4 and 802.11b/g share the 2.4 GHz ISM band.  The interference case
//! study (Figure 13) puts an 802.11b access point on Wi-Fi channel 6
//! (2.437 GHz) next to a mote listening first on 802.15.4 channel 17
//! (2.435 GHz — right under the access point) and then on channel 26
//! (2.480 GHz — the only channel clear of North-American Wi-Fi).  Whether a
//! mote's clear-channel assessment sees Wi-Fi energy is a question of
//! spectral overlap, which this module computes.

/// Center frequency of an 802.15.4 channel (11–26), in MHz.
///
/// # Panics
///
/// Panics if the channel is outside 11–26.
pub fn ieee802154_center_mhz(channel: u8) -> u32 {
    assert!(
        (11..=26).contains(&channel),
        "802.15.4 channels are 11..=26"
    );
    2_405 + 5 * (channel as u32 - 11)
}

/// Approximate occupied bandwidth of an 802.15.4 signal, in MHz.
pub const IEEE802154_BANDWIDTH_MHZ: u32 = 2;

/// Center frequency of an 802.11b/g channel (1–13), in MHz.
///
/// # Panics
///
/// Panics if the channel is outside 1–13.
pub fn wifi_center_mhz(channel: u8) -> u32 {
    assert!((1..=13).contains(&channel), "802.11b/g channels are 1..=13");
    2_412 + 5 * (channel as u32 - 1)
}

/// Approximate occupied bandwidth of an 802.11b signal, in MHz.
pub const WIFI_BANDWIDTH_MHZ: u32 = 22;

/// Whether a Wi-Fi transmission on `wifi_channel` deposits detectable energy
/// into 802.15.4 `zigbee_channel`.
///
/// The two signals overlap when the distance between their center frequencies
/// is less than the sum of their half-bandwidths.
pub fn overlaps(wifi_channel: u8, zigbee_channel: u8) -> bool {
    let wifi = wifi_center_mhz(wifi_channel) as i64;
    let zig = ieee802154_center_mhz(zigbee_channel) as i64;
    let guard = (WIFI_BANDWIDTH_MHZ + IEEE802154_BANDWIDTH_MHZ) as i64 / 2;
    (wifi - zig).abs() < guard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn center_frequencies_match_standards() {
        assert_eq!(ieee802154_center_mhz(11), 2_405);
        assert_eq!(ieee802154_center_mhz(17), 2_435);
        assert_eq!(ieee802154_center_mhz(26), 2_480);
        assert_eq!(wifi_center_mhz(1), 2_412);
        assert_eq!(wifi_center_mhz(6), 2_437);
        assert_eq!(wifi_center_mhz(11), 2_462);
    }

    #[test]
    fn paper_scenario_overlap() {
        // Wi-Fi channel 6 clobbers 802.15.4 channel 17 but not channel 26.
        assert!(overlaps(6, 17));
        assert!(!overlaps(6, 26));
        // Channels 16 through 19 sit under the core of Wi-Fi channel 6.
        for z in 16..=19 {
            assert!(overlaps(6, z), "zigbee {z} should overlap wifi 6");
        }
        // Channel 11 and 12 are clear of Wi-Fi 6.
        assert!(!overlaps(6, 11));
    }

    #[test]
    #[should_panic(expected = "802.15.4 channels")]
    fn bad_zigbee_channel_panics() {
        ieee802154_center_mhz(5);
    }

    #[test]
    #[should_panic(expected = "802.11b/g channels")]
    fn bad_wifi_channel_panics() {
        wifi_center_mhz(14);
    }
}
