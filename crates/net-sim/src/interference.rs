//! 802.11 interference sources.
//!
//! The paper's interference experiment places a mote 10 cm from an 802.11b
//! access point carrying traffic; the mote's low-power-listening check then
//! falsely detects channel activity about 18 % of the time on the overlapping
//! channel.  We model the access point as a bursty on/off source: time is
//! divided into slots, and each slot is "busy" with a configured probability,
//! decided by a deterministic hash of the slot index so the simulation is
//! reproducible and can be queried at arbitrary times in any order.

use crate::channel::overlaps;
use hw_model::{SimDuration, SimTime};

/// A bursty 802.11b/g traffic source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WifiInterferer {
    /// The Wi-Fi channel the access point operates on (1–13).
    pub wifi_channel: u8,
    /// Slot length for the on/off traffic pattern.
    pub slot: SimDuration,
    /// Probability that a slot carries traffic (0.0–1.0).
    pub busy_probability: f64,
    /// Seed decorrelating different interferers.
    pub seed: u64,
}

impl WifiInterferer {
    /// The paper's scenario: an access point on Wi-Fi channel 6 with moderate
    /// traffic.
    pub fn paper_channel6(seed: u64) -> Self {
        WifiInterferer {
            wifi_channel: 6,
            slot: SimDuration::from_millis(20),
            busy_probability: 0.18,
            seed,
        }
    }

    /// Whether the interferer is transmitting at `at`.
    pub fn transmitting_at(&self, at: SimTime) -> bool {
        if self.busy_probability <= 0.0 {
            return false;
        }
        if self.busy_probability >= 1.0 {
            return true;
        }
        let slot_idx = at.as_micros() / self.slot.as_micros().max(1);
        // SplitMix64-style hash of (slot, seed) -> uniform in [0, 1).
        let mut z = slot_idx
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.seed.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let u = (z >> 11) as f64 / (1u64 << 53) as f64;
        u < self.busy_probability
    }

    /// Whether a mote listening on 802.15.4 channel `zigbee_channel` would
    /// detect this interferer's energy at `at`.
    pub fn detected_on(&self, zigbee_channel: u8, at: SimTime) -> bool {
        overlaps(self.wifi_channel, zigbee_channel) && self.transmitting_at(at)
    }

    /// The long-run fraction of time the interferer is on the air, measured
    /// by sampling `samples` slots starting at time zero.  Useful for tests
    /// and for calibrating experiment expectations.
    pub fn measured_duty(&self, samples: usize) -> f64 {
        if samples == 0 {
            return 0.0;
        }
        let mut busy = 0usize;
        for i in 0..samples {
            let t = SimTime::from_micros(i as u64 * self.slot.as_micros() + 1);
            if self.transmitting_at(t) {
                busy += 1;
            }
        }
        busy as f64 / samples as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_matches_configured_probability() {
        let i = WifiInterferer::paper_channel6(3);
        let duty = i.measured_duty(20_000);
        assert!((duty - 0.18).abs() < 0.02, "measured duty {duty}");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = WifiInterferer::paper_channel6(1);
        let b = WifiInterferer::paper_channel6(1);
        let c = WifiInterferer::paper_channel6(2);
        let t = SimTime::from_millis(12_345);
        assert_eq!(a.transmitting_at(t), b.transmitting_at(t));
        // Different seeds disagree somewhere.
        let disagreements = (0..1000)
            .filter(|i| {
                let t = SimTime::from_millis(i * 20 + 1);
                a.transmitting_at(t) != c.transmitting_at(t)
            })
            .count();
        assert!(disagreements > 100);
    }

    #[test]
    fn detection_requires_spectral_overlap() {
        let i = WifiInterferer {
            busy_probability: 1.0,
            ..WifiInterferer::paper_channel6(0)
        };
        let t = SimTime::from_secs(1);
        assert!(i.detected_on(17, t));
        assert!(!i.detected_on(26, t));
    }

    #[test]
    fn extreme_probabilities() {
        let never = WifiInterferer {
            busy_probability: 0.0,
            ..WifiInterferer::paper_channel6(0)
        };
        let always = WifiInterferer {
            busy_probability: 1.0,
            ..WifiInterferer::paper_channel6(0)
        };
        assert_eq!(never.measured_duty(100), 0.0);
        assert_eq!(always.measured_duty(100), 1.0);
    }
}
