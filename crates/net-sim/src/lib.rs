//! Multi-node network simulation for the Quanto reproduction.
//!
//! Quanto's activity labels cross node boundaries inside packets, and its
//! headline interference case study needs an 802.11 access point sharing the
//! 2.4 GHz band with the mote.  This crate supplies that environment:
//!
//! * [`channel`] — 802.15.4 / 802.11 channel frequencies and spectral
//!   overlap,
//! * [`interference::WifiInterferer`] — a bursty, deterministic 802.11
//!   traffic source,
//! * [`medium::Medium`] — the shared ether: in-flight mote transmissions,
//!   interference, and the connectivity [`medium::Topology`],
//! * [`radio`] — the pluggable propagation models behind the medium
//!   ([`radio::Ideal`], [`radio::UnitDisk`], [`radio::PathLoss`],
//!   [`radio::Mobility`]), and
//! * [`netsim::NetSim`] — the coordinator that advances every node in global
//!   time order and delivers frames between them.

pub mod channel;
pub mod interference;
pub mod medium;
pub mod netsim;
pub mod radio;

pub use channel::{ieee802154_center_mhz, overlaps, wifi_center_mhz};
pub use interference::WifiInterferer;
pub use medium::{Medium, Topology};
pub use netsim::{NetScratch, NetSim};
pub use radio::{
    DeliveryCounters, Ideal, MediumEffort, Mobility, MobilityTrace, OnAir, PathLoss,
    PathLossParams, Position, PositionedMedium, Positions, RadioMedium, Reception, SpatialIndex,
    UnitDisk,
};
