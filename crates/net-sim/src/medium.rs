//! The shared radio medium.
//!
//! The medium answers clear-channel assessments (it knows about every mote
//! transmission in flight and every 802.11 interferer) and decides which
//! nodes hear which frames (via a simple connectivity topology).

use crate::interference::WifiInterferer;
use hw_model::{SimDuration, SimTime};
use os_sim::{Emission, World};
use quanto_core::NodeId;
use std::collections::HashSet;

/// Delay between the start of a transmission and the receiver's SFD
/// interrupt (preamble + synchronization header at 250 kbps).
pub(crate) const SFD_DELAY: SimDuration = SimDuration::from_micros(160);

/// Which pairs of nodes can hear each other.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// `None` means every node hears every other node.
    links: Option<HashSet<(NodeId, NodeId)>>,
}

impl Topology {
    /// Full connectivity: every node hears every other node.
    pub fn full() -> Self {
        Topology { links: None }
    }

    /// An explicit link list (symmetric links are added in both directions).
    pub fn from_links(pairs: &[(NodeId, NodeId)]) -> Self {
        let mut links = HashSet::new();
        for (a, b) in pairs {
            links.insert((*a, *b));
            links.insert((*b, *a));
        }
        Topology { links: Some(links) }
    }

    /// Whether `to` can hear a transmission from `from`.
    pub fn connected(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return false;
        }
        match &self.links {
            None => true,
            Some(links) => links.contains(&(from, to)),
        }
    }
}

/// One mote transmission currently (or recently) on the air.
#[derive(Debug, Clone)]
struct OnAir {
    from: NodeId,
    channel: u8,
    start: SimTime,
    end: SimTime,
}

/// The shared 2.4 GHz medium: mote transmissions plus Wi-Fi interference.
#[derive(Debug, Clone, Default)]
pub struct Medium {
    topology: Topology,
    interferers: Vec<WifiInterferer>,
    on_air: Vec<OnAir>,
}

impl Medium {
    /// Creates a quiet medium with full connectivity.
    pub fn new() -> Self {
        Medium {
            topology: Topology::full(),
            interferers: Vec::new(),
            on_air: Vec::new(),
        }
    }

    /// Replaces the connectivity topology.
    pub fn set_topology(&mut self, topology: Topology) {
        self.topology = topology;
    }

    /// The current topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Adds an 802.11 interference source.
    pub fn add_interferer(&mut self, interferer: WifiInterferer) {
        self.interferers.push(interferer);
    }

    /// Registers a mote transmission (so other motes' CCA sees it).
    pub fn register_transmission(&mut self, emission: &Emission) {
        self.on_air.push(OnAir {
            from: emission.from,
            channel: emission.channel,
            start: emission.start,
            end: emission.end,
        });
        // Garbage-collect transmissions that ended long ago.
        let horizon = emission.start;
        self.on_air
            .retain(|t| t.end + SimDuration::from_secs(1) >= horizon);
    }

    /// Whether any mote other than `node` is on the air on `channel` at `at`.
    pub fn mote_energy(&self, node: NodeId, channel: u8, at: SimTime) -> bool {
        self.on_air
            .iter()
            .any(|t| t.from != node && t.channel == channel && t.start <= at && at < t.end)
    }

    /// Whether any interferer deposits energy into `channel` at `at`.
    pub fn interference_energy(&self, channel: u8, at: SimTime) -> bool {
        self.interferers.iter().any(|i| i.detected_on(channel, at))
    }
}

impl World for Medium {
    fn channel_busy(&mut self, node: NodeId, channel: u8, at: SimTime) -> bool {
        self.mote_energy(node, channel, at) || self.interference_energy(channel, at)
    }

    /// Registers the frame on the air and delivers it, [`SFD_DELAY`] after
    /// the start of transmission, to every node the topology connects to the
    /// transmitter.
    fn transmit(&mut self, emission: &Emission, nodes: &[NodeId]) -> Vec<(NodeId, SimTime)> {
        self.register_transmission(emission);
        let sfd = emission.start + SFD_DELAY;
        nodes
            .iter()
            .copied()
            .filter(|to| self.topology.connected(emission.from, *to))
            .map(|to| (to, sfd))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use os_sim::AmPacket;

    fn emission(from: u8, channel: u8, start_ms: u64, end_ms: u64) -> Emission {
        Emission {
            from: NodeId(from),
            channel,
            packet: AmPacket::new(NodeId(from), NodeId(0xFF), 0, vec![]),
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
        }
    }

    #[test]
    fn topology_full_and_explicit() {
        let full = Topology::full();
        assert!(full.connected(NodeId(1), NodeId(4)));
        assert!(!full.connected(NodeId(1), NodeId(1)));

        let pair = Topology::from_links(&[(NodeId(1), NodeId(4))]);
        assert!(pair.connected(NodeId(1), NodeId(4)));
        assert!(pair.connected(NodeId(4), NodeId(1)));
        assert!(!pair.connected(NodeId(1), NodeId(9)));
    }

    #[test]
    fn cca_sees_other_motes_but_not_self() {
        let mut m = Medium::new();
        m.register_transmission(&emission(1, 17, 100, 105));
        assert!(m.channel_busy(NodeId(4), 17, SimTime::from_millis(102)));
        // The transmitter itself is excluded.
        assert!(!m.channel_busy(NodeId(1), 17, SimTime::from_millis(102)));
        // Different channel or different time: clear.
        assert!(!m.channel_busy(NodeId(4), 26, SimTime::from_millis(102)));
        assert!(!m.channel_busy(NodeId(4), 17, SimTime::from_millis(200)));
    }

    #[test]
    fn cca_sees_overlapping_interference() {
        let mut m = Medium::new();
        m.add_interferer(WifiInterferer {
            busy_probability: 1.0,
            ..WifiInterferer::paper_channel6(0)
        });
        assert!(m.channel_busy(NodeId(1), 17, SimTime::from_secs(3)));
        assert!(!m.channel_busy(NodeId(1), 26, SimTime::from_secs(3)));
    }

    #[test]
    fn old_transmissions_are_garbage_collected() {
        let mut m = Medium::new();
        m.register_transmission(&emission(1, 17, 0, 5));
        m.register_transmission(&emission(2, 17, 10_000, 10_005));
        assert_eq!(m.on_air.len(), 1, "the transmission from t=0 was dropped");
    }
}
