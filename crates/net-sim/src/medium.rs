//! The shared radio medium.
//!
//! The medium owns the *ether*: it knows about every mote transmission in
//! flight and every 802.11 interferer, answers clear-channel assessments,
//! and registers new frames on the air.  *Who hears which frame* is
//! delegated to a pluggable [`RadioMedium`] propagation model (see
//! [`crate::radio`]); the default [`crate::radio::Ideal`] model reproduces
//! the original explicit-topology simulator byte for byte.

use crate::interference::WifiInterferer;
use crate::radio::{DeliveryCounters, Ideal, OnAir, RadioMedium};
use hw_model::{SimDuration, SimTime};
use os_sim::{Emission, World};
use quanto_core::NodeId;
use std::collections::HashSet;

/// Delay between the start of a transmission and the receiver's SFD
/// interrupt (preamble + synchronization header at 250 kbps).
pub const SFD_DELAY: SimDuration = SimDuration::from_micros(160);

/// Which pairs of nodes can hear each other.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// `None` means every node hears every other node.
    links: Option<HashSet<(NodeId, NodeId)>>,
}

impl Topology {
    /// Full connectivity: every node hears every other node.
    pub fn full() -> Self {
        Topology { links: None }
    }

    /// An explicit link list (symmetric links are added in both directions).
    pub fn from_links(pairs: &[(NodeId, NodeId)]) -> Self {
        let mut links = HashSet::new();
        for (a, b) in pairs {
            links.insert((*a, *b));
            links.insert((*b, *a));
        }
        Topology { links: Some(links) }
    }

    /// Whether `to` can hear a transmission from `from`.
    pub fn connected(&self, from: NodeId, to: NodeId) -> bool {
        if from == to {
            return false;
        }
        match &self.links {
            None => true,
            Some(links) => links.contains(&(from, to)),
        }
    }
}

/// The shared 2.4 GHz medium: mote transmissions plus Wi-Fi interference,
/// with delivery decided by the pluggable propagation model.
#[derive(Debug)]
pub struct Medium {
    model: Box<dyn RadioMedium>,
    interferers: Vec<WifiInterferer>,
    on_air: Vec<OnAir>,
}

impl Default for Medium {
    fn default() -> Self {
        Medium::new()
    }
}

impl Medium {
    /// Creates a quiet medium with the ideal model and full connectivity.
    pub fn new() -> Self {
        Medium::with_model(Box::new(Ideal::full()))
    }

    /// Creates a quiet medium over an explicit propagation model.
    pub fn with_model(model: Box<dyn RadioMedium>) -> Self {
        Medium {
            model,
            interferers: Vec::new(),
            on_air: Vec::new(),
        }
    }

    /// Replaces the propagation model (frames already on the air stay).
    pub fn set_model(&mut self, model: Box<dyn RadioMedium>) {
        self.model = model;
    }

    /// Read-only access to the propagation model.
    pub fn model(&self) -> &dyn RadioMedium {
        self.model.as_ref()
    }

    /// Surrenders the model's spatial-index allocations to a workspace pool
    /// at teardown, if the model holds one (see
    /// [`RadioMedium::reclaim_spatial_index`]).
    pub fn reclaim_spatial_index(&mut self) -> Option<crate::radio::SpatialIndex> {
        self.model.reclaim_spatial_index()
    }

    /// Replaces the connectivity topology by installing an [`Ideal`] model
    /// over it (the pre-medium-subsystem API, kept for the explicit-topology
    /// scenarios).
    pub fn set_topology(&mut self, topology: Topology) {
        self.model = Box::new(Ideal::new(topology));
    }

    /// The current topology, when the model is driven by one (`None` for
    /// geometric and mobility models, which have no link list).
    pub fn topology(&self) -> Option<&Topology> {
        self.model.topology()
    }

    /// The model's delivery counters, when it tracks them (`None` for
    /// [`Ideal`]).
    pub fn counters(&self) -> Option<DeliveryCounters> {
        self.model.counters()
    }

    /// The model's effort counters, when it tracks them (path loss only).
    pub fn effort(&self) -> Option<crate::radio::MediumEffort> {
        self.model.effort()
    }

    /// Adds an 802.11 interference source.
    pub fn add_interferer(&mut self, interferer: WifiInterferer) {
        self.interferers.push(interferer);
    }

    /// Registers a mote transmission (so other motes' CCA sees it).
    pub fn register_transmission(&mut self, emission: &Emission) {
        self.on_air.push(OnAir {
            from: emission.from,
            channel: emission.channel,
            start: emission.start,
            end: emission.end,
        });
        // Garbage-collect transmissions that ended long ago.
        let horizon = emission.start;
        self.on_air
            .retain(|t| t.end + SimDuration::from_secs(1) >= horizon);
    }

    /// Whether any mote other than `node` is on the air on `channel` at `at`
    /// *and* close enough for `node`'s CCA to sense it.
    pub fn mote_energy(&mut self, node: NodeId, channel: u8, at: SimTime) -> bool {
        let model = &mut self.model;
        self.on_air.iter().any(|t| {
            t.from != node
                && t.channel == channel
                && t.start <= at
                && at < t.end
                && model.carrier_senses(node, t, at)
        })
    }

    /// Whether any interferer deposits energy into `channel` at `at`.
    pub fn interference_energy(&self, channel: u8, at: SimTime) -> bool {
        self.interferers.iter().any(|i| i.detected_on(channel, at))
    }
}

impl World for Medium {
    fn channel_busy(&mut self, node: NodeId, channel: u8, at: SimTime) -> bool {
        self.mote_energy(node, channel, at) || self.interference_energy(channel, at)
    }

    /// Registers the frame on the air and delivers it, [`SFD_DELAY`] after
    /// the start of transmission, to every node the propagation model says
    /// hears it.  Frames overlapping it on the same channel are passed to
    /// the model as capture-effect competitors.
    fn transmit(&mut self, emission: &Emission, nodes: &[NodeId]) -> Vec<(NodeId, SimTime)> {
        let competing: Vec<OnAir> = self
            .on_air
            .iter()
            .filter(|t| {
                t.from != emission.from
                    && t.channel == emission.channel
                    && t.start < emission.end
                    && emission.start < t.end
            })
            .cloned()
            .collect();
        self.register_transmission(emission);
        let sfd = emission.start + SFD_DELAY;
        self.model
            .deliver(emission, nodes, &competing)
            .into_iter()
            .map(|to| (to, sfd))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::{PathLoss, PathLossParams, Position, UnitDisk};
    use os_sim::AmPacket;

    fn emission(from: u32, channel: u8, start_ms: u64, end_ms: u64) -> Emission {
        Emission {
            from: NodeId(from),
            channel,
            packet: AmPacket::new(NodeId(from), NodeId(0xFF), 0, vec![]),
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
        }
    }

    #[test]
    fn topology_full_and_explicit() {
        let full = Topology::full();
        assert!(full.connected(NodeId(1), NodeId(4)));
        assert!(!full.connected(NodeId(1), NodeId(1)));

        let pair = Topology::from_links(&[(NodeId(1), NodeId(4))]);
        assert!(pair.connected(NodeId(1), NodeId(4)));
        assert!(pair.connected(NodeId(4), NodeId(1)));
        assert!(!pair.connected(NodeId(1), NodeId(9)));
    }

    #[test]
    fn cca_sees_other_motes_but_not_self() {
        let mut m = Medium::new();
        m.register_transmission(&emission(1, 17, 100, 105));
        assert!(m.channel_busy(NodeId(4), 17, SimTime::from_millis(102)));
        // The transmitter itself is excluded.
        assert!(!m.channel_busy(NodeId(1), 17, SimTime::from_millis(102)));
        // Different channel or different time: clear.
        assert!(!m.channel_busy(NodeId(4), 26, SimTime::from_millis(102)));
        assert!(!m.channel_busy(NodeId(4), 17, SimTime::from_millis(200)));
    }

    #[test]
    fn cca_sees_overlapping_interference() {
        let mut m = Medium::new();
        m.add_interferer(WifiInterferer {
            busy_probability: 1.0,
            ..WifiInterferer::paper_channel6(0)
        });
        assert!(m.channel_busy(NodeId(1), 17, SimTime::from_secs(3)));
        assert!(!m.channel_busy(NodeId(1), 26, SimTime::from_secs(3)));
    }

    #[test]
    fn old_transmissions_are_garbage_collected() {
        let mut m = Medium::new();
        m.register_transmission(&emission(1, 17, 0, 5));
        m.register_transmission(&emission(2, 17, 10_000, 10_005));
        assert_eq!(m.on_air.len(), 1, "the transmission from t=0 was dropped");
    }

    #[test]
    fn ideal_transmit_delivers_to_connected_nodes_at_sfd() {
        let mut m = Medium::new();
        m.set_topology(Topology::from_links(&[(NodeId(1), NodeId(4))]));
        let e = emission(1, 17, 100, 105);
        let heard = m.transmit(&e, &[NodeId(1), NodeId(4), NodeId(9)]);
        assert_eq!(heard, vec![(NodeId(4), e.start + SFD_DELAY)]);
        assert!(m.counters().is_none(), "ideal tracks no counters");
        assert!(m.topology().is_some());
    }

    #[test]
    fn geometric_model_gates_cca_by_distance() {
        let disk = UnitDisk::new(10.0)
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(5.0, 0.0))
            .with_position(NodeId(3), Position::new(50.0, 0.0));
        let mut m = Medium::with_model(Box::new(disk));
        m.register_transmission(&emission(1, 17, 100, 105));
        // 5 m away: senses the frame.
        assert!(m.channel_busy(NodeId(2), 17, SimTime::from_millis(102)));
        // 50 m away: the same frame is inaudible — a hidden terminal.
        assert!(!m.channel_busy(NodeId(3), 17, SimTime::from_millis(102)));
        assert!(m.topology().is_none(), "geometric models have no topology");
    }

    #[test]
    fn transmit_hands_overlapping_frames_to_the_capture_rule() {
        let params = PathLossParams {
            shadowing_sigma_db: 0.0,
            ..PathLossParams::default()
        };
        // Node 3 sits next to node 1 and far from node 2: when both frames
        // overlap, node 1's captures at node 3 and node 2's is lost there.
        let model = PathLoss::new(params)
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(45.0, 0.0))
            .with_position(NodeId(3), Position::new(2.0, 0.0));
        let mut m = Medium::with_model(Box::new(model));
        let nodes = [NodeId(1), NodeId(2), NodeId(3)];
        let first = m.transmit(&emission(2, 17, 100, 105), &nodes);
        assert!(
            first.iter().any(|(to, _)| *to == NodeId(3)),
            "alone on the air, the far frame reaches node 3"
        );
        let second = m.transmit(&emission(1, 17, 101, 106), &nodes);
        assert!(
            second.iter().any(|(to, _)| *to == NodeId(3)),
            "the near frame captures node 3 over the in-flight far frame"
        );
        let c = m.counters().expect("path loss tracks counters");
        assert!(c.delivered >= 2);
    }
}
