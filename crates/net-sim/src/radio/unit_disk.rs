//! The unit-disk medium: positions plus a hard communication range.

use super::geometry::{Position, Positions};
use super::{DeliveryCounters, OnAir, RadioMedium, Reception};
use crate::radio::mobility::PositionedMedium;
use hw_model::SimTime;
use os_sim::Emission;
use quanto_core::NodeId;

/// Binary geometric propagation: a receiver within `range_m` meters of the
/// transmitter hears every frame perfectly; one meter further it hears
/// nothing.  Carrier sensing uses the same disk, so transmitters outside
/// each other's range do not defer to each other (hidden terminals exist,
/// but collisions do not — unit disks have no signal levels to capture
/// with; use [`super::PathLoss`] for that).
#[derive(Debug, Clone)]
pub struct UnitDisk {
    positions: Positions,
    range_m: f64,
    counters: DeliveryCounters,
}

impl UnitDisk {
    /// A unit-disk medium with communication range `range_m` meters.
    /// `f64::INFINITY` makes it equivalent to a full topology.
    pub fn new(range_m: f64) -> Self {
        UnitDisk {
            positions: Positions::new(),
            range_m,
            counters: DeliveryCounters::default(),
        }
    }

    /// Places one node (builder form).
    pub fn with_position(mut self, node: NodeId, position: Position) -> Self {
        self.positions.set(node, position);
        self
    }

    /// The configured range, meters.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// The current placements.
    pub fn positions(&self) -> &Positions {
        &self.positions
    }

    fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        self.positions.distance(a, b) <= self.range_m
    }
}

impl RadioMedium for UnitDisk {
    fn kind(&self) -> &'static str {
        "unit_disk"
    }

    fn receive(&mut self, emission: &Emission, to: NodeId, _competing: &[OnAir]) -> Reception {
        let reception = if self.in_range(emission.from, to) {
            Reception::Delivered
        } else {
            Reception::OutOfRange
        };
        self.counters.record(reception);
        reception
    }

    fn carrier_senses(&mut self, listener: NodeId, frame: &OnAir, _at: SimTime) -> bool {
        self.in_range(frame.from, listener)
    }

    fn counters(&self) -> Option<DeliveryCounters> {
        Some(self.counters)
    }
}

impl PositionedMedium for UnitDisk {
    fn set_position(&mut self, node: NodeId, position: Position) {
        self.positions.set(node, position);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use os_sim::AmPacket;

    fn emission(from: u8) -> Emission {
        Emission {
            from: NodeId(from),
            channel: 26,
            packet: AmPacket::new(NodeId(from), NodeId(0xFF), 0, vec![]),
            start: SimTime::from_millis(1),
            end: SimTime::from_millis(2),
        }
    }

    #[test]
    fn range_decides_delivery_and_counters_track_it() {
        let mut m = UnitDisk::new(10.0)
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(6.0, 8.0))
            .with_position(NodeId(3), Position::new(11.0, 0.0));
        // 10 m away: exactly at the edge, delivered.
        assert_eq!(
            m.receive(&emission(1), NodeId(2), &[]),
            Reception::Delivered
        );
        // 11 m away: out of range.
        assert_eq!(
            m.receive(&emission(1), NodeId(3), &[]),
            Reception::OutOfRange
        );
        let c = m.counters().expect("unit disk tracks counters");
        assert_eq!((c.delivered, c.lost_out_of_range), (1, 1));
    }

    #[test]
    fn infinite_range_hears_everything_everywhere() {
        let mut m = UnitDisk::new(f64::INFINITY)
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(1.0e9, 0.0));
        assert_eq!(
            m.receive(&emission(1), NodeId(2), &[]),
            Reception::Delivered
        );
        // Even unplaced nodes (origin default).
        assert_eq!(
            m.receive(&emission(1), NodeId(7), &[]),
            Reception::Delivered
        );
        let frame = OnAir {
            from: NodeId(2),
            channel: 26,
            start: SimTime::ZERO,
            end: SimTime::from_millis(1),
        };
        assert!(m.carrier_senses(NodeId(1), &frame, SimTime::ZERO));
    }

    #[test]
    fn carrier_sense_respects_the_disk() {
        let mut m = UnitDisk::new(5.0)
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(20.0, 0.0));
        let frame = OnAir {
            from: NodeId(2),
            channel: 26,
            start: SimTime::ZERO,
            end: SimTime::from_millis(1),
        };
        assert!(!m.carrier_senses(NodeId(1), &frame, SimTime::ZERO));
    }
}
