//! The unit-disk medium: positions plus a hard communication range.

use super::geometry::{Position, Positions};
use super::spatial::SpatialIndex;
use super::{deliver_by_scan, DeliveryCounters, OnAir, RadioMedium, Reception};
use crate::radio::mobility::PositionedMedium;
use hw_model::SimTime;
use os_sim::Emission;
use quanto_core::NodeId;

/// Binary geometric propagation: a receiver within `range_m` meters of the
/// transmitter hears every frame perfectly; one meter further it hears
/// nothing.  Carrier sensing uses the same disk, so transmitters outside
/// each other's range do not defer to each other (hidden terminals exist,
/// but collisions do not — unit disks have no signal levels to capture
/// with; use [`super::PathLoss`] for that).
///
/// Deliveries go through a [`SpatialIndex`] range query (finite ranges
/// only): nodes provably beyond `range_m` are counted out of range in bulk
/// without being queried, which is what lets 10k-node fleets run.  The set
/// of receivers and the final counters are identical to the brute-force
/// scan (`range_m` is the exact query radius and the index over-covers, so
/// the inclusive `d <= range_m` edge is re-checked per candidate); see
/// [`UnitDisk::without_spatial_index`] for the reference path.
#[derive(Debug, Clone)]
pub struct UnitDisk {
    positions: Positions,
    range_m: f64,
    counters: DeliveryCounters,
    index: Option<SpatialIndex>,
}

impl UnitDisk {
    /// A unit-disk medium with communication range `range_m` meters.
    /// `f64::INFINITY` makes it equivalent to a full topology.
    pub fn new(range_m: f64) -> Self {
        UnitDisk {
            positions: Positions::new(),
            range_m,
            counters: DeliveryCounters::default(),
            index: range_m.is_finite().then(|| SpatialIndex::new(range_m)),
        }
    }

    /// Disables the spatial index: every delivery scans every node.  The
    /// reference path the equivalence tests and microbenches compare the
    /// indexed fast path against.
    pub fn without_spatial_index(mut self) -> Self {
        self.index = None;
        self
    }

    /// Replaces the spatial index with a recycled cell grid reset to this
    /// medium's range (see [`SpatialIndex::reset`]) — behaviour-identical to
    /// a fresh index, only the allocation is reused.  Must be called before
    /// any placements; a no-op when this medium runs without an index.
    pub fn adopt_spatial_index(&mut self, mut spare: SpatialIndex) {
        if self.index.is_some() {
            spare.reset(self.range_m);
            self.index = Some(spare);
        }
    }

    /// Places one node (builder form).
    pub fn with_position(mut self, node: NodeId, position: Position) -> Self {
        self.put(node, position);
        self
    }

    fn put(&mut self, node: NodeId, position: Position) {
        self.positions.set(node, position);
        if let Some(index) = self.index.as_mut() {
            index.place(node, position);
        }
    }

    /// The configured range, meters.
    pub fn range_m(&self) -> f64 {
        self.range_m
    }

    /// The current placements.
    pub fn positions(&self) -> &Positions {
        &self.positions
    }

    fn in_range(&self, a: NodeId, b: NodeId) -> bool {
        self.positions.distance(a, b) <= self.range_m
    }
}

impl RadioMedium for UnitDisk {
    fn kind(&self) -> &'static str {
        "unit_disk"
    }

    fn reclaim_spatial_index(&mut self) -> Option<SpatialIndex> {
        self.index.take()
    }

    fn receive(&mut self, emission: &Emission, to: NodeId, _competing: &[OnAir]) -> Reception {
        let reception = if self.in_range(emission.from, to) {
            Reception::Delivered
        } else {
            Reception::OutOfRange
        };
        self.counters.record(reception);
        reception
    }

    fn deliver(
        &mut self,
        emission: &Emission,
        nodes: &[NodeId],
        competing: &[OnAir],
    ) -> Vec<NodeId> {
        if self.index.is_none() {
            return deliver_by_scan(self, emission, nodes, competing);
        }
        let candidates = {
            let index = self.index.as_mut().expect("checked above");
            index.sync_roster(nodes, &self.positions);
            index.candidates(self.positions.get(emission.from), self.range_m)
        };
        let mut delivered = Vec::new();
        let mut queried = 0u64;
        for &to in &candidates {
            if to == emission.from {
                continue;
            }
            queried += 1;
            if self.receive(emission, to, competing) == Reception::Delivered {
                delivered.push(to);
            }
        }
        // Every node the index skipped is provably beyond `range_m`: the
        // brute scan would have recorded each as out of range.
        let pruned = (nodes.len() as u64 - 1) - queried;
        self.counters.lost_out_of_range += pruned;
        self.counters.pruned_by_cutoff += pruned;
        delivered
    }

    fn carrier_senses(&mut self, listener: NodeId, frame: &OnAir, _at: SimTime) -> bool {
        self.in_range(frame.from, listener)
    }

    fn counters(&self) -> Option<DeliveryCounters> {
        Some(self.counters)
    }
}

impl PositionedMedium for UnitDisk {
    fn set_position(&mut self, node: NodeId, position: Position) {
        self.put(node, position);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use os_sim::AmPacket;

    fn emission(from: u32) -> Emission {
        Emission {
            from: NodeId(from),
            channel: 26,
            packet: AmPacket::new(NodeId(from), NodeId(0xFF), 0, vec![]),
            start: SimTime::from_millis(1),
            end: SimTime::from_millis(2),
        }
    }

    #[test]
    fn range_decides_delivery_and_counters_track_it() {
        let mut m = UnitDisk::new(10.0)
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(6.0, 8.0))
            .with_position(NodeId(3), Position::new(11.0, 0.0));
        // 10 m away: exactly at the edge, delivered.
        assert_eq!(
            m.receive(&emission(1), NodeId(2), &[]),
            Reception::Delivered
        );
        // 11 m away: out of range.
        assert_eq!(
            m.receive(&emission(1), NodeId(3), &[]),
            Reception::OutOfRange
        );
        let c = m.counters().expect("unit disk tracks counters");
        assert_eq!((c.delivered, c.lost_out_of_range), (1, 1));
    }

    #[test]
    fn infinite_range_hears_everything_everywhere() {
        let mut m = UnitDisk::new(f64::INFINITY)
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(1.0e9, 0.0));
        assert_eq!(
            m.receive(&emission(1), NodeId(2), &[]),
            Reception::Delivered
        );
        // Even unplaced nodes (origin default).
        assert_eq!(
            m.receive(&emission(1), NodeId(7), &[]),
            Reception::Delivered
        );
        let frame = OnAir {
            from: NodeId(2),
            channel: 26,
            start: SimTime::ZERO,
            end: SimTime::from_millis(1),
        };
        assert!(m.carrier_senses(NodeId(1), &frame, SimTime::ZERO));
    }

    #[test]
    fn carrier_sense_respects_the_disk() {
        let mut m = UnitDisk::new(5.0)
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(20.0, 0.0));
        let frame = OnAir {
            from: NodeId(2),
            channel: 26,
            start: SimTime::ZERO,
            end: SimTime::from_millis(1),
        };
        assert!(!m.carrier_senses(NodeId(1), &frame, SimTime::ZERO));
    }
}
