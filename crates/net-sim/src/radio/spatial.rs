//! A uniform-grid spatial index over node positions.
//!
//! The geometric mediums ([`super::UnitDisk`], [`super::PathLoss`]) answer
//! "who hears this frame?" — a range query around the transmitter.  The
//! brute-force answer scans every node in the simulation per frame, which is
//! what capped practical fleets at a few hundred nodes.  [`SpatialIndex`]
//! buckets nodes into square cells at least as wide as the query radius, so
//! a delivery only examines the 3×3 (or fewer) cells the query disk can
//! touch: O(neighbors) per frame instead of O(nodes).
//!
//! The index is *exact*, not approximate: [`SpatialIndex::candidates`]
//! returns a superset of every node within the radius (cell membership uses
//! the same `floor(coord / cell)` arithmetic as the insertion path, and
//! floor and IEEE division are monotone, so a node inside the disk can never
//! land outside the scanned cell box).  Callers re-check each candidate with
//! the exact propagation rule; the index only licenses *skipping* nodes that
//! are provably beyond the radius.
//!
//! Determinism: candidate lists are sorted by node id before they are
//! returned, so delivery behavior never depends on `HashMap` iteration
//! order (the fleet runner requires bit-identical runs on every thread).

use super::geometry::{Position, Positions};
use quanto_core::NodeId;
use std::collections::{HashMap, HashSet};

/// A uniform grid of square cells bucketing node positions.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    /// Cell edge length, meters.  At least the query radius, so a range
    /// query touches at most a 3×3 cell box.
    cell_m: f64,
    /// Cell coordinate → the nodes currently inside it.
    cells: HashMap<(i64, i64), Vec<NodeId>>,
    /// Node → the cell it currently occupies.
    where_is: HashMap<NodeId, (i64, i64)>,
    /// The simulation's node roster, as of the last [`SpatialIndex::sync_roster`].
    /// Candidates are filtered against it so stale placements of nodes that
    /// are not part of the run never leak into a delivery.
    roster: HashSet<NodeId>,
    /// Length of the roster slice last synced — rosters only ever grow
    /// (the engine has no node removal), so a length match means the roster
    /// is current and the sync loop can be skipped.
    roster_len: usize,
}

impl SpatialIndex {
    /// An empty index with the given cell size (clamped to ≥ 1 m so
    /// degenerate radii cannot explode the cell count).
    pub fn new(cell_m: f64) -> Self {
        SpatialIndex {
            cell_m: cell_m.max(1.0),
            cells: HashMap::new(),
            where_is: HashMap::new(),
            roster: HashSet::new(),
            roster_len: usize::MAX,
        }
    }

    /// The cell edge length, meters.
    pub fn cell_m(&self) -> f64 {
        self.cell_m
    }

    /// Returns the index to the state of [`SpatialIndex::new`] with the given
    /// cell size, keeping the map/set allocations — the workspace-pool seam
    /// that lets one cell grid serve many scenarios without reallocating.
    pub fn reset(&mut self, cell_m: f64) {
        self.cell_m = cell_m.max(1.0);
        self.cells.clear();
        self.where_is.clear();
        self.roster.clear();
        self.roster_len = usize::MAX;
    }

    fn cell_of(&self, position: Position) -> (i64, i64) {
        (
            (position.x / self.cell_m).floor() as i64,
            (position.y / self.cell_m).floor() as i64,
        )
    }

    /// Places (or moves) one node — an O(cell occupancy) incremental update,
    /// and a no-op when the move stays within the node's current cell (the
    /// common case under waypoint mobility, where per-frame motion is tiny).
    pub fn place(&mut self, node: NodeId, position: Position) {
        let cell = self.cell_of(position);
        if let Some(&old) = self.where_is.get(&node) {
            if old == cell {
                return;
            }
            if let Some(members) = self.cells.get_mut(&old) {
                if let Some(i) = members.iter().position(|n| *n == node) {
                    members.swap_remove(i);
                }
                if members.is_empty() {
                    self.cells.remove(&old);
                }
            }
        }
        self.cells.entry(cell).or_default().push(node);
        self.where_is.insert(node, cell);
    }

    /// Brings the index's roster up to date with the simulation's node list,
    /// placing nodes that were never explicitly positioned at their
    /// [`Positions`] default (the origin).  Gated on the roster length:
    /// node lists only grow during a run, so an unchanged length means an
    /// unchanged roster.
    pub fn sync_roster(&mut self, nodes: &[NodeId], positions: &Positions) {
        if nodes.len() == self.roster_len {
            return;
        }
        self.roster.clear();
        for &node in nodes {
            self.roster.insert(node);
            if !self.where_is.contains_key(&node) {
                self.place(node, positions.get(node));
            }
        }
        self.roster_len = nodes.len();
    }

    /// Every roster node that *could* lie within `radius` meters of
    /// `center` — a superset of the exact answer, sorted by node id.
    pub fn candidates(&self, center: Position, radius: f64) -> Vec<NodeId> {
        let x0 = ((center.x - radius) / self.cell_m).floor() as i64;
        let x1 = ((center.x + radius) / self.cell_m).floor() as i64;
        let y0 = ((center.y - radius) / self.cell_m).floor() as i64;
        let y1 = ((center.y + radius) / self.cell_m).floor() as i64;
        let mut out = Vec::new();
        for cx in x0..=x1 {
            for cy in y0..=y1 {
                if let Some(members) = self.cells.get(&(cx, cy)) {
                    out.extend(members.iter().copied().filter(|n| self.roster.contains(n)));
                }
            }
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions(nodes: &[(u32, f64, f64)]) -> Positions {
        nodes
            .iter()
            .map(|&(id, x, y)| (NodeId(id), Position::new(x, y)))
            .collect()
    }

    #[test]
    fn candidates_cover_every_node_within_the_radius() {
        let placed = positions(&[
            (1, 0.0, 0.0),
            (2, 9.9, 0.0),
            (3, 10.0, 0.0),
            (4, -9.9, -9.9),
            (5, 25.0, 0.0),
        ]);
        let mut ix = SpatialIndex::new(10.0);
        let roster: Vec<NodeId> = (1..=5).map(NodeId).collect();
        ix.sync_roster(&roster, &placed);
        let c = ix.candidates(Position::ORIGIN, 10.0);
        for id in [1u32, 2, 3, 4] {
            assert!(c.contains(&NodeId(id)), "node {id} is within 10 m√2 box");
        }
        // Node 5 sits 25 m away — provably outside every scanned cell.
        assert!(!c.contains(&NodeId(5)));
        assert!(c.windows(2).all(|w| w[0] < w[1]), "sorted, no duplicates");
    }

    #[test]
    fn place_moves_nodes_between_cells_incrementally() {
        let mut ix = SpatialIndex::new(10.0);
        ix.place(NodeId(1), Position::new(5.0, 5.0));
        assert!(
            ix.candidates(Position::ORIGIN, 10.0).is_empty(),
            "roster empty: placements alone never deliver"
        );
        ix.sync_roster(&[NodeId(1)], &Positions::new());
        assert_eq!(ix.candidates(Position::ORIGIN, 10.0), vec![NodeId(1)]);
        // Move far away: the old cell no longer yields the node.
        ix.place(NodeId(1), Position::new(500.0, 0.0));
        assert!(ix.candidates(Position::ORIGIN, 10.0).is_empty());
        assert_eq!(
            ix.candidates(Position::new(500.0, 0.0), 10.0),
            vec![NodeId(1)]
        );
        // Move within the same cell: still found (the fast no-op path).
        ix.place(NodeId(1), Position::new(501.0, 1.0));
        assert_eq!(
            ix.candidates(Position::new(500.0, 0.0), 10.0),
            vec![NodeId(1)]
        );
    }

    #[test]
    fn sync_roster_places_unpositioned_nodes_at_the_origin() {
        let mut ix = SpatialIndex::new(10.0);
        let roster: Vec<NodeId> = (1..=3).map(NodeId).collect();
        ix.sync_roster(&roster, &positions(&[(2, 50.0, 0.0)]));
        let near_origin = ix.candidates(Position::ORIGIN, 5.0);
        assert_eq!(near_origin, vec![NodeId(1), NodeId(3)]);
        // A grown roster re-syncs; same-length rosters skip the scan.
        let grown: Vec<NodeId> = (1..=4).map(NodeId).collect();
        ix.sync_roster(&grown, &positions(&[(2, 50.0, 0.0)]));
        assert_eq!(
            ix.candidates(Position::ORIGIN, 5.0),
            vec![NodeId(1), NodeId(3), NodeId(4)]
        );
    }

    #[test]
    fn degenerate_cell_sizes_are_clamped() {
        let ix = SpatialIndex::new(0.0);
        assert_eq!(ix.cell_m(), 1.0);
        assert_eq!(SpatialIndex::new(f64::NAN).cell_m(), 1.0);
    }
}
