//! The ideal medium: explicit connectivity, perfect reception.
//!
//! This is the behavior the simulator shipped with before mediums became
//! pluggable, and it must stay *byte-identical* to it: the fleet digest pins
//! (`crates/fleet/tests/digest_pin.rs`) run every pre-medium scenario
//! through [`Ideal`] and require the pre-refactor digests.  That is also why
//! it does not track [`super::DeliveryCounters`]: counter folding would
//! change the digest, and the ideal ether has no signal levels to count
//! losses against.

use super::{OnAir, RadioMedium, Reception};
use crate::medium::Topology;
use os_sim::Emission;
use quanto_core::NodeId;

/// Explicit-topology propagation: a link either exists or it does not.
#[derive(Debug, Clone, Default)]
pub struct Ideal {
    topology: Topology,
}

impl Ideal {
    /// An ideal medium over `topology`.
    pub fn new(topology: Topology) -> Self {
        Ideal { topology }
    }

    /// An ideal medium with full connectivity.
    pub fn full() -> Self {
        Ideal::new(Topology::full())
    }
}

impl RadioMedium for Ideal {
    fn kind(&self) -> &'static str {
        "ideal"
    }

    fn receive(&mut self, emission: &Emission, to: NodeId, _competing: &[OnAir]) -> Reception {
        if self.topology.connected(emission.from, to) {
            Reception::Delivered
        } else {
            Reception::Disconnected
        }
    }

    fn topology(&self) -> Option<&Topology> {
        Some(&self.topology)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::SimTime;
    use os_sim::AmPacket;

    fn emission(from: u32) -> Emission {
        Emission {
            from: NodeId(from),
            channel: 26,
            packet: AmPacket::new(NodeId(from), NodeId(0xFF), 0, vec![]),
            start: SimTime::from_millis(1),
            end: SimTime::from_millis(2),
        }
    }

    #[test]
    fn follows_the_topology_and_tracks_nothing() {
        let mut m = Ideal::new(Topology::from_links(&[(NodeId(1), NodeId(2))]));
        assert_eq!(m.kind(), "ideal");
        assert_eq!(
            m.receive(&emission(1), NodeId(2), &[]),
            Reception::Delivered
        );
        assert_eq!(
            m.receive(&emission(1), NodeId(3), &[]),
            Reception::Disconnected
        );
        assert!(m.counters().is_none(), "ideal never tracks counters");
        assert!(m.topology().is_some());
    }
}
