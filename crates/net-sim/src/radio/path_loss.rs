//! The log-distance path-loss medium with shadowing and capture.
//!
//! Received power follows the classic log-distance model:
//!
//! ```text
//! RSSI(d) = P_tx − PL(d₀) − 10·n·log₁₀(max(d, d₀)/d₀) + X_σ
//! ```
//!
//! with reference distance d₀ = 1 m.  `X_σ` is log-normal shadowing with
//! standard deviation `shadowing_sigma_db`, drawn *deterministically* per
//! (frame, receiver) pair: the sample is a hash of `(seed, transmitter,
//! receiver, frame start time)`, so the same scenario loses the same frames
//! on every thread of a fleet sweep, and a frame's level at a given receiver
//! is stable for its whole air time (one fade per frame, not per query).
//!
//! A frame is received iff its RSSI clears `sensitivity_dbm` *and* beats the
//! strongest overlapping same-channel frame by at least `capture_margin_db`
//! (the capture effect).  Colliding frames below that margin are lost and
//! counted as captured.

use super::geometry::{Position, Positions};
use super::mobility::PositionedMedium;
use super::spatial::SpatialIndex;
use super::{
    deliver_by_scan, mix, unit_uniform, DeliveryCounters, MediumEffort, OnAir, RadioMedium,
    Reception,
};
use hw_model::SimTime;
use os_sim::Emission;
use quanto_core::NodeId;
use std::cell::Cell;

/// √3: scales an Irwin–Hall(4) sum to unit variance (see
/// [`PathLoss::shadowing_db`]).
const SQRT_3: f64 = 1.732_050_807_568_877_2;

/// Configuration of the log-distance model.  Defaults approximate a CC2420
/// mote indoors: 0 dBm transmit power, 40 dB loss at the 1 m reference,
/// exponent 3.0, 4 dB shadowing, −94 dBm sensitivity, 3 dB capture margin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathLossParams {
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, dB.
    pub ref_loss_db: f64,
    /// Path-loss exponent `n` (2 = free space, 3–4 = indoors).
    pub exponent: f64,
    /// Log-normal shadowing standard deviation, dB (0 disables it).
    pub shadowing_sigma_db: f64,
    /// Minimum RSSI a receiver can decode, dBm.
    pub sensitivity_dbm: f64,
    /// How many dB a frame must beat the strongest overlapping frame by to
    /// survive a collision.
    pub capture_margin_db: f64,
    /// Minimum RSSI at which a clear-channel assessment reports the channel
    /// busy.  `None` couples it to `sensitivity_dbm` (the historical
    /// behavior, and the default — existing digests hold).  Real radios
    /// carrier-sense below their decode floor; setting this a few dB under
    /// `sensitivity_dbm` shrinks the hidden-terminal region, setting it
    /// above grows it.
    pub cca_threshold_dbm: Option<f64>,
    /// Seed decorrelating the shadowing of otherwise-identical scenarios.
    pub seed: u64,
}

impl Default for PathLossParams {
    fn default() -> Self {
        PathLossParams {
            tx_power_dbm: 0.0,
            ref_loss_db: 40.0,
            exponent: 3.0,
            shadowing_sigma_db: 4.0,
            sensitivity_dbm: -94.0,
            capture_margin_db: 3.0,
            cca_threshold_dbm: None,
            seed: 0,
        }
    }
}

impl PathLossParams {
    /// The effective clear-channel-assessment threshold: the explicit knob
    /// when set, otherwise coupled to the decode sensitivity.
    pub fn cca_dbm(&self) -> f64 {
        self.cca_threshold_dbm.unwrap_or(self.sensitivity_dbm)
    }

    /// The distance beyond which RSSI is *provably* under `floor_dbm`, or
    /// `None` when no finite distance guarantees it (non-positive exponent,
    /// or a floor so low the model always clears it).
    ///
    /// The shadowing fade is an Irwin–Hall(4) sample: four uniforms in
    /// `[0, 1)` summed, so the fade lies in `[−2√3σ, +2√3σ)` — strictly
    /// below `+2√3σ`.  Past the distance where even that maximal fade
    /// cannot lift the mean RSSI to the floor, every query answers "below".
    /// A relative safety margin swamps the floating-point noise between
    /// this closed form and the per-query `log10`, keeping the cutoff a
    /// sound over-approximation rather than a knife edge.
    pub fn cutoff_m(&self, floor_dbm: f64) -> Option<f64> {
        // `partial_cmp`, not `>`: a NaN exponent must also disable the cutoff.
        if self.exponent.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return None;
        }
        let max_fade = 2.0 * SQRT_3 * self.shadowing_sigma_db.max(0.0);
        let exp10 =
            (self.tx_power_dbm - self.ref_loss_db + max_fade - floor_dbm) / (10.0 * self.exponent);
        let raw = 10f64.powf(exp10);
        if !raw.is_finite() {
            return None;
        }
        // ≥ 1 m: inside the reference distance the loss is clamped, so no
        // node closer than 1 m may ever be pruned.
        Some((raw * 1.000_001 + 1e-9).max(1.0))
    }
}

/// Log-distance propagation with deterministic shadowing and capture.
///
/// Deliveries go through a [`SpatialIndex`] range query at the sensitivity
/// cutoff radius (see [`PathLossParams::cutoff_m`]): nodes provably below
/// the decode floor even under the maximal shadowing fade are counted as
/// sensitivity losses in bulk, without hashing a fade or taking a log, so a
/// frame costs O(neighbors) instead of O(nodes).  Candidates inside the
/// radius still get the exact RSSI/capture rule — the receiver set and the
/// counters are bit-identical to the brute scan
/// ([`PathLoss::without_spatial_index`], the reference path).
#[derive(Debug, Clone)]
pub struct PathLoss {
    params: PathLossParams,
    positions: Positions,
    counters: DeliveryCounters,
    /// Beyond this distance decoding is provably impossible (`None`: no
    /// finite bound — every delivery scans every node).
    sense_cutoff_m: Option<f64>,
    /// Beyond this distance CCA provably reports idle; lets `mote_energy`
    /// skip the fade hash for distant frames.
    cca_cutoff_m: Option<f64>,
    index: Option<SpatialIndex>,
    /// Shadowing fades actually hashed (a `Cell`: fades are drawn inside
    /// `&self` RSSI queries).  Effort bookkeeping only — never digested.
    fades_hashed: Cell<u64>,
    /// CCA queries answered by the distance cutoff without touching RSSI.
    cca_early_outs: u64,
}

impl PathLoss {
    /// A path-loss medium under `params`, with every node at the origin
    /// until placed.
    pub fn new(params: PathLossParams) -> Self {
        let sense_cutoff_m = params.cutoff_m(params.sensitivity_dbm);
        let cca_cutoff_m = params.cutoff_m(params.cca_dbm());
        PathLoss {
            params,
            positions: Positions::new(),
            counters: DeliveryCounters::default(),
            sense_cutoff_m,
            cca_cutoff_m,
            index: sense_cutoff_m.map(SpatialIndex::new),
            fades_hashed: Cell::new(0),
            cca_early_outs: 0,
        }
    }

    /// Disables the spatial index: every delivery scans every node.  The
    /// reference path the equivalence tests and microbenches compare the
    /// indexed fast path against (CCA keeps its distance early-out, which
    /// is a per-query shortcut independent of the index).
    pub fn without_spatial_index(mut self) -> Self {
        self.index = None;
        self
    }

    /// Replaces the spatial index with a recycled cell grid reset to this
    /// medium's sensing cutoff (see [`SpatialIndex::reset`]) —
    /// behaviour-identical to a fresh index, only the allocation is reused.
    /// Must be called before any placements; a no-op when this medium runs
    /// without an index.
    pub fn adopt_spatial_index(&mut self, mut spare: SpatialIndex) {
        if let (Some(_), Some(cutoff)) = (self.index.as_ref(), self.sense_cutoff_m) {
            spare.reset(cutoff);
            self.index = Some(spare);
        }
    }

    /// Places one node (builder form).
    pub fn with_position(mut self, node: NodeId, position: Position) -> Self {
        self.put(node, position);
        self
    }

    fn put(&mut self, node: NodeId, position: Position) {
        self.positions.set(node, position);
        if let Some(index) = self.index.as_mut() {
            index.place(node, position);
        }
    }

    /// The model parameters.
    pub fn params(&self) -> &PathLossParams {
        &self.params
    }

    /// The current placements.
    pub fn positions(&self) -> &Positions {
        &self.positions
    }

    /// The deterministic per-frame shadowing sample for a (transmitter,
    /// receiver, frame-start) triple: four hashed uniforms summed into an
    /// Irwin–Hall approximation of a standard normal (mean 2, variance 1/3,
    /// rescaled), then scaled by σ.  Pure integer/float arithmetic — no
    /// transcendental whose libm could differ — keeps it bit-stable.
    fn shadowing_db(&self, from: NodeId, to: NodeId, start: SimTime) -> f64 {
        if self.params.shadowing_sigma_db <= 0.0 {
            return 0.0;
        }
        self.fades_hashed.set(self.fades_hashed.get() + 1);
        // The legacy key packed the two one-byte ids into fixed bit
        // positions; fleets with v1-range ids must keep producing the exact
        // same fades, so that part is unchanged.  Wider ids would collide
        // modulo 256 there, so the full 32-bit pair is mixed in as an extra
        // term — which is zero for v1-range ids, leaving legacy keys
        // bit-identical.
        let wide = if from.fits_v1() && to.fits_v1() {
            0
        } else {
            mix((from.as_u64() << 32) | to.as_u64())
        };
        let key = self
            .params
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(start.as_micros())
            .wrapping_add((from.as_u64() & 0xFF) << 48)
            .wrapping_add((to.as_u64() & 0xFF) << 56)
            .wrapping_add(wide);
        let mut sum = 0.0;
        let mut z = key;
        for _ in 0..4 {
            z = mix(z);
            sum += unit_uniform(z);
        }
        (sum - 2.0) * SQRT_3 * self.params.shadowing_sigma_db
    }

    /// RSSI in dBm of a frame from `from` (started at `start`) as heard by
    /// `to`, with the frame's shadowing fade applied.
    pub fn rssi_dbm(&self, from: NodeId, to: NodeId, start: SimTime) -> f64 {
        let d = self.positions.distance(from, to).max(1.0);
        self.params.tx_power_dbm - self.params.ref_loss_db - 10.0 * self.params.exponent * d.log10()
            + self.shadowing_db(from, to, start)
    }
}

impl RadioMedium for PathLoss {
    fn kind(&self) -> &'static str {
        "path_loss"
    }

    fn reclaim_spatial_index(&mut self) -> Option<SpatialIndex> {
        self.index.take()
    }

    fn receive(&mut self, emission: &Emission, to: NodeId, competing: &[OnAir]) -> Reception {
        let rssi = self.rssi_dbm(emission.from, to, emission.start);
        let reception = if rssi < self.params.sensitivity_dbm {
            Reception::BelowSensitivity
        } else {
            // Capture rule: the frame survives iff it beats the *strongest*
            // overlapping frame by the capture margin.  Each competitor's
            // fade is keyed on its own start time (the same fade that
            // decided that frame's own delivery); its distance term uses the
            // positions as of *this* query — under `Mobility` that is this
            // emission's start, which can differ from the competitor's start
            // by at most one frame air time (~ms), negligible motion for
            // seconds-scale waypoint traces.
            let strongest = competing
                .iter()
                .filter(|c| c.from != to)
                .map(|c| self.rssi_dbm(c.from, to, c.start))
                .fold(f64::NEG_INFINITY, f64::max);
            if rssi >= strongest + self.params.capture_margin_db {
                Reception::Delivered
            } else {
                Reception::Captured
            }
        };
        self.counters.record(reception);
        reception
    }

    fn deliver(
        &mut self,
        emission: &Emission,
        nodes: &[NodeId],
        competing: &[OnAir],
    ) -> Vec<NodeId> {
        let (Some(index), Some(cutoff)) = (self.index.as_mut(), self.sense_cutoff_m) else {
            return deliver_by_scan(self, emission, nodes, competing);
        };
        index.sync_roster(nodes, &self.positions);
        let candidates = index.candidates(self.positions.get(emission.from), cutoff);
        let mut delivered = Vec::new();
        let mut queried = 0u64;
        for &to in &candidates {
            if to == emission.from {
                continue;
            }
            queried += 1;
            if self.receive(emission, to, competing) == Reception::Delivered {
                delivered.push(to);
            }
        }
        // Every skipped node is provably below the decode floor even under
        // the maximal shadowing fade: the brute scan would have recorded
        // each as a sensitivity loss.
        let pruned = (nodes.len() as u64 - 1) - queried;
        self.counters.lost_below_sensitivity += pruned;
        self.counters.pruned_by_cutoff += pruned;
        delivered
    }

    fn carrier_senses(&mut self, listener: NodeId, frame: &OnAir, _at: SimTime) -> bool {
        if let Some(cutoff) = self.cca_cutoff_m {
            // Provably under the CCA threshold: skip the fade hash and log.
            if self.positions.distance(frame.from, listener) > cutoff {
                self.cca_early_outs += 1;
                return false;
            }
        }
        self.rssi_dbm(frame.from, listener, frame.start) >= self.params.cca_dbm()
    }

    fn counters(&self) -> Option<DeliveryCounters> {
        Some(self.counters)
    }

    fn effort(&self) -> Option<MediumEffort> {
        Some(MediumEffort {
            fades_hashed: self.fades_hashed.get(),
            cca_early_outs: self.cca_early_outs,
        })
    }
}

impl PositionedMedium for PathLoss {
    fn set_position(&mut self, node: NodeId, position: Position) {
        self.put(node, position);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use os_sim::AmPacket;

    fn noiseless() -> PathLossParams {
        PathLossParams {
            shadowing_sigma_db: 0.0,
            ..PathLossParams::default()
        }
    }

    fn emission(from: u32, start_ms: u64) -> Emission {
        Emission {
            from: NodeId(from),
            channel: 26,
            packet: AmPacket::new(NodeId(from), NodeId(0xFF), 0, vec![]),
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(start_ms + 1),
        }
    }

    fn on_air(from: u32, start_ms: u64, end_ms: u64) -> OnAir {
        OnAir {
            from: NodeId(from),
            channel: 26,
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
        }
    }

    #[test]
    fn rssi_follows_the_log_distance_law() {
        let m = PathLoss::new(noiseless())
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(10.0, 0.0))
            .with_position(NodeId(3), Position::new(100.0, 0.0));
        let t = SimTime::ZERO;
        // 10 m: 0 − 40 − 30·log10(10) = −70 dBm.
        assert!((m.rssi_dbm(NodeId(1), NodeId(2), t) - (-70.0)).abs() < 1e-9);
        // 100 m: −100 dBm; each decade costs 10·n dB.
        assert!((m.rssi_dbm(NodeId(1), NodeId(3), t) - (-100.0)).abs() < 1e-9);
        // Inside the reference distance the loss is clamped at PL(d0).
        assert!((m.rssi_dbm(NodeId(1), NodeId(1), t) - (-40.0)).abs() < 1e-9);
    }

    #[test]
    fn sensitivity_floor_cuts_distant_receivers() {
        // −94 dBm floor with n=3: reachable to ~63 m, gone at 100 m.
        let mut m = PathLoss::new(noiseless())
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(50.0, 0.0))
            .with_position(NodeId(3), Position::new(100.0, 0.0));
        assert_eq!(
            m.receive(&emission(1, 5), NodeId(2), &[]),
            Reception::Delivered
        );
        assert_eq!(
            m.receive(&emission(1, 5), NodeId(3), &[]),
            Reception::BelowSensitivity
        );
        let c = m.counters().unwrap();
        assert_eq!((c.delivered, c.lost_below_sensitivity), (1, 1));
    }

    #[test]
    fn capture_keeps_the_strong_frame_and_drops_the_weak() {
        // Receiver 3 sits 5 m from node 1 and 40 m from node 2: node 1's
        // frame beats node 2's by ≫ 3 dB, so 1 captures, 2 is lost.
        let mut m = PathLoss::new(noiseless())
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(45.0, 0.0))
            .with_position(NodeId(3), Position::new(5.0, 0.0));
        let near = m.receive(&emission(1, 10), NodeId(3), &[on_air(2, 10, 11)]);
        assert_eq!(near, Reception::Delivered, "strong frame survives");
        let far = m.receive(&emission(2, 10), NodeId(3), &[on_air(1, 10, 11)]);
        assert_eq!(far, Reception::Captured, "weak frame is lost");
        // Comparable levels (both ~equidistant): nobody clears the margin.
        let mut tie = PathLoss::new(noiseless())
            .with_position(NodeId(1), Position::new(-5.0, 0.0))
            .with_position(NodeId(2), Position::new(5.0, 0.0))
            .with_position(NodeId(3), Position::new(0.0, 0.0));
        assert_eq!(
            tie.receive(&emission(1, 10), NodeId(3), &[on_air(2, 10, 11)]),
            Reception::Captured
        );
    }

    /// The CCA threshold defaults to the decode sensitivity (coupled, the
    /// historical behavior) and decouples when set: a lower threshold lets a
    /// listener sense frames it cannot decode, a higher one deafens it.
    #[test]
    fn cca_threshold_decouples_from_decode_sensitivity() {
        // 80 m at n=3: RSSI = 0 − 40 − 30·log10(80) ≈ −97.1 dBm — below the
        // −94 dBm decode floor but above a −100 dBm CCA threshold.
        let at = SimTime::from_millis(50);
        let frame = on_air(1, 50, 51);
        let place = |cca| {
            PathLoss::new(PathLossParams {
                cca_threshold_dbm: cca,
                ..noiseless()
            })
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(80.0, 0.0))
        };
        let mut coupled = place(None);
        assert_eq!(coupled.params().cca_dbm(), -94.0, "couples to sensitivity");
        assert!(
            !coupled.carrier_senses(NodeId(2), &frame, at),
            "coupled CCA must not sense below the decode floor"
        );
        let mut sensitive = place(Some(-100.0));
        assert!(
            sensitive.carrier_senses(NodeId(2), &frame, at),
            "a lower CCA threshold senses undecodable energy"
        );
        let mut deaf = place(Some(-50.0));
        assert!(
            !deaf.carrier_senses(NodeId(2), &frame, at),
            "a higher CCA threshold widens the hidden-terminal region"
        );
        // Decoding is unaffected by the CCA knob: −97 dBm stays undecodable.
        assert_eq!(
            sensitive.receive(&emission(1, 50), NodeId(2), &[]),
            Reception::BelowSensitivity
        );
    }

    #[test]
    fn shadowing_is_deterministic_per_frame_and_seed_sensitive() {
        let place = |seed| {
            PathLoss::new(PathLossParams {
                seed,
                ..PathLossParams::default()
            })
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(20.0, 0.0))
        };
        let a = place(1);
        let b = place(1);
        let c = place(2);
        let t = SimTime::from_millis(123);
        assert_eq!(
            a.rssi_dbm(NodeId(1), NodeId(2), t).to_bits(),
            b.rssi_dbm(NodeId(1), NodeId(2), t).to_bits(),
            "same seed, same frame: bit-identical fade"
        );
        assert_ne!(
            a.rssi_dbm(NodeId(1), NodeId(2), t).to_bits(),
            c.rssi_dbm(NodeId(1), NodeId(2), t).to_bits(),
            "different seeds decorrelate"
        );
        // Different frame start: a different fade.
        assert_ne!(
            a.rssi_dbm(NodeId(1), NodeId(2), t).to_bits(),
            a.rssi_dbm(NodeId(1), NodeId(2), SimTime::from_millis(124))
                .to_bits()
        );
    }

    /// Effort counters separate real work from short-circuits: the σ ≤ 0
    /// fast path hashes nothing, the CCA distance cutoff answers without
    /// RSSI, and the indexed delivery accounts every pair as examined or
    /// pruned.
    #[test]
    fn effort_counters_track_fades_cutoffs_and_pruning() {
        let mut quiet = PathLoss::new(noiseless())
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(10.0, 0.0));
        quiet.receive(&emission(1, 5), NodeId(2), &[]);
        assert_eq!(
            quiet.effort(),
            Some(MediumEffort::default()),
            "σ = 0 must never hash a fade"
        );

        let mut shadowed = PathLoss::new(PathLossParams::default())
            .with_position(NodeId(1), Position::new(0.0, 0.0))
            .with_position(NodeId(2), Position::new(10.0, 0.0))
            .with_position(NodeId(3), Position::new(1.0e6, 0.0));
        shadowed.receive(&emission(1, 5), NodeId(2), &[]);
        assert_eq!(shadowed.effort().unwrap().fades_hashed, 1);
        // Node 3 is ~1000 km out: CCA early-outs on distance, no new fade.
        assert!(!shadowed.carrier_senses(NodeId(3), &on_air(1, 5, 6), SimTime::from_millis(5)));
        let e = shadowed.effort().unwrap();
        assert_eq!((e.fades_hashed, e.cca_early_outs), (1, 1));
        // Indexed delivery: node 2 examined, node 3 bulk-pruned.
        let roster = [NodeId(1), NodeId(2), NodeId(3)];
        shadowed.deliver(&emission(1, 7), &roster, &[]);
        let c = shadowed.counters().unwrap();
        assert_eq!(c.pruned_by_cutoff, 1);
        assert_eq!(c.candidates_examined + c.pruned_by_cutoff, c.attempts());
    }

    #[test]
    fn shadowing_roughly_matches_sigma() {
        let m = PathLoss::new(PathLossParams {
            shadowing_sigma_db: 6.0,
            ..PathLossParams::default()
        });
        let n = 4000;
        let samples: Vec<f64> = (0..n)
            .map(|i| m.shadowing_db(NodeId(1), NodeId(2), SimTime::from_micros(i)))
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.5, "mean {mean}");
        assert!((var.sqrt() - 6.0).abs() < 0.5, "stddev {}", var.sqrt());
    }
}
