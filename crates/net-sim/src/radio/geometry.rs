//! Node placement for the geometric mediums.

use quanto_core::NodeId;
use std::collections::HashMap;

/// A node position on the deployment plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// East coordinate, meters.
    pub x: f64,
    /// North coordinate, meters.
    pub y: f64,
}

impl Position {
    /// The origin of the deployment plane.
    pub const ORIGIN: Position = Position { x: 0.0, y: 0.0 };

    /// A position at `(x, y)` meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance_to(self, other: Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// Where every node sits.  Nodes that were never placed sit at the origin,
/// so a geometric medium with no placements degenerates to "everyone in one
/// spot" (full connectivity) instead of erroring.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Positions {
    placed: HashMap<NodeId, Position>,
}

impl Positions {
    /// An empty placement (every node at the origin).
    pub fn new() -> Self {
        Positions::default()
    }

    /// Places (or moves) one node.
    pub fn set(&mut self, node: NodeId, position: Position) {
        self.placed.insert(node, position);
    }

    /// The position of `node` (origin when never placed).
    pub fn get(&self, node: NodeId) -> Position {
        self.placed.get(&node).copied().unwrap_or(Position::ORIGIN)
    }

    /// Distance between two nodes, in meters.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.get(a).distance_to(self.get(b))
    }

    /// How many nodes have an explicit placement.
    pub fn len(&self) -> usize {
        self.placed.len()
    }

    /// Whether no node has an explicit placement.
    pub fn is_empty(&self) -> bool {
        self.placed.is_empty()
    }
}

impl FromIterator<(NodeId, Position)> for Positions {
    fn from_iter<I: IntoIterator<Item = (NodeId, Position)>>(iter: I) -> Self {
        Positions {
            placed: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_and_defaults() {
        let mut p = Positions::new();
        assert!(p.is_empty());
        p.set(NodeId(1), Position::new(3.0, 0.0));
        p.set(NodeId(2), Position::new(0.0, 4.0));
        assert_eq!(p.len(), 2);
        assert_eq!(p.distance(NodeId(1), NodeId(2)), 5.0);
        // Unplaced nodes sit at the origin.
        assert_eq!(p.get(NodeId(9)), Position::ORIGIN);
        assert_eq!(p.distance(NodeId(1), NodeId(9)), 3.0);
    }
}
