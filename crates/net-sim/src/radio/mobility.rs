//! Mobility: waypoint traces driving node positions over simulation time.

use super::geometry::Position;
use super::{DeliveryCounters, MediumEffort, OnAir, RadioMedium, Reception};
use hw_model::SimTime;
use os_sim::Emission;
use quanto_core::NodeId;

/// A medium whose node placements can be updated mid-run — the layer
/// [`Mobility`] drives.  Implemented by [`super::UnitDisk`] and
/// [`super::PathLoss`].
pub trait PositionedMedium: RadioMedium {
    /// Places (or moves) one node.
    fn set_position(&mut self, node: NodeId, position: Position);
}

/// A piecewise-linear waypoint trace: the node sits at the first waypoint
/// until its time, moves in straight lines between consecutive waypoints,
/// and parks at the last one forever.
#[derive(Debug, Clone, PartialEq)]
pub struct MobilityTrace {
    /// `(arrival time, position)` waypoints, sorted by time.
    waypoints: Vec<(SimTime, Position)>,
}

impl MobilityTrace {
    /// Builds a trace from waypoints (sorted by time internally; the sort is
    /// stable, so equal-time duplicates keep their submission order and act
    /// as a step).  An empty trace parks the node at the origin.
    pub fn new(mut waypoints: Vec<(SimTime, Position)>) -> Self {
        waypoints.sort_by_key(|(t, _)| *t);
        MobilityTrace { waypoints }
    }

    /// A trace that never moves.
    pub fn stationary(position: Position) -> Self {
        MobilityTrace {
            waypoints: vec![(SimTime::ZERO, position)],
        }
    }

    /// The waypoints, sorted by time.
    pub fn waypoints(&self) -> &[(SimTime, Position)] {
        &self.waypoints
    }

    /// The position at `at`.
    ///
    /// Interpolation is clamped to each segment's bounding box, which makes
    /// the trace *monotone by construction*: floating-point rounding at a
    /// segment end can never overshoot the waypoint it is heading to, so a
    /// trace whose waypoints only move one way never jitters backwards —
    /// including for times past the 32-bit microsecond boundary, where the
    /// paper's own log timestamps wrap but `SimTime` (64-bit) does not.
    pub fn position_at(&self, at: SimTime) -> Position {
        let Some(&(first_t, first_p)) = self.waypoints.first() else {
            return Position::ORIGIN;
        };
        if at <= first_t {
            return first_p;
        }
        for pair in self.waypoints.windows(2) {
            let (t0, p0) = pair[0];
            let (t1, p1) = pair[1];
            if at < t1 {
                let span = t1.duration_since(t0).as_micros();
                if span == 0 {
                    // Equal-time waypoints: a step; the earliest wins until t1.
                    return p0;
                }
                let frac = at.duration_since(t0).as_micros() as f64 / span as f64;
                return Position::new(lerp(p0.x, p1.x, frac), lerp(p0.y, p1.y, frac));
            }
        }
        self.waypoints.last().expect("non-empty").1
    }
}

/// Interpolates between `a` and `b`, clamped to `[min(a,b), max(a,b)]` so
/// rounding can never leave the segment.
fn lerp(a: f64, b: f64, frac: f64) -> f64 {
    let v = a + (b - a) * frac;
    if a <= b {
        v.clamp(a, b)
    } else {
        v.clamp(b, a)
    }
}

/// A geometric medium whose positions follow [`MobilityTrace`]s.
///
/// Before answering any propagation or carrier-sense query, every traced
/// node's position is re-evaluated at the frame's start time (deliveries)
/// or the assessment time (CCA), so the same query at the same simulated
/// time gives the same answer on every thread.  Nodes without a trace keep
/// whatever static position the inner medium was built with.
///
/// Overlapping-frame (capture) competitors are evaluated at the *querying*
/// frame's positions, not at their own start positions: frames overlap for
/// at most one air time (~ms), over which waypoint motion is negligible
/// next to the seconds-scale traces this models.
#[derive(Debug)]
pub struct Mobility {
    traces: Vec<(NodeId, MobilityTrace)>,
    inner: Box<dyn PositionedMedium>,
    /// The time positions were last synced at — one `transmit` queries every
    /// candidate receiver at the same `emission.start`, so consecutive
    /// same-time syncs (the common case) skip the trace re-evaluation.
    synced_at: Option<SimTime>,
}

impl Mobility {
    /// Wraps a geometric medium; add traces with [`Mobility::with_trace`].
    pub fn new(inner: Box<dyn PositionedMedium>) -> Self {
        Mobility {
            traces: Vec::new(),
            inner,
            synced_at: None,
        }
    }

    /// Attaches (or replaces) the trace of one node.
    pub fn with_trace(mut self, node: NodeId, trace: MobilityTrace) -> Self {
        self.traces.retain(|(id, _)| *id != node);
        self.traces.push((node, trace));
        self.synced_at = None;
        self
    }

    /// The attached traces.
    pub fn traces(&self) -> &[(NodeId, MobilityTrace)] {
        &self.traces
    }

    /// Moves every traced node to its position at `at` (no-op when already
    /// synced there).
    fn sync_positions(&mut self, at: SimTime) {
        if self.synced_at == Some(at) {
            return;
        }
        for (node, trace) in &self.traces {
            self.inner.set_position(*node, trace.position_at(at));
        }
        self.synced_at = Some(at);
    }
}

impl RadioMedium for Mobility {
    fn kind(&self) -> &'static str {
        "mobility"
    }

    fn reclaim_spatial_index(&mut self) -> Option<super::SpatialIndex> {
        self.inner.reclaim_spatial_index()
    }

    fn receive(&mut self, emission: &Emission, to: NodeId, competing: &[OnAir]) -> Reception {
        self.sync_positions(emission.start);
        self.inner.receive(emission, to, competing)
    }

    fn deliver(
        &mut self,
        emission: &Emission,
        nodes: &[NodeId],
        competing: &[OnAir],
    ) -> Vec<NodeId> {
        // Sync once, then let the inner geometric model answer the whole
        // delivery — through its spatial index when it has one (each
        // `set_position` above updated the index incrementally).
        self.sync_positions(emission.start);
        self.inner.deliver(emission, nodes, competing)
    }

    fn carrier_senses(&mut self, listener: NodeId, frame: &OnAir, at: SimTime) -> bool {
        self.sync_positions(at);
        self.inner.carrier_senses(listener, frame, at)
    }

    fn counters(&self) -> Option<DeliveryCounters> {
        self.inner.counters()
    }

    fn effort(&self) -> Option<MediumEffort> {
        self.inner.effort()
    }
}

#[cfg(test)]
mod tests {
    use super::super::UnitDisk;
    use super::*;
    use os_sim::AmPacket;

    #[test]
    fn trace_clamps_interpolates_and_parks() {
        let trace = MobilityTrace::new(vec![
            (SimTime::from_secs(10), Position::new(0.0, 0.0)),
            (SimTime::from_secs(20), Position::new(100.0, 50.0)),
        ]);
        // Before the first waypoint: parked at it.
        assert_eq!(trace.position_at(SimTime::ZERO), Position::new(0.0, 0.0));
        // Midway: linear.
        let mid = trace.position_at(SimTime::from_secs(15));
        assert_eq!(mid, Position::new(50.0, 25.0));
        // Exactly at a waypoint: exactly its position.
        assert_eq!(
            trace.position_at(SimTime::from_secs(20)),
            Position::new(100.0, 50.0)
        );
        // Long after the last: parked forever.
        assert_eq!(
            trace.position_at(SimTime::from_secs(9999)),
            Position::new(100.0, 50.0)
        );
    }

    #[test]
    fn empty_and_unsorted_traces_are_tamed() {
        assert_eq!(
            MobilityTrace::new(vec![]).position_at(SimTime::from_secs(5)),
            Position::ORIGIN
        );
        let trace = MobilityTrace::new(vec![
            (SimTime::from_secs(20), Position::new(2.0, 0.0)),
            (SimTime::from_secs(10), Position::new(1.0, 0.0)),
        ]);
        assert_eq!(trace.waypoints()[0].0, SimTime::from_secs(10));
        assert_eq!(trace.position_at(SimTime::ZERO), Position::new(1.0, 0.0));
    }

    fn emission_at(from: u32, at: SimTime) -> Emission {
        Emission {
            from: NodeId(from),
            channel: 26,
            packet: AmPacket::new(NodeId(from), NodeId(0xFF), 0, vec![]),
            start: at,
            end: at + hw_model::SimDuration::from_millis(1),
        }
    }

    #[test]
    fn walking_out_of_range_changes_delivery_over_time() {
        let disk = UnitDisk::new(10.0).with_position(NodeId(1), Position::new(0.0, 0.0));
        let mut m = Mobility::new(Box::new(disk)).with_trace(
            NodeId(2),
            MobilityTrace::new(vec![
                (SimTime::ZERO, Position::new(0.0, 0.0)),
                (SimTime::from_secs(100), Position::new(100.0, 0.0)),
            ]),
        );
        assert_eq!(m.kind(), "mobility");
        // t=1 s: 1 m away — delivered.
        assert_eq!(
            m.receive(&emission_at(1, SimTime::from_secs(1)), NodeId(2), &[]),
            Reception::Delivered
        );
        // t=50 s: 50 m away — gone.
        assert_eq!(
            m.receive(&emission_at(1, SimTime::from_secs(50)), NodeId(2), &[]),
            Reception::OutOfRange
        );
        let c = m.counters().expect("inherits the disk's counters");
        assert_eq!((c.delivered, c.lost_out_of_range), (1, 1));
    }
}
