//! Pluggable radio mediums.
//!
//! The shared [`crate::medium::Medium`] owns the *ether* — which frames are
//! on the air, which 802.11 interferers deposit energy — but delegates the
//! propagation question ("does this receiver hear this frame?") to a
//! [`RadioMedium`] model.  Four models ship:
//!
//! * [`Ideal`] — the original behavior: an explicit connectivity
//!   [`crate::medium::Topology`] decides delivery, byte-identical to the
//!   pre-medium-subsystem simulator;
//! * [`UnitDisk`] — node positions plus a hard communication range;
//! * [`PathLoss`] — a log-distance path-loss model with deterministic
//!   per-emission shadowing, an RSSI sensitivity floor, and a capture
//!   effect (the strongest overlapping frame above the capture margin
//!   survives, weaker ones are lost);
//! * [`Mobility`] — piecewise-linear waypoint traces driving node positions
//!   over simulation time, layered over either geometric model.
//!
//! Every model is a pure function of the emission, the receiver, and the
//! competing on-air frames — randomness comes from hashes of those inputs,
//! never from shared mutable RNG state — so a scenario produces identical
//! deliveries whatever thread executes it.

pub mod geometry;
pub mod ideal;
pub mod mobility;
pub mod path_loss;
pub mod spatial;
pub mod unit_disk;

pub use geometry::{Position, Positions};
pub use ideal::Ideal;
pub use mobility::{Mobility, MobilityTrace, PositionedMedium};
pub use path_loss::{PathLoss, PathLossParams};
pub use spatial::SpatialIndex;
pub use unit_disk::UnitDisk;

use crate::medium::Topology;
use hw_model::SimTime;
use os_sim::Emission;
use quanto_core::NodeId;

/// One mote transmission currently (or recently) on the air.
#[derive(Debug, Clone, PartialEq)]
pub struct OnAir {
    /// The transmitting node.
    pub from: NodeId,
    /// The 802.15.4 channel used.
    pub channel: u8,
    /// When the transmission started.
    pub start: SimTime,
    /// When the transmission ended.
    pub end: SimTime,
}

/// The outcome of one (emission, receiver) propagation query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reception {
    /// The receiver hears the frame.
    Delivered,
    /// The connectivity topology has no link from transmitter to receiver.
    Disconnected,
    /// The receiver is beyond the geometric communication range.
    OutOfRange,
    /// The received signal strength is under the sensitivity floor.
    BelowSensitivity,
    /// A stronger overlapping frame captured the receiver; this one is lost.
    Captured,
}

/// Delivery bookkeeping a geometric medium accumulates over a run.
///
/// [`Ideal`] predates these counters and deliberately does not track them —
/// consumers must go through fallible accessors (see
/// `quanto_fleet::ScenarioResult::medium_counters`) rather than assume they
/// exist.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryCounters {
    /// (emission, receiver) pairs that heard the frame.
    pub delivered: u64,
    /// Pairs lost to geometric range (or a missing topology link).
    pub lost_out_of_range: u64,
    /// Pairs lost under the RSSI sensitivity floor.
    pub lost_below_sensitivity: u64,
    /// Pairs lost to a stronger overlapping frame (capture effect).
    pub lost_captured: u64,
    /// Pairs actually pushed through [`RadioMedium::receive`] — the
    /// spatial index's *effort*.  The brute scan examines every pair, so
    /// here `candidates_examined == attempts()`; the indexed path examines
    /// only the index's candidates.
    pub candidates_examined: u64,
    /// Pairs the spatial index proved lossy without a query (bulk-counted
    /// into the matching `lost_*` field).  Always zero on the brute path.
    pub pruned_by_cutoff: u64,
}

impl DeliveryCounters {
    /// Records one propagation outcome.  [`Reception::Disconnected`] counts
    /// as out-of-range: both mean "the geometry/topology never connected the
    /// pair", as opposed to signal-level losses.
    pub fn record(&mut self, reception: Reception) {
        self.candidates_examined += 1;
        match reception {
            Reception::Delivered => self.delivered += 1,
            Reception::Disconnected | Reception::OutOfRange => self.lost_out_of_range += 1,
            Reception::BelowSensitivity => self.lost_below_sensitivity += 1,
            Reception::Captured => self.lost_captured += 1,
        }
    }

    /// Total lost (emission, receiver) pairs.
    pub fn lost(&self) -> u64 {
        self.lost_out_of_range + self.lost_below_sensitivity + self.lost_captured
    }

    /// Total propagation queries answered (examined or bulk-pruned).
    pub fn attempts(&self) -> u64 {
        self.delivered + self.lost()
    }

    /// The four propagation *outcomes* as one comparable tuple, excluding
    /// the effort fields.  This is what the index-vs-brute equivalence
    /// tests compare: outcomes must match exactly, while effort differs by
    /// construction (the brute scan examines everything and prunes
    /// nothing).  Only these four fields fold into the pinned digests.
    pub fn outcomes(&self) -> (u64, u64, u64, u64) {
        (
            self.delivered,
            self.lost_out_of_range,
            self.lost_below_sensitivity,
            self.lost_captured,
        )
    }
}

/// Model-specific work counters beyond delivery bookkeeping — how hard the
/// signal math itself worked.  Only [`PathLoss`] tracks these today.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MediumEffort {
    /// Shadowing fades actually hashed (the σ ≤ 0 fast path skips the
    /// hash, so this counts real SplitMix work).
    pub fades_hashed: u64,
    /// Clear-channel assessments answered by the distance cutoff without
    /// evaluating RSSI.
    pub cca_early_outs: u64,
}

/// A propagation model the shared [`crate::medium::Medium`] consults.
///
/// Implementations must be deterministic functions of their inputs (plus
/// their own construction-time configuration): the fleet runner executes the
/// same scenario on arbitrary worker threads and requires bit-identical
/// deliveries.  Randomness (e.g. shadowing) must therefore be derived by
/// hashing the emission's identity, never drawn from a stateful RNG shared
/// across queries.
pub trait RadioMedium: std::fmt::Debug + Send {
    /// A short stable name for diagnostics, scenario labels and error
    /// messages (`"ideal"`, `"unit_disk"`, `"path_loss"`, `"mobility"`).
    fn kind(&self) -> &'static str;

    /// Decides whether `to` hears `emission`.  `competing` holds every other
    /// transmission on the air on the same channel whose air time overlaps
    /// the emission — the capture-effect candidates.  The transmitter itself
    /// is never queried.
    fn receive(&mut self, emission: &Emission, to: NodeId, competing: &[OnAir]) -> Reception;

    /// Answers one whole delivery: which of `nodes` hear `emission`?  The
    /// default scans every node through [`RadioMedium::receive`] — the exact
    /// historical behavior, which [`Ideal`] keeps.  Geometric models
    /// override it with a [`SpatialIndex`] range query so a frame's cost is
    /// O(neighbors), not O(nodes); overrides must return the *same set* the
    /// default would (the engine's scheduling heap makes delivery order
    /// irrelevant, but the set is digest-critical) and must account every
    /// skipped node in their [`DeliveryCounters`].
    fn deliver(
        &mut self,
        emission: &Emission,
        nodes: &[NodeId],
        competing: &[OnAir],
    ) -> Vec<NodeId> {
        deliver_by_scan(self, emission, nodes, competing)
    }

    /// Whether a clear-channel assessment by `listener` at `at` detects the
    /// energy of `frame`.  The default — every frame is sensed everywhere —
    /// is the ideal-ether behavior; geometric models override it so distant
    /// transmitters stop tripping CCA (which is what creates hidden
    /// terminals, and with them capture-effect collisions).
    fn carrier_senses(&mut self, listener: NodeId, frame: &OnAir, at: SimTime) -> bool {
        let _ = (listener, frame, at);
        true
    }

    /// Delivery counters, when this medium tracks them.  The default is
    /// `None` ([`Ideal`] keeps it); geometric models return their counts.
    fn counters(&self) -> Option<DeliveryCounters> {
        None
    }

    /// Model-specific effort counters, when this medium tracks them
    /// ([`PathLoss`] only; wrappers delegate).
    fn effort(&self) -> Option<MediumEffort> {
        None
    }

    /// The connectivity topology, when this medium is driven by one
    /// ([`Ideal`] only).
    fn topology(&self) -> Option<&Topology> {
        None
    }

    /// Surrenders the spatial index's allocations to a workspace pool at
    /// teardown, if this medium holds one.  The medium must not deliver
    /// afterwards; the default (no index) is `None`.
    fn reclaim_spatial_index(&mut self) -> Option<SpatialIndex> {
        None
    }
}

/// The reference delivery: query every node.  Both the trait default and
/// the geometric models' no-index fallback route through this one loop, so
/// "brute force" means exactly one thing everywhere.
pub(crate) fn deliver_by_scan<M: RadioMedium + ?Sized>(
    model: &mut M,
    emission: &Emission,
    nodes: &[NodeId],
    competing: &[OnAir],
) -> Vec<NodeId> {
    nodes
        .iter()
        .copied()
        .filter(|to| {
            *to != emission.from && model.receive(emission, *to, competing) == Reception::Delivered
        })
        .collect()
}

/// SplitMix64 finalizer: the one hash every deterministic "RNG" in this
/// module is built from.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a hash to a uniform sample in `[0, 1)`.
pub(crate) fn unit_uniform(z: u64) -> f64 {
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_classify_and_sum() {
        let mut c = DeliveryCounters::default();
        c.record(Reception::Delivered);
        c.record(Reception::Delivered);
        c.record(Reception::Disconnected);
        c.record(Reception::OutOfRange);
        c.record(Reception::BelowSensitivity);
        c.record(Reception::Captured);
        assert_eq!(c.delivered, 2);
        assert_eq!(c.lost_out_of_range, 2, "Disconnected folds into range loss");
        assert_eq!(c.lost_below_sensitivity, 1);
        assert_eq!(c.lost_captured, 1);
        assert_eq!(c.lost(), 4);
        assert_eq!(c.attempts(), 6);
        // Effort fields stay out of the loss/attempt arithmetic: every
        // recorded pair was examined, none were bulk-pruned.
        assert_eq!(c.candidates_examined, 6);
        assert_eq!(c.pruned_by_cutoff, 0);
        assert_eq!(c.outcomes(), (2, 2, 1, 1));
    }

    #[test]
    fn mix_is_deterministic_and_spreads() {
        assert_eq!(mix(42), mix(42));
        assert_ne!(mix(42), mix(43));
        let u = unit_uniform(mix(7));
        assert!((0.0..1.0).contains(&u));
    }
}
