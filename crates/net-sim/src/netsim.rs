//! The multi-node network simulator.
//!
//! [`NetSim`] is the N-node configuration of `os-sim`'s shared
//! [`Engine`]: the engine advances the whole network in global time order
//! (at every step the node with the earliest pending event runs) and routes
//! every emitted frame through the shared [`Medium`], which registers it on
//! the air and delivers it (as a start-of-frame-delimiter event) to every
//! connected node.

use crate::interference::WifiInterferer;
use crate::medium::{Medium, Topology};
use crate::radio::{DeliveryCounters, RadioMedium, SpatialIndex};
use hw_model::{SimDuration, SimTime};
use os_sim::{Application, Engine, EngineScratch, Node, NodeConfig, NodeRunOutput};
use quanto_core::NodeId;

/// A multi-node simulation: the shared engine over a [`Medium`] world.
pub struct NetSim {
    engine: Engine<Medium>,
}

/// The reusable allocations of a torn-down [`NetSim`]: the engine's scratch
/// (node storage, scheduling heap, per-node log buffers — see
/// [`EngineScratch`]) plus the medium's spatial-index cell grid.  Opaque:
/// holds capacity, never state, so reuse cannot change what a run computes.
#[derive(Debug, Default)]
pub struct NetScratch {
    engine: EngineScratch,
    spatial: Option<SpatialIndex>,
}

impl NetScratch {
    /// An empty scratch pool (the first run through it allocates normally).
    pub fn new() -> Self {
        NetScratch::default()
    }

    /// Takes the recycled spatial index, if a previous run surrendered one —
    /// hand it to [`crate::radio::UnitDisk::adopt_spatial_index`] /
    /// [`crate::radio::PathLoss::adopt_spatial_index`] before placements.
    pub fn take_spatial_index(&mut self) -> Option<SpatialIndex> {
        self.spatial.take()
    }

    /// How many recycled log-buffer allocations the pool currently holds.
    pub fn log_buffers(&self) -> usize {
        self.engine.log_buffers()
    }
}

impl std::fmt::Debug for NetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetSim")
            .field("nodes", &self.engine.node_count())
            .finish()
    }
}

impl Default for NetSim {
    fn default() -> Self {
        NetSim::new()
    }
}

impl NetSim {
    /// Creates an empty network with a quiet, fully-connected medium.
    pub fn new() -> Self {
        NetSim {
            engine: Engine::new(Medium::new()),
        }
    }

    /// Creates an empty network reusing the allocations a previous network
    /// left in `scratch` (see [`NetSim::reset_into`]).  Behaviour-identical
    /// to [`NetSim::new`].
    pub fn new_in(scratch: &mut NetScratch) -> Self {
        NetSim {
            engine: Engine::new_in(Medium::new(), &mut scratch.engine),
        }
    }

    /// Tears the network down, returning its reusable allocations (engine
    /// containers, per-node log buffers, the medium's spatial index) to
    /// `scratch` for the next [`NetSim::new_in`].
    pub fn reset_into(mut self, scratch: &mut NetScratch) {
        if let Some(index) = self.engine.world_mut().reclaim_spatial_index() {
            scratch.spatial = Some(index);
        }
        self.engine.reset_into(&mut scratch.engine);
    }

    /// Adds a node running `app` under `config`.  Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same id is already registered.
    pub fn add_node(&mut self, config: NodeConfig, app: Box<dyn Application>) -> NodeId {
        self.engine.add_node(config, app)
    }

    /// Adds an 802.11 interference source to the medium.
    pub fn add_interferer(&mut self, interferer: WifiInterferer) {
        self.engine.world_mut().add_interferer(interferer);
    }

    /// Replaces the connectivity topology (installs an ideal medium over it).
    pub fn set_topology(&mut self, topology: Topology) {
        self.engine.world_mut().set_topology(topology);
    }

    /// Replaces the propagation model (unit disk, path loss, mobility, …).
    pub fn set_medium(&mut self, model: Box<dyn RadioMedium>) {
        self.engine.world_mut().set_model(model);
    }

    /// The medium's delivery counters, when its model tracks them (`None`
    /// under the ideal model).
    pub fn medium_counters(&self) -> Option<DeliveryCounters> {
        self.medium().counters()
    }

    /// The medium's effort counters, when its model tracks them (path loss
    /// only — `None` elsewhere).
    pub fn medium_effort(&self) -> Option<crate::radio::MediumEffort> {
        self.medium().effort()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.engine.node_count()
    }

    /// Read-only access to a node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.engine.node(id)
    }

    /// Read-only access to the medium.
    pub fn medium(&self) -> &Medium {
        self.engine.world()
    }

    /// Attaches a streaming log-chunk consumer to one node (see
    /// [`os_sim::Kernel::set_log_sink`]); with a sink attached that node's
    /// [`NodeRunOutput::log`] comes back empty — the entries stream through
    /// the sink during the run instead.  Returns `false` if no node has that
    /// id.
    pub fn set_node_log_sink(&mut self, id: NodeId, sink: Box<dyn quanto_core::LogSink>) -> bool {
        self.engine.set_node_log_sink(id, sink)
    }

    /// Attaches or detaches every node's ground-truth oscilloscope probe
    /// (see [`os_sim::Kernel::set_trace_recording`]).
    pub fn set_trace_recording(&mut self, enabled: bool) {
        self.engine.set_trace_recording(enabled);
    }

    /// Read-only access to the underlying engine.
    pub fn engine(&self) -> &Engine<Medium> {
        &self.engine
    }

    /// Boots every node (applications' `boot` handlers run at time zero).
    pub fn boot_all(&mut self) {
        self.engine.boot_all();
    }

    /// Advances the whole network until `until` (inclusive).
    pub fn run_until(&mut self, until: SimTime) {
        self.engine.run_until(until);
    }

    /// Runs the network for `duration` and collects every node's outputs.
    pub fn run_for(&mut self, duration: SimDuration) -> Vec<(NodeId, NodeRunOutput)> {
        self.engine.run_for(duration)
    }

    /// Collects every node's outputs at `end` without running further.
    pub fn finish(&mut self, end: SimTime) -> Vec<(NodeId, NodeRunOutput)> {
        self.engine.finish(end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use os_sim::{AmPacket, OsHandle, TimerId};
    use quanto_core::ActivityLabel;

    /// A minimal ping-pong application: node `peer` gets our packet and
    /// echoes it back after a short delay.
    struct Echo {
        peer: NodeId,
        initiator: bool,
        act: ActivityLabel,
        received: u32,
    }

    impl Echo {
        fn new(peer: NodeId, initiator: bool) -> Self {
            Echo {
                peer,
                initiator,
                act: ActivityLabel::IDLE,
                received: 0,
            }
        }
    }

    impl Application for Echo {
        fn boot(&mut self, os: &mut OsHandle) {
            self.act = os.define_activity("EchoApp");
            os.set_cpu_activity(self.act);
            os.radio_on();
            if self.initiator {
                os.start_timer(SimDuration::from_millis(100), false);
            }
            os.set_cpu_activity(os.idle_activity());
        }

        fn timer_fired(&mut self, _t: TimerId, os: &mut OsHandle) {
            os.set_cpu_activity(self.act);
            os.send(self.peer, 1, vec![0xAB; 10]);
        }

        fn packet_received(&mut self, packet: &AmPacket, os: &mut OsHandle) {
            self.received += 1;
            // The CPU is running under the sender's activity right now.
            assert_eq!(packet.activity.origin, packet.src);
            if self.received <= 3 {
                os.start_timer(SimDuration::from_millis(50), false);
            }
        }
    }

    #[test]
    fn two_nodes_exchange_packets_and_carry_activities() {
        let mut net = NetSim::new();
        let cfg = |id: u32| NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(NodeId(id))
        };
        let n1 = net.add_node(cfg(1), Box::new(Echo::new(NodeId(4), true)));
        let n4 = net.add_node(cfg(4), Box::new(Echo::new(NodeId(1), false)));
        let out = net.run_for(SimDuration::from_secs(2));
        assert_eq!(out.len(), 2);
        let stats1 = net.node(n1).unwrap().kernel().radio_stats();
        let stats4 = net.node(n4).unwrap().kernel().radio_stats();
        assert!(
            stats1.packets_sent >= 1,
            "node 1 sent {}",
            stats1.packets_sent
        );
        assert!(
            stats4.packets_received >= 1,
            "node 4 heard {}",
            stats4.packets_received
        );
        // The echo made it back at least once.
        assert!(stats4.packets_sent >= 1);
        assert!(stats1.packets_received >= 1);
        // Each node's log contains activity labels that originated on the
        // other node (the cross-node propagation of Section 3.3).
        let (_, out1) = out.iter().find(|(id, _)| *id == n1).unwrap();
        let remote_on_1 = out1
            .log
            .iter()
            .filter_map(|e| e.label())
            .filter(|l| l.origin == NodeId(4))
            .count();
        assert!(
            remote_on_1 > 0,
            "node 1 never charged work to node 4's activity"
        );
    }

    #[test]
    fn disconnected_topology_blocks_delivery() {
        let mut net = NetSim::new();
        let cfg = |id: u32| NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(NodeId(id))
        };
        net.add_node(cfg(1), Box::new(Echo::new(NodeId(4), true)));
        net.add_node(cfg(4), Box::new(Echo::new(NodeId(1), false)));
        net.set_topology(Topology::from_links(&[]));
        let out = net.run_for(SimDuration::from_secs(1));
        let (_, out4) = out.iter().find(|(id, _)| id.as_u32() == 4).unwrap();
        assert_eq!(out4.radio_stats.packets_received, 0);
    }

    #[test]
    fn duplicate_node_ids_rejected() {
        let mut net = NetSim::new();
        net.add_node(NodeConfig::new(NodeId(1)), Box::new(os_sim::NullApp));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.add_node(NodeConfig::new(NodeId(1)), Box::new(os_sim::NullApp));
        }));
        assert!(result.is_err());
    }
}
