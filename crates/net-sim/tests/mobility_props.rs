//! Property tests on mobility-trace evaluation.
//!
//! The paper's own log timestamps are 32-bit microseconds and wrap every
//! ~71.6 minutes; `SimTime` is 64-bit, so traces must keep working — and
//! keep moving *forward* — for times at and past the `u32::MAX` µs boundary
//! where a careless 32-bit cast would fold time back to zero.

use hw_model::SimTime;
use net_sim::{MobilityTrace, Position};
use proptest::prelude::*;

/// The 32-bit microsecond boundary, as a 64-bit time.
const WRAP_US: u64 = u32::MAX as u64;

/// Builds a trace whose waypoint times straddle the 32-bit boundary and
/// whose coordinates never decrease.
fn monotone_trace(start_back_us: u64, legs: &[(u64, u32, u32)]) -> MobilityTrace {
    let mut t = WRAP_US - (start_back_us % WRAP_US);
    let mut x = 0.0;
    let mut y = 0.0;
    let mut waypoints = Vec::with_capacity(legs.len() + 1);
    waypoints.push((SimTime::from_micros(t), Position::new(x, y)));
    for (dt, dx, dy) in legs {
        t += dt;
        x += *dx as f64;
        y += *dy as f64;
        waypoints.push((SimTime::from_micros(t), Position::new(x, y)));
    }
    MobilityTrace::new(waypoints)
}

proptest! {
    /// For traces that only move forward (in x and y), sampling at
    /// increasing times — across the 32-bit boundary — yields positions
    /// that only move forward: no float jitter ever walks a node backwards.
    #[test]
    fn trace_evaluation_is_monotone_across_the_32bit_boundary(
        start_back_us in 1u64..WRAP_US,
        legs in prop::collection::vec((1u64..200_000_000, 0u32..1000, 0u32..1000), 1..10),
        samples in prop::collection::vec(any::<u64>(), 32),
    ) {
        let trace = monotone_trace(start_back_us, &legs);
        let first = trace.waypoints().first().unwrap().0;
        let last = trace.waypoints().last().unwrap().0;
        let span = last.duration_since(first).as_micros();
        // Probe strictly increasing times covering before, inside and after
        // the trace (and therefore both sides of the wrap boundary).
        let mut times: Vec<u64> = samples
            .iter()
            .map(|s| first.as_micros().saturating_sub(1000) + s % (span + 2000))
            .collect();
        times.sort_unstable();
        let mut prev = trace.position_at(SimTime::ZERO);
        for t in times {
            let p = trace.position_at(SimTime::from_micros(t));
            prop_assert!(
                p.x >= prev.x && p.y >= prev.y,
                "position moved backwards at t={t}: {prev:?} -> {p:?}"
            );
            prev = p;
        }
    }

    /// Waypoints are hit exactly: at a waypoint's own time the interpolated
    /// position is bit-exact, before the first the node parks at it, and
    /// after the last it parks there forever — however large the time.
    #[test]
    fn waypoints_are_exact_and_ends_park(
        start_back_us in 1u64..WRAP_US,
        legs in prop::collection::vec((1u64..200_000_000, 0u32..1000, 0u32..1000), 1..10),
        beyond in 0u64..WRAP_US,
    ) {
        let trace = monotone_trace(start_back_us, &legs);
        for (t, p) in trace.waypoints() {
            let got = trace.position_at(*t);
            prop_assert!(
                got.x.to_bits() == p.x.to_bits() && got.y.to_bits() == p.y.to_bits(),
                "waypoint at {t:?} not hit exactly: {got:?} != {p:?}"
            );
        }
        let (first_t, first_p) = trace.waypoints().first().copied().unwrap();
        let (last_t, last_p) = trace.waypoints().last().copied().unwrap();
        prop_assert_eq!(trace.position_at(SimTime::ZERO), first_p);
        prop_assert_eq!(
            trace.position_at(SimTime::from_micros(first_t.as_micros() - 1)),
            first_p
        );
        prop_assert_eq!(
            trace.position_at(SimTime::from_micros(last_t.as_micros().saturating_add(beyond))),
            last_p
        );
    }

    /// Interpolated positions never leave the bounding box of their
    /// segment's endpoints, wherever in time the segment sits.
    #[test]
    fn interpolation_stays_inside_each_segment(
        start_back_us in 1u64..WRAP_US,
        legs in prop::collection::vec((2u64..200_000_000, 0u32..1000, 0u32..1000), 1..8),
        frac_percent in 0u64..=100,
    ) {
        let trace = monotone_trace(start_back_us, &legs);
        let waypoints = trace.waypoints().to_vec();
        for pair in waypoints.windows(2) {
            let (t0, p0) = pair[0];
            let (t1, p1) = pair[1];
            let dt = t1.duration_since(t0).as_micros();
            let t = t0.as_micros() + dt * frac_percent / 100;
            let p = trace.position_at(SimTime::from_micros(t));
            prop_assert!(
                p.x >= p0.x.min(p1.x) && p.x <= p0.x.max(p1.x),
                "x left the segment at t={t}: {p:?} outside [{p0:?}, {p1:?}]"
            );
            prop_assert!(
                p.y >= p0.y.min(p1.y) && p.y <= p0.y.max(p1.y),
                "y left the segment at t={t}: {p:?} outside [{p0:?}, {p1:?}]"
            );
        }
    }
}
