//! The spatial index must be invisible: for every geometry, every medium
//! parameterization and every mobility trace, the indexed fast path must
//! produce the exact receiver set, the exact delivery counters and the
//! exact CCA answers of the brute-force all-nodes scan.  The index is only
//! allowed to make runs *faster*, never different — that is what lets the
//! pinned fleet digests survive the 254-node cap removal.

use hw_model::{SimDuration, SimTime};
use net_sim::{
    Mobility, MobilityTrace, OnAir, PathLoss, PathLossParams, Position, RadioMedium, UnitDisk,
};
use os_sim::{AmPacket, Emission};
use proptest::prelude::*;
use quanto_core::NodeId;

/// A `(node id, x, y)` scatter: ids 1..=n (unique by construction).  Raw
/// decimeter integers keep the offline proptest shim happy (it has no f64
/// strategies) while still exercising fractional coordinates.
fn scatter(coords_dm: &[(i32, i32)]) -> Vec<(NodeId, Position)> {
    coords_dm
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| {
            (
                NodeId(i as u32 + 1),
                Position::new(x as f64 / 10.0, y as f64 / 10.0),
            )
        })
        .collect()
}

fn emission(from: NodeId, channel: u8, start_us: u64) -> Emission {
    Emission {
        from,
        channel,
        packet: AmPacket::new(from, NodeId::BROADCAST, 0, vec![]),
        start: SimTime::from_micros(start_us),
        end: SimTime::from_micros(start_us) + SimDuration::from_millis(1),
    }
}

/// Runs the same delivery through both models and requires identical
/// receiver sets and identical delivery *outcomes*.  The effort fields
/// (`candidates_examined`, `pruned_by_cutoff`) legitimately differ — the
/// brute scan examines every pair and prunes none — but on both paths they
/// must conserve: every attempted pair was examined or bulk-pruned.
fn assert_deliveries_match(
    fast: &mut dyn RadioMedium,
    brute: &mut dyn RadioMedium,
    e: &Emission,
    roster: &[NodeId],
    competing: &[OnAir],
) -> Result<(), TestCaseError> {
    let mut a = fast.deliver(e, roster, competing);
    let mut b = brute.deliver(e, roster, competing);
    a.sort_unstable();
    b.sort_unstable();
    prop_assert!(
        a == b,
        "receiver sets diverged for {:?}: {:?} vs {:?}",
        e.from,
        a,
        b
    );
    let fc = fast.counters().expect("geometric models track counters");
    let bc = brute.counters().expect("geometric models track counters");
    prop_assert!(
        fc.outcomes() == bc.outcomes(),
        "outcomes diverged for {:?}: {:?} vs {:?}",
        e.from,
        fc,
        bc
    );
    for (label, c) in [("fast", fc), ("brute", bc)] {
        prop_assert!(
            c.candidates_examined + c.pruned_by_cutoff == c.attempts(),
            "{} path lost effort accounting: {:?}",
            label,
            c
        );
    }
    prop_assert!(
        bc.pruned_by_cutoff == 0,
        "the brute scan must never prune: {:?}",
        bc
    );
    Ok(())
}

const SIGMAS: [f64; 4] = [0.0, 2.0, 4.0, 9.0];

proptest! {
    /// Unit disk: indexed deliveries equal the brute scan for random
    /// geometries, ranges (including the inclusive `d == range` edge, which
    /// `grid_snap` lands nodes on exactly) and transmitters.
    #[test]
    fn unit_disk_indexed_deliveries_match_brute(
        coords_dm in prop::collection::vec((-3000i32..3000, -3000i32..3000), 2..40),
        grid_snap in any::<bool>(),
        range_dm in 10u32..2000,
        tx_picks in prop::collection::vec(any::<usize>(), 1..6),
    ) {
        let range_m = range_dm as f64 / 10.0;
        let placed = scatter(&coords_dm);
        let mut fast = UnitDisk::new(range_m);
        let mut brute = UnitDisk::new(range_m).without_spatial_index();
        for &(id, mut p) in &placed {
            if grid_snap {
                // Snap to multiples of the range: distances hit the
                // inclusive delivery edge exactly.
                p = Position::new(
                    (p.x / range_m).round() * range_m,
                    (p.y / range_m).round() * range_m,
                );
            }
            fast = fast.with_position(id, p);
            brute = brute.with_position(id, p);
        }
        let roster: Vec<NodeId> = placed.iter().map(|&(id, _)| id).collect();
        for (i, pick) in tx_picks.iter().enumerate() {
            let from = roster[pick % roster.len()];
            let e = emission(from, 26, 1_000 * (i as u64 + 1));
            assert_deliveries_match(&mut fast, &mut brute, &e, &roster, &[])?;
        }
    }

    /// Path loss: indexed deliveries equal the brute scan for random
    /// geometries, shadowing strengths (zero and strong), exponents, seeds
    /// and overlapping capture competitors.
    #[test]
    fn path_loss_indexed_deliveries_match_brute(
        coords_dm in prop::collection::vec((-4000i32..4000, -4000i32..4000), 2..40),
        sigma_pick in 0usize..4,
        exponent_tenths in 20u32..45,
        seed in any::<u64>(),
        tx_picks in prop::collection::vec(any::<usize>(), 1..6),
        n_competing in 0usize..3,
    ) {
        let params = PathLossParams {
            shadowing_sigma_db: SIGMAS[sigma_pick],
            exponent: exponent_tenths as f64 / 10.0,
            seed,
            ..PathLossParams::default()
        };
        let placed = scatter(&coords_dm);
        let mut fast = PathLoss::new(params);
        let mut brute = PathLoss::new(params).without_spatial_index();
        for &(id, p) in &placed {
            fast = fast.with_position(id, p);
            brute = brute.with_position(id, p);
        }
        let roster: Vec<NodeId> = placed.iter().map(|&(id, _)| id).collect();
        for (i, pick) in tx_picks.iter().enumerate() {
            let from = roster[pick % roster.len()];
            let start = 10_000 * (i as u64 + 1);
            // Competitors from the first nodes of the roster, overlapping
            // the frame — exercises the capture rule on both paths.
            let competing: Vec<OnAir> = roster
                .iter()
                .filter(|&&n| n != from)
                .take(n_competing)
                .map(|&n| OnAir {
                    from: n,
                    channel: 26,
                    start: SimTime::from_micros(start - 100),
                    end: SimTime::from_micros(start + 2_000),
                })
                .collect();
            let e = emission(from, 26, start);
            assert_deliveries_match(&mut fast, &mut brute, &e, &roster, &competing)?;
        }
    }

    /// The CCA distance early-out never changes an assessment: for every
    /// geometry and threshold, `carrier_senses` equals the raw RSSI
    /// comparison it short-circuits.
    #[test]
    fn path_loss_cca_cutoff_matches_the_rssi_rule(
        coords_dm in prop::collection::vec((-4000i32..4000, -4000i32..4000), 2..30),
        sigma_pick in 0usize..4,
        cca_pick in 0usize..3,
        seed in any::<u64>(),
    ) {
        let base = PathLossParams::default();
        let cca_offsets: [Option<f64>; 3] = [None, Some(-8.0), Some(8.0)];
        let params = PathLossParams {
            shadowing_sigma_db: SIGMAS[sigma_pick],
            cca_threshold_dbm: cca_offsets[cca_pick].map(|off| base.sensitivity_dbm + off),
            seed,
            ..base
        };
        let placed = scatter(&coords_dm);
        let mut m = PathLoss::new(params);
        for &(id, p) in &placed {
            m = m.with_position(id, p);
        }
        let from = placed[0].0;
        let frame = OnAir {
            from,
            channel: 26,
            start: SimTime::from_millis(5),
            end: SimTime::from_millis(6),
        };
        let at = SimTime::from_millis(5);
        for &(listener, _) in &placed[1..] {
            let expected = m.rssi_dbm(from, listener, frame.start) >= m.params().cca_dbm();
            prop_assert!(
                m.carrier_senses(listener, &frame, at) == expected,
                "CCA diverged for listener {:?}",
                listener
            );
        }
    }

    /// Mobility over a geometric base: as traced nodes walk (updating the
    /// index incrementally, cell by cell), deliveries at every sampled time
    /// still equal the brute scan's.
    #[test]
    fn mobility_indexed_deliveries_match_brute_over_traces(
        coords_dm in prop::collection::vec((-3000i32..3000, -3000i32..3000), 3..20),
        walks_dm in prop::collection::vec((-5000i32..5000, -5000i32..5000), 1..8),
        sigma_pick in 0usize..2,
        seed in any::<u64>(),
        sample_times_s in prop::collection::vec(0u64..120, 1..6),
    ) {
        let params = PathLossParams {
            shadowing_sigma_db: SIGMAS[sigma_pick * 2],
            seed,
            ..PathLossParams::default()
        };
        let placed = scatter(&coords_dm);
        let build = |brute: bool| {
            let mut inner = PathLoss::new(params);
            if brute {
                inner = inner.without_spatial_index();
            }
            for &(id, p) in &placed {
                inner = inner.with_position(id, p);
            }
            let mut mob = Mobility::new(Box::new(inner));
            // The first `walks_dm.len()` nodes walk from their start to a
            // random endpoint over 100 s; the rest stay parked.
            for (k, &(ex, ey)) in walks_dm.iter().enumerate() {
                let (id, p) = placed[k % placed.len()];
                mob = mob.with_trace(id, MobilityTrace::new(vec![
                    (SimTime::ZERO, p),
                    (
                        SimTime::from_secs(100),
                        Position::new(ex as f64 / 10.0, ey as f64 / 10.0),
                    ),
                ]));
            }
            mob
        };
        let mut fast = build(false);
        let mut brute = build(true);
        let roster: Vec<NodeId> = placed.iter().map(|&(id, _)| id).collect();
        let mut times = sample_times_s.clone();
        times.sort_unstable();
        for (i, s) in times.iter().enumerate() {
            let from = roster[i % roster.len()];
            let e = emission(from, 26, s * 1_000_000 + 17);
            assert_deliveries_match(&mut fast, &mut brute, &e, &roster, &[])?;
        }
    }
}
