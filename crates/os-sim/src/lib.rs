//! A TinyOS-like embedded OS simulator, instrumented with Quanto.
//!
//! The paper implements Quanto by modifying TinyOS running on the HydroWatch
//! platform: tasks, timers, arbiters, interrupt handlers, the network stack
//! and the device drivers are instrumented to expose power states and to
//! propagate activity labels.  This crate builds the equivalent substrate as
//! a discrete-event simulation:
//!
//! * [`kernel::Kernel`] — the per-node OS: event queue, CPU execution model,
//!   task scheduler, virtual timers, SPI arbiter, drivers (LEDs, CC2420-style
//!   radio with optional low-power listening, flash, sensor), the Active
//!   Message layer with the hidden activity field, the ground-truth energy
//!   accumulator, the simulated iCount meter and the Quanto runtime.
//! * [`app::Application`] — the split-phase, event-driven application model.
//! * [`node::Node`] — kernel + application + event dispatch.
//! * [`engine::Engine`] — the shared event-driven scheduler: global time
//!   advancement over any number of nodes in a pluggable [`world::World`].
//! * [`sim::Simulator`] — the one-node engine configuration (quiet ether).
//!
//! Multi-node coordination (radio medium, interference) lives in `net-sim`,
//! whose `NetSim` is the N-node configuration of the same engine.

pub mod app;
pub mod arbiter;
pub mod config;
pub mod drivers;
pub mod engine;
pub mod event;
pub mod kernel;
pub mod node;
pub mod packet;
pub mod sched;
pub mod sim;
pub mod timer;
pub mod world;

pub use app::{Application, NullApp};
pub use arbiter::{Arbiter, BusClient, GrantOutcome};
pub use config::{LplConfig, NodeConfig, SpiMode};
pub use engine::{Engine, EngineScratch, EngineStats};
pub use event::{FlashOp, NodeEvent, SensorKind, TaskId, TimerId};
pub use kernel::{IrqSource, Kernel, NodeRunOutput, OsHandle};
pub use node::Node;
pub use packet::{AmPacket, AM_BROADCAST};
pub use sim::Simulator;
pub use world::{Emission, QuietWorld, World};
