//! Active Message packets with the hidden Quanto activity field.
//!
//! Quanto adds a hidden field to the TinyOS Active Message implementation:
//! when a packet is submitted for transmission its activity field is set to
//! the CPU's current activity, and on reception the AM layer sets the CPU
//! activity to the one in the packet, binding the reception proxy to it.

use quanto_core::{ActivityLabel, NodeId};

/// Size of the AM/802.15.4 header we model, in bytes (preamble + SFD + frame
/// control + sequence + addressing + AM type + CRC).
pub const HEADER_BYTES: usize = 13;

/// Size of the hidden activity field, in bytes.
pub const ACTIVITY_FIELD_BYTES: usize = 2;

/// An Active Message packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmPacket {
    /// Sending node.
    pub src: NodeId,
    /// Destination node (no broadcast address handling; net-sim delivers to
    /// every in-range listener and the AM layer filters).
    pub dest: NodeId,
    /// AM type (dispatch id).
    pub am_type: u8,
    /// Application payload.
    pub payload: Vec<u8>,
    /// The hidden activity label, set by the sender's AM layer.
    pub activity: ActivityLabel,
}

impl AmPacket {
    /// Creates a packet with an idle activity label (the AM layer overwrites
    /// it at submission time).
    pub fn new(src: NodeId, dest: NodeId, am_type: u8, payload: Vec<u8>) -> Self {
        AmPacket {
            src,
            dest,
            am_type,
            payload,
            activity: ActivityLabel::IDLE,
        }
    }

    /// Total over-the-air length in bytes, including the hidden field.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES + ACTIVITY_FIELD_BYTES + self.payload.len()
    }
}

/// The broadcast destination (all nodes).  Re-exported alias of
/// [`NodeId::BROADCAST`]; the historical one-byte sentinel `0xFF` would be a
/// real node id in fleets beyond 254 nodes.
pub const AM_BROADCAST: NodeId = NodeId::BROADCAST;

#[cfg(test)]
mod tests {
    use super::*;
    use quanto_core::ActivityId;

    #[test]
    fn wire_length_includes_hidden_field() {
        let p = AmPacket::new(NodeId(1), NodeId(4), 7, vec![0; 20]);
        assert_eq!(p.wire_bytes(), 13 + 2 + 20);
        assert!(p.activity.is_idle());
    }

    #[test]
    fn activity_field_survives_clone() {
        let mut p = AmPacket::new(NodeId(1), NodeId(4), 7, vec![1, 2, 3]);
        p.activity = ActivityLabel::new(NodeId(1), ActivityId(9));
        let q = p.clone();
        assert_eq!(q.activity, p.activity);
        assert_eq!(q.payload, vec![1, 2, 3]);
    }
}
