//! Node configuration.

use energy_meter::ICountConfig;
use hw_model::{NoiseModel, Voltage};
use quanto_core::{AccountingMode, CostModel, NodeId, OverflowPolicy};

/// How the CPU moves packet data to and from the radio chip over the SPI bus
/// (the Figure 16 case study).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpiMode {
    /// One interrupt per two bytes transferred (the TinyOS default).
    Interrupt,
    /// A DMA channel moves the whole buffer with a single completion
    /// interrupt.
    Dma,
}

/// Low-power-listening configuration for the radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LplConfig {
    /// How often the receiver wakes up to sample the channel (500 ms in the
    /// paper's experiment).
    pub check_interval_ms: u64,
    /// How long a single clear-channel sample keeps the radio on.
    pub sample_window_ms: u64,
    /// How long the radio stays on after detecting energy, waiting for a
    /// packet, before giving up (the ~100 ms the paper observes).
    pub listen_timeout_ms: u64,
}

impl Default for LplConfig {
    fn default() -> Self {
        LplConfig {
            check_interval_ms: 500,
            sample_window_ms: 5,
            listen_timeout_ms: 100,
        }
    }
}

/// Configuration of one simulated node.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// The node's network identifier (also the origin of its activities).
    pub node_id: NodeId,
    /// CPU clock frequency in Hz (1 MHz on the paper's platform).
    pub clock_hz: u64,
    /// Supply voltage.
    pub supply: Voltage,
    /// Deviation of the true hardware from the Table 1 nominals.
    pub noise: NoiseModel,
    /// iCount meter configuration.
    pub icount: ICountConfig,
    /// 802.15.4 channel the radio uses (11–26).
    pub radio_channel: u8,
    /// SPI transfer mode between CPU and radio.
    pub spi_mode: SpiMode,
    /// Low-power listening; `None` keeps the radio always on when enabled.
    pub lpl: Option<LplConfig>,
    /// Whether the periodic (16 Hz) DCO-calibration timer interrupt runs —
    /// the surprising always-on interrupt of Figure 15.
    pub dco_calibration: bool,
    /// Quanto log capacity, in entries.
    pub log_capacity: usize,
    /// Quanto log overflow policy.
    pub overflow_policy: OverflowPolicy,
    /// Quanto accounting mode.
    pub accounting: AccountingMode,
    /// Quanto per-sample cost model.
    pub cost_model: CostModel,
    /// Whether Quanto instrumentation is enabled at all (disable for the
    /// overhead ablation).
    pub quanto_enabled: bool,
    /// Default CPU cost of an interrupt handler, in cycles.
    pub handler_cycles: u32,
    /// Default CPU cost of a task, in cycles.
    pub task_cycles: u32,
    /// Cycles to transfer one 2-byte chunk over SPI in interrupt mode
    /// (including the interrupt overhead).
    pub spi_chunk_cycles: u32,
    /// Cycles per byte for a DMA transfer (no per-byte interrupts).
    pub spi_dma_cycles_per_byte: u32,
    /// Radio bit rate in kbps (250 for 802.15.4).
    pub radio_kbps: u32,
    /// Minimum and maximum CSMA backoff, in microseconds.
    pub backoff_us: (u64, u64),
    /// RNG seed for this node (backoff jitter, etc.).
    pub seed: u64,
}

impl NodeConfig {
    /// A paper-faithful default configuration for a given node id.
    pub fn new(node_id: NodeId) -> Self {
        NodeConfig {
            node_id,
            clock_hz: 1_000_000,
            supply: Voltage::from_volts(3.0),
            noise: NoiseModel::IDEAL,
            icount: ICountConfig::hydrowatch(),
            radio_channel: 26,
            spi_mode: SpiMode::Interrupt,
            lpl: None,
            dco_calibration: true,
            log_capacity: 100_000,
            overflow_policy: OverflowPolicy::Flush,
            accounting: AccountingMode::Log,
            cost_model: CostModel::paper(),
            quanto_enabled: true,
            handler_cycles: 60,
            task_cycles: 120,
            spi_chunk_cycles: 150,
            spi_dma_cycles_per_byte: 12,
            radio_kbps: 250,
            backoff_us: (320, 2_240),
            seed: node_id.as_u64() + 1,
        }
    }

    /// Microseconds per CPU cycle (fractional clock rates round up to 1 µs
    /// per cycle granularity when converted).
    pub fn cycles_to_micros(&self, cycles: u64) -> u64 {
        (cycles * 1_000_000).div_ceil(self.clock_hz)
    }

    /// Time to transmit `bytes` bytes over the air, in microseconds.
    pub fn airtime_us(&self, bytes: usize) -> u64 {
        (bytes as u64 * 8 * 1_000).div_ceil(self.radio_kbps as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_platform() {
        let c = NodeConfig::new(NodeId(1));
        assert_eq!(c.clock_hz, 1_000_000);
        assert_eq!(c.supply.as_volts(), 3.0);
        assert_eq!(c.cost_model.cycles_per_sample(), 102);
        assert!(c.dco_calibration);
        assert_eq!(c.spi_mode, SpiMode::Interrupt);
        assert!(c.lpl.is_none());
    }

    #[test]
    fn cycle_and_airtime_conversions() {
        let c = NodeConfig::new(NodeId(1));
        assert_eq!(c.cycles_to_micros(102), 102);
        // 40 bytes at 250 kbps = 1280 us.
        assert_eq!(c.airtime_us(40), 1_280);
        let fast = NodeConfig {
            clock_hz: 8_000_000,
            ..c
        };
        assert_eq!(fast.cycles_to_micros(102), 13);
    }

    #[test]
    fn lpl_default_matches_experiment() {
        let lpl = LplConfig::default();
        assert_eq!(lpl.check_interval_ms, 500);
        assert!(lpl.listen_timeout_ms >= 50);
    }
}
