//! Single-node simulation driver.
//!
//! Most of the paper's experiments (Blink, the timer probe, the DMA study)
//! run on a single node; [`Simulator`] is the one-node configuration of the
//! shared [`Engine`]: it wires a single node to a [`World`] and runs it for a
//! fixed duration, returning everything the offline analysis needs.  Time
//! advancement lives entirely in the engine — the same loop `net-sim` uses
//! for multi-node runs.

use crate::app::Application;
use crate::config::NodeConfig;
use crate::engine::Engine;
use crate::kernel::NodeRunOutput;
use crate::node::Node;
use crate::world::{QuietWorld, World};
use hw_model::{SimDuration, SimTime};
use quanto_core::NodeId;

/// A single-node simulation.
pub struct Simulator<W: World = QuietWorld> {
    engine: Engine<W>,
    id: NodeId,
}

impl Simulator<QuietWorld> {
    /// Creates a simulation of one node in a quiet ether.
    pub fn new(config: NodeConfig, app: Box<dyn Application>) -> Self {
        Simulator::with_world(config, app, QuietWorld)
    }
}

impl<W: World> Simulator<W> {
    /// Creates a simulation of one node in the given world.
    pub fn with_world(config: NodeConfig, app: Box<dyn Application>, world: W) -> Self {
        let mut engine = Engine::new(world);
        let id = engine.add_node(config, app);
        Simulator { engine, id }
    }

    /// Read-only access to the node.
    pub fn node(&self) -> &Node {
        self.engine
            .node(self.id)
            .expect("a Simulator always holds exactly one node")
    }

    /// Mutable access to the world (e.g. to reconfigure interference).
    pub fn world_mut(&mut self) -> &mut W {
        self.engine.world_mut()
    }

    /// Attaches a streaming log-chunk consumer to the node: `Flush` drains
    /// during the run and the end-of-run take stream through it, keeping the
    /// node-side log memory bounded by the RAM buffer capacity.  The
    /// [`NodeRunOutput::log`] of a sinked run comes back empty.
    pub fn set_log_sink(&mut self, sink: Box<dyn quanto_core::LogSink>) {
        self.engine.set_node_log_sink(self.id, sink);
    }

    /// Read-only access to the underlying engine.
    pub fn engine(&self) -> &Engine<W> {
        &self.engine
    }

    /// Runs the simulation for `duration` and returns the node's outputs.
    ///
    /// Frames the node transmits go to [`World::transmit`]; in the default
    /// [`QuietWorld`] nobody hears them.  Use `net-sim` for multi-node runs.
    pub fn run_for(&mut self, duration: SimDuration) -> NodeRunOutput {
        let end = SimTime::ZERO + duration;
        self.engine.run_until(end);
        let (_, output) = self
            .engine
            .finish(end)
            .pop()
            .expect("a Simulator always holds exactly one node");
        output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Application, NullApp};
    use crate::event::{SensorKind, TaskId, TimerId};
    use crate::kernel::OsHandle;
    use analysis_free_asserts::*;
    use hw_model::catalog::{cpu_state, led_state};
    use quanto_core::{ActivityLabel, EntryKind, NodeId};

    /// Small helpers so the tests below don't need the analysis crate
    /// (which would create a dependency cycle).
    mod analysis_free_asserts {
        use quanto_core::LogEntry;

        /// Counts log entries satisfying a predicate.
        pub fn count_entries(log: &[LogEntry], pred: impl Fn(&LogEntry) -> bool) -> usize {
            log.iter().filter(|e| pred(e)).count()
        }
    }

    #[test]
    fn null_app_still_produces_dco_interrupts_and_energy() {
        let config = NodeConfig::new(NodeId(7));
        let mut sim = Simulator::new(config, Box::new(NullApp));
        let out = sim.run_for(SimDuration::from_secs(2));
        // 16 Hz for 2 s = 32 calibration interrupts; each wakes the CPU, so
        // the CPU ACTIVE power state appears at least that often.
        let cpu_sink = sim.node().kernel().sink_ids().cpu;
        let cpu_active = count_entries(&out.log, |e| {
            e.kind == EntryKind::PowerState
                && e.sink() == Some(cpu_sink)
                && e.value == cpu_state::ACTIVE.as_u8() as u32
        });
        assert!(
            (30..=36).contains(&cpu_active),
            "expected ~32 CPU wake-ups, got {cpu_active}"
        );
        // The node consumed some energy (idle draw plus wake-ups).
        assert!(out.ground_truth.total.as_micro_joules() > 0.0);
        assert_eq!(out.final_stamp.time, SimTime::from_secs(2));
        assert_eq!(out.log_dropped, 0);
    }

    #[test]
    fn disabling_dco_calibration_removes_the_interrupt() {
        let config = NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(NodeId(7))
        };
        let mut sim = Simulator::new(config, Box::new(NullApp));
        let out = sim.run_for(SimDuration::from_secs(2));
        let cpu_sink = sim.node().kernel().sink_ids().cpu;
        let cpu_active = count_entries(&out.log, |e| {
            e.kind == EntryKind::PowerState
                && e.sink() == Some(cpu_sink)
                && e.value == cpu_state::ACTIVE.as_u8() as u32
        });
        // Only the boot batch wakes the CPU.
        assert_eq!(cpu_active, 1);
    }

    /// A tiny Blink: one periodic timer toggling LED0 under a "Red" activity.
    struct MiniBlink {
        red: ActivityLabel,
    }

    impl MiniBlink {
        fn new() -> Self {
            MiniBlink {
                red: ActivityLabel::IDLE,
            }
        }
    }

    impl Application for MiniBlink {
        fn boot(&mut self, os: &mut OsHandle) {
            self.red = os.define_activity("Red");
            os.set_cpu_activity(self.red);
            os.start_timer(SimDuration::from_millis(250), true);
            os.set_cpu_activity(os.idle_activity());
        }

        fn timer_fired(&mut self, _timer: TimerId, os: &mut OsHandle) {
            os.set_cpu_activity(self.red);
            os.led_toggle(0);
        }
    }

    #[test]
    fn mini_blink_toggles_led_and_charges_activity() {
        let config = NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(NodeId(1))
        };
        let mut sim = Simulator::new(config, Box::new(MiniBlink::new()));
        let out = sim.run_for(SimDuration::from_secs(2));

        let led0 = sim.node().kernel().sink_ids().led0;
        let led_on = count_entries(&out.log, |e| {
            e.kind == EntryKind::PowerState
                && e.sink() == Some(led0)
                && e.value == led_state::ON.as_u8() as u32
        });
        // Toggling every 250 ms for 2 s: 8 toggles, 4 of them to ON.
        assert_eq!(led_on, 4, "expected 4 LED-on transitions");

        // Ground truth: the LED was on about half the time (4 x 250 ms);
        // 2.15 mA (the biased nominal 4.3 mA LED at 50 %) at 3 V for 1 s is
        // roughly 12.9 mJ.
        let led_energy = out.ground_truth.sink(led0).as_milli_joules();
        assert!(
            (led_energy - 12.9).abs() < 1.5,
            "LED ground-truth energy {led_energy} mJ"
        );

        // Activity entries for the Red activity exist on the CPU device.
        let (cpu_dev, led_devs, ..) = sim.node().kernel().device_ids();
        let red_changes = count_entries(&out.log, |e| {
            e.kind == EntryKind::ActivityChange
                && e.device() == Some(cpu_dev)
                && e.label().map(|l| l.id.as_u8() == 1).unwrap_or(false)
        });
        assert!(
            red_changes >= 8,
            "expected Red activity on the CPU, got {red_changes}"
        );
        let led_paints = count_entries(&out.log, |e| {
            e.kind == EntryKind::ActivityChange && e.device() == Some(led_devs[0])
        });
        // 8 toggles are scheduled but the last lands a fraction of a
        // millisecond past the 2 s window (boot work shifts the timer phase),
        // so at least 7 paints are observed.
        assert!(
            led_paints >= 7,
            "LED device painted on each toggle, got {led_paints}"
        );
    }

    /// An app that exercises tasks, the sensor and the flash.
    struct SplitPhaseApp {
        work: ActivityLabel,
        sensor_done: bool,
        flash_done: bool,
        task_ran: bool,
    }

    impl Application for SplitPhaseApp {
        fn boot(&mut self, os: &mut OsHandle) {
            self.work = os.define_activity("Work");
            os.set_cpu_activity(self.work);
            assert!(os.read_sensor(SensorKind::Temperature));
            os.post_task(TaskId(1));
        }

        fn task(&mut self, task: TaskId, os: &mut OsHandle) {
            assert_eq!(task, TaskId(1));
            // The scheduler restored the posting activity.
            assert_eq!(os.cpu_activity().id.as_u8(), self.work.id.as_u8());
            self.task_ran = true;
            // The sensor holds the SPI bus, so the arbiter queues (rejects)
            // a concurrent flash request — exactly the serialization the
            // instrumented TinyOS arbiter enforces.
            assert!(!os.flash_op(crate::event::FlashOp::Write, 64));
        }

        fn sensor_read_done(&mut self, kind: SensorKind, _value: u16, os: &mut OsHandle) {
            assert_eq!(kind, SensorKind::Temperature);
            assert_eq!(os.cpu_activity(), self.work, "proxy bound to Work");
            self.sensor_done = true;
            // Now that the sensor released the bus, the flash write goes
            // through.
            assert!(os.flash_op(crate::event::FlashOp::Write, 64));
        }

        fn flash_done(&mut self, _op: crate::event::FlashOp, os: &mut OsHandle) {
            assert_eq!(os.cpu_activity(), self.work);
            self.flash_done = true;
        }
    }

    #[test]
    fn split_phase_operations_complete_under_the_right_activity() {
        let config = NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(NodeId(2))
        };
        let app = SplitPhaseApp {
            work: ActivityLabel::IDLE,
            sensor_done: false,
            flash_done: false,
            task_ran: false,
        };
        let mut sim = Simulator::new(config, Box::new(app));
        let out = sim.run_for(SimDuration::from_secs(1));
        // Flash and sensor both show power-state activity in the log.
        let flash_sink = sim.node().kernel().sink_ids().ext_flash;
        let flash_changes = count_entries(&out.log, |e| {
            e.kind == EntryKind::PowerState && e.sink() == Some(flash_sink)
        });
        assert!(flash_changes >= 2, "flash write + standby transitions");
        // Bind entries exist (proxy resolution happened).
        let binds = count_entries(&out.log, |e| e.kind == EntryKind::ActivityBind);
        assert!(binds >= 2, "sensor and flash completions bind proxies");
    }

    /// The streaming log path: a sink attached before the run sees exactly
    /// the entries a batch run collects, in order, while the logger's RAM
    /// stays bounded by its (deliberately tiny) capacity.
    #[test]
    fn log_sink_streams_the_same_entries_as_a_batch_run() {
        use quanto_core::LogEntry;
        use std::cell::RefCell;
        use std::rc::Rc;

        let config = || NodeConfig {
            dco_calibration: false,
            log_capacity: 64,
            ..NodeConfig::new(NodeId(1))
        };
        let duration = SimDuration::from_secs(4);

        // Batch reference run.
        let mut batch = Simulator::new(config(), Box::new(MiniBlink::new()));
        let batch_out = batch.run_for(duration);
        assert!(
            batch_out.log.len() > 64,
            "the run must overflow the 64-entry buffer to exercise mid-run drains"
        );

        // Streaming run: same scenario, sink attached.
        let collected: Rc<RefCell<Vec<LogEntry>>> = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulator::new(config(), Box::new(MiniBlink::new()));
        let tap = collected.clone();
        sim.set_log_sink(Box::new(move |chunk: &[LogEntry]| {
            tap.borrow_mut().extend_from_slice(chunk);
        }));
        let out = sim.run_for(duration);

        assert!(out.log.is_empty(), "sinked runs do not rebuffer the log");
        assert_eq!(&*collected.borrow(), &batch_out.log);
        assert_eq!(out.final_stamp, batch_out.final_stamp);
        // The logger never held more than its capacity at once.
        assert!(sim.node().kernel().quanto().logger().len() <= 64);
    }

    #[test]
    fn quanto_overhead_is_charged_to_the_cpu() {
        let config = NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(NodeId(3))
        };
        let mut sim = Simulator::new(config, Box::new(MiniBlink::new()));
        let out = sim.run_for(SimDuration::from_secs(1));
        assert!(out.cost_stats.samples > 0);
        assert_eq!(
            out.cost_stats.cycles,
            out.cost_stats.samples * 102,
            "each sample costs 102 cycles"
        );
    }
}
