//! A resource arbiter in the style of TinyOS/ICEM.
//!
//! Shared resources such as the SPI bus are guarded by an arbiter that grants
//! the resource to one client at a time and powers the resource down when
//! nobody holds it.  Quanto instruments the arbiter so that activity labels
//! automatically follow the granted client onto the shared resource.

use quanto_core::ActivityLabel;
use std::collections::VecDeque;

/// Clients of the shared SPI bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BusClient {
    /// The CC2420 radio.
    Radio,
    /// The external flash.
    Flash,
    /// The SHT11 sensor.
    Sensor,
}

/// The outcome of a resource request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantOutcome {
    /// The resource was free and is now held by the requester.
    Granted,
    /// The resource is busy; the requester was queued.
    Queued,
    /// The requester already holds the resource.
    AlreadyHeld,
}

/// A FIFO arbiter for one shared resource.
#[derive(Debug, Clone, Default)]
pub struct Arbiter {
    holder: Option<(BusClient, ActivityLabel)>,
    waiters: VecDeque<(BusClient, ActivityLabel)>,
    grants: u64,
    immediate_grants: u64,
}

impl Arbiter {
    /// Creates an idle arbiter.
    pub fn new() -> Self {
        Arbiter::default()
    }

    /// Requests the resource on behalf of an activity.
    pub fn request(&mut self, client: BusClient, activity: ActivityLabel) -> GrantOutcome {
        match &self.holder {
            Some((holder, _)) if *holder == client => GrantOutcome::AlreadyHeld,
            Some(_) => {
                self.waiters.push_back((client, activity));
                GrantOutcome::Queued
            }
            None => {
                self.holder = Some((client, activity));
                self.grants += 1;
                self.immediate_grants += 1;
                GrantOutcome::Granted
            }
        }
    }

    /// Releases the resource; returns the next `(client, activity)` granted,
    /// if anyone was waiting.  The activity label travels with the grant,
    /// which is exactly the automatic transfer the instrumented TinyOS
    /// arbiter performs.
    ///
    /// Releasing a resource the client does not hold is a no-op returning
    /// `None`.
    pub fn release(&mut self, client: BusClient) -> Option<(BusClient, ActivityLabel)> {
        match &self.holder {
            Some((holder, _)) if *holder == client => {
                self.holder = self.waiters.pop_front();
                if self.holder.is_some() {
                    self.grants += 1;
                }
                self.holder
            }
            _ => None,
        }
    }

    /// The current holder, if any.
    pub fn holder(&self) -> Option<BusClient> {
        self.holder.map(|(c, _)| c)
    }

    /// The activity on whose behalf the resource is currently held.
    pub fn holder_activity(&self) -> Option<ActivityLabel> {
        self.holder.map(|(_, a)| a)
    }

    /// Number of clients waiting.
    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    /// Total grants ever made.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// Grants that did not have to wait.
    pub fn immediate_grants(&self) -> u64 {
        self.immediate_grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quanto_core::{ActivityId, NodeId};

    fn lbl(id: u8) -> ActivityLabel {
        ActivityLabel::new(NodeId(1), ActivityId(id))
    }

    #[test]
    fn grant_queue_release_cycle() {
        let mut a = Arbiter::new();
        assert_eq!(a.request(BusClient::Radio, lbl(1)), GrantOutcome::Granted);
        assert_eq!(
            a.request(BusClient::Radio, lbl(1)),
            GrantOutcome::AlreadyHeld
        );
        assert_eq!(a.request(BusClient::Flash, lbl(2)), GrantOutcome::Queued);
        assert_eq!(a.holder(), Some(BusClient::Radio));
        assert_eq!(a.holder_activity(), Some(lbl(1)));
        assert_eq!(a.queue_len(), 1);

        // Releasing hands the bus (and the waiter's activity) to the flash.
        let next = a.release(BusClient::Radio).unwrap();
        assert_eq!(next, (BusClient::Flash, lbl(2)));
        assert_eq!(a.holder(), Some(BusClient::Flash));

        assert!(a.release(BusClient::Flash).is_none());
        assert_eq!(a.holder(), None);
        assert_eq!(a.grants(), 2);
        assert_eq!(a.immediate_grants(), 1);
    }

    #[test]
    fn releasing_unheld_resource_is_noop() {
        let mut a = Arbiter::new();
        assert!(a.release(BusClient::Sensor).is_none());
        a.request(BusClient::Radio, lbl(1));
        assert!(a.release(BusClient::Sensor).is_none());
        assert_eq!(a.holder(), Some(BusClient::Radio));
    }
}
