//! Virtual timers multiplexed on a hardware timer.
//!
//! TinyOS virtualizes one hardware timer into many application timers.  The
//! virtual timer subsystem is one of the control-flow deferral points Quanto
//! instruments: starting a timer saves the CPU's current activity in the
//! timer entry, and firing restores it before the application's handler runs.

use crate::event::TimerId;
use hw_model::{SimDuration, SimTime};
use quanto_core::ActivityLabel;

/// One virtual timer.
#[derive(Debug, Clone)]
pub struct VirtualTimer {
    /// The timer's id.
    pub id: TimerId,
    /// Period for periodic timers, or the one-shot delay.
    pub period: SimDuration,
    /// Whether the timer re-arms itself.
    pub periodic: bool,
    /// Next deadline, or `None` if stopped.
    pub deadline: Option<SimTime>,
    /// The CPU activity saved when the timer was started; restored when it
    /// fires.
    pub saved_activity: ActivityLabel,
}

/// The virtual timer table.
#[derive(Debug, Clone, Default)]
pub struct TimerTable {
    timers: Vec<VirtualTimer>,
}

impl TimerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        TimerTable::default()
    }

    /// Allocates and starts a timer.  Returns its id and first deadline.
    pub fn start(
        &mut self,
        now: SimTime,
        period: SimDuration,
        periodic: bool,
        saved_activity: ActivityLabel,
    ) -> (TimerId, SimTime) {
        let id = TimerId(self.timers.len() as u16);
        let deadline = now + period;
        self.timers.push(VirtualTimer {
            id,
            period,
            periodic,
            deadline: Some(deadline),
            saved_activity,
        });
        (id, deadline)
    }

    /// Stops a timer.  Returns `true` if it was running.
    pub fn stop(&mut self, id: TimerId) -> bool {
        match self.timers.get_mut(id.0 as usize) {
            Some(t) if t.deadline.is_some() => {
                t.deadline = None;
                true
            }
            _ => false,
        }
    }

    /// Looks up a timer.
    pub fn get(&self, id: TimerId) -> Option<&VirtualTimer> {
        self.timers.get(id.0 as usize)
    }

    /// Number of allocated timers (running or stopped).
    pub fn len(&self) -> usize {
        self.timers.len()
    }

    /// Returns true if no timers were ever started.
    pub fn is_empty(&self) -> bool {
        self.timers.is_empty()
    }

    /// Called when the hardware timer event for `id` fires at `now`.
    ///
    /// Returns `Some((saved_activity, next_deadline))` if the timer was still
    /// armed for this deadline: the saved activity to restore on the CPU and,
    /// for periodic timers, the next deadline to schedule.  Returns `None`
    /// for stale events (the timer was stopped or restarted since).
    pub fn fire(&mut self, id: TimerId, now: SimTime) -> Option<(ActivityLabel, Option<SimTime>)> {
        let t = self.timers.get_mut(id.0 as usize)?;
        let deadline = t.deadline?;
        if deadline > now {
            // A stale event from before a restart; the real one is still
            // scheduled.
            return None;
        }
        let saved = t.saved_activity;
        if t.periodic {
            // Periodic timers re-arm from the nominal deadline, not from the
            // (possibly late) handling time, so they do not drift — matching
            // TinyOS timer semantics.
            let next = deadline + t.period;
            t.deadline = Some(next);
            Some((saved, Some(next)))
        } else {
            t.deadline = None;
            Some((saved, None))
        }
    }

    /// Update the activity that will be restored when the timer next fires
    /// (used when a handler re-arms semantics on behalf of a new activity).
    pub fn set_saved_activity(&mut self, id: TimerId, activity: ActivityLabel) -> bool {
        match self.timers.get_mut(id.0 as usize) {
            Some(t) => {
                t.saved_activity = activity;
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quanto_core::{ActivityId, NodeId};

    fn lbl(id: u8) -> ActivityLabel {
        ActivityLabel::new(NodeId(1), ActivityId(id))
    }

    #[test]
    fn one_shot_timer_fires_once() {
        let mut tt = TimerTable::new();
        let (id, deadline) = tt.start(SimTime::ZERO, SimDuration::from_millis(10), false, lbl(1));
        assert_eq!(deadline, SimTime::from_millis(10));
        let (act, next) = tt.fire(id, deadline).unwrap();
        assert_eq!(act, lbl(1));
        assert!(next.is_none());
        // Firing again is stale.
        assert!(tt.fire(id, deadline).is_none());
        assert_eq!(tt.len(), 1);
        assert!(!tt.is_empty());
    }

    #[test]
    fn periodic_timer_rearms() {
        let mut tt = TimerTable::new();
        let (id, d1) = tt.start(SimTime::ZERO, SimDuration::from_secs(1), true, lbl(2));
        let (_, next) = tt.fire(id, d1).unwrap();
        assert_eq!(next, Some(SimTime::from_secs(2)));
        let (_, next2) = tt.fire(id, SimTime::from_secs(2)).unwrap();
        assert_eq!(next2, Some(SimTime::from_secs(3)));
    }

    #[test]
    fn stopping_prevents_firing() {
        let mut tt = TimerTable::new();
        let (id, d) = tt.start(SimTime::ZERO, SimDuration::from_millis(5), true, lbl(1));
        assert!(tt.stop(id));
        assert!(!tt.stop(id));
        assert!(tt.fire(id, d).is_none());
    }

    #[test]
    fn stale_events_before_deadline_ignored() {
        let mut tt = TimerTable::new();
        let (id, _) = tt.start(SimTime::ZERO, SimDuration::from_millis(10), false, lbl(1));
        assert!(tt.fire(id, SimTime::from_millis(5)).is_none());
        assert!(tt.fire(id, SimTime::from_millis(10)).is_some());
    }

    #[test]
    fn saved_activity_can_be_updated() {
        let mut tt = TimerTable::new();
        let (id, d) = tt.start(SimTime::ZERO, SimDuration::from_millis(1), false, lbl(1));
        assert!(tt.set_saved_activity(id, lbl(7)));
        assert!(!tt.set_saved_activity(TimerId(99), lbl(7)));
        let (act, _) = tt.fire(id, d).unwrap();
        assert_eq!(act, lbl(7));
        assert_eq!(tt.get(id).unwrap().period, SimDuration::from_millis(1));
    }
}
