//! The node kernel: TinyOS-like services instrumented with Quanto.
//!
//! The kernel owns everything on one node except the application:
//!
//! * the node-local event queue and the CPU work cursor (the simulated
//!   passage of time while handlers and tasks execute),
//! * the ground-truth energy accumulator, the iCount meter and the
//!   oscilloscope trace,
//! * the Quanto runtime, the tracked devices and the proxy activities for
//!   each interrupt source, and
//! * the OS services the paper instruments: tasks, virtual timers, the SPI
//!   arbiter, the Active Message layer and the device drivers.
//!
//! The application sees the kernel through the `OsHandle` alias (just
//! `&mut Kernel`): the public methods on this type are the "system calls" of
//! the simulated OS.

use crate::arbiter::{Arbiter, BusClient, GrantOutcome};
use crate::config::{NodeConfig, SpiMode};
use crate::drivers::{FlashState, LedBank, RadioPower, RadioState, SensorState, TxPhase};
use crate::event::{FlashOp, LocalQueue, NodeEvent, SensorKind, TaskId, TimerId};
use crate::packet::{AmPacket, AM_BROADCAST};
use crate::sched::{PostedTask, TaskQueue};
use crate::timer::TimerTable;
use crate::world::Emission;
use energy_meter::{CurrentTrace, EnergyMeter, ICountMeter};
use hw_model::catalog::{
    self, cpu_state, led_state, radio_control_state, radio_regulator_state, radio_rx_state,
    radio_tx_state, HydrowatchIds,
};
use hw_model::{Catalog, EnergyAccumulator, PowerModel, SimDuration, SimTime, SinkId, StateIndex};
use quanto_core::{
    ActivityLabel, CostStats, DeviceId, LogEntry, NodeId, QuantoRuntime, RuntimeConfig, Stamp,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Handle through which applications access OS services.
pub type OsHandle = Kernel;

/// Interrupt sources with statically-assigned proxy activities (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqSource {
    /// The hardware timer behind the virtual timers (`int_TIMERB0`).
    TimerB0,
    /// The SFD / radio capture timer (`int_TIMERB1`).
    TimerB1,
    /// The DCO calibration timer (`int_TIMERA1`).
    TimerA1,
    /// The SPI/USART receive interrupt (`int_UART0RX`).
    Spi,
    /// The DMA completion interrupt (`int_DACDMA`).
    Dma,
    /// The radio packet-reception proxy (`pxy_RX`).
    RadioRx,
    /// Sensor conversion-complete interrupt.
    Sensor,
    /// Flash operation-complete interrupt.
    Flash,
}

/// Final state of one node after a run, as collected by the simulator.
#[derive(Debug, Clone)]
pub struct NodeRunOutput {
    /// Every surviving Quanto log entry.  Empty when a log sink was attached
    /// ([`Kernel::set_log_sink`]) — the entries streamed through the sink
    /// instead of being collected here.
    pub log: Vec<LogEntry>,
    /// The (time, iCount) stamp at the end of the observation window, used to
    /// close the last interval during analysis.
    pub final_stamp: Stamp,
    /// The ground-truth current trace (the simulated oscilloscope probe).
    pub trace: CurrentTrace,
    /// Ground-truth energy per sink, known only to the simulator.
    pub ground_truth: hw_model::power::EnergyBreakdown,
    /// Radio statistics.
    pub radio_stats: crate::drivers::RadioStats,
    /// Quanto's own overhead statistics.
    pub cost_stats: CostStats,
    /// Number of tasks posted / run.
    pub tasks_posted: u64,
    /// How many entries the logger dropped.
    pub log_dropped: u64,
}

/// The per-node kernel.
pub struct Kernel {
    config: NodeConfig,
    catalog: Arc<Catalog>,
    ids: HydrowatchIds,

    // Time and CPU execution.
    cursor: SimTime,
    busy_until: SimTime,
    cpu_active: bool,
    queue: LocalQueue,

    // Ground-truth energy.
    accumulator: EnergyAccumulator,
    meter: ICountMeter,
    trace: CurrentTrace,

    // Quanto.
    quanto: QuantoRuntime,
    dev_cpu: DeviceId,
    dev_leds: [DeviceId; 3],
    dev_radio: DeviceId,
    dev_flash: DeviceId,
    dev_sensor: DeviceId,
    act_vtimer: ActivityLabel,
    act_idle: ActivityLabel,
    pxy_timer_b0: ActivityLabel,
    pxy_timer_b1: ActivityLabel,
    pxy_timer_a1: ActivityLabel,
    pxy_spi: ActivityLabel,
    pxy_dma: ActivityLabel,
    pxy_rx: ActivityLabel,
    pxy_sensor: ActivityLabel,
    pxy_flash: ActivityLabel,

    // OS structures.
    tasks: TaskQueue,
    timers: TimerTable,
    spi_arbiter: Arbiter,

    // Drivers.
    leds: LedBank,
    radio: RadioState,
    flash: FlashState,
    sensor: SensorState,

    // Outbox and misc.
    emissions: Vec<Emission>,
    rng: StdRng,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("node", &self.config.node_id)
            .field("cursor", &self.cursor)
            .field("cpu_active", &self.cpu_active)
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

thread_local! {
    /// The Hydrowatch catalog is configuration-independent (the builder takes
    /// no arguments), so every kernel on a thread shares one immutable copy
    /// instead of rebuilding the state/sink tables per node.
    static HYDROWATCH: (Arc<Catalog>, HydrowatchIds) = {
        let (cat, ids) = catalog::hydrowatch();
        (Arc::new(cat), ids)
    };
}

impl Kernel {
    /// Creates a kernel for the given configuration.
    pub fn new(config: NodeConfig) -> Self {
        Kernel::new_with_recycled(config, None)
    }

    /// Creates a kernel, adopting a recycled log-buffer allocation from a
    /// workspace pool (see [`quanto_core::RamLogger::adopt_buffer`]).
    pub fn new_with_recycled(config: NodeConfig, recycled_log: Option<Vec<LogEntry>>) -> Self {
        let (catalog, ids) = HYDROWATCH.with(|c| c.clone());
        let model = Arc::new(PowerModel::new(
            catalog.clone(),
            config.supply,
            config.noise,
        ));
        let accumulator = EnergyAccumulator::new(model);
        let meter = ICountMeter::new(config.icount);

        let mut quanto = QuantoRuntime::new(
            config.node_id,
            &catalog,
            RuntimeConfig {
                log_capacity: config.log_capacity,
                overflow_policy: config.overflow_policy,
                cost_model: config.cost_model,
                mode: config.accounting,
            },
        );
        let dev_cpu = quanto.register_single_device("cpu");
        let dev_leds = [
            quanto.register_single_device("led0"),
            quanto.register_single_device("led1"),
            quanto.register_single_device("led2"),
        ];
        let dev_radio = quanto.register_single_device("radio");
        let dev_flash = quanto.register_single_device("flash");
        let dev_sensor = quanto.register_single_device("sensor");
        quanto.set_cpu_device(dev_cpu);

        let act_idle = quanto.registry().idle();
        let act_vtimer = quanto.registry_mut().define_system("VTimer");
        let pxy_timer_b0 = quanto.registry_mut().define_proxy("int_TIMERB0");
        let pxy_timer_b1 = quanto.registry_mut().define_proxy("int_TIMERB1");
        let pxy_timer_a1 = quanto.registry_mut().define_proxy("int_TIMERA1");
        let pxy_spi = quanto.registry_mut().define_proxy("int_UART0RX");
        let pxy_dma = quanto.registry_mut().define_proxy("int_DACDMA");
        let pxy_rx = quanto.registry_mut().define_proxy("pxy_RX");
        let pxy_sensor = quanto.registry_mut().define_proxy("int_SENSOR");
        let pxy_flash = quanto.registry_mut().define_proxy("int_FLASH");

        let rng = StdRng::seed_from_u64(config.seed);

        let mut kernel = Kernel {
            catalog,
            ids,
            cursor: SimTime::ZERO,
            busy_until: SimTime::ZERO,
            cpu_active: false,
            queue: LocalQueue::new(),
            accumulator,
            meter,
            trace: CurrentTrace::new(),
            quanto,
            dev_cpu,
            dev_leds,
            dev_radio,
            dev_flash,
            dev_sensor,
            act_vtimer,
            act_idle,
            pxy_timer_b0,
            pxy_timer_b1,
            pxy_timer_a1,
            pxy_spi,
            pxy_dma,
            pxy_rx,
            pxy_sensor,
            pxy_flash,
            tasks: TaskQueue::new(),
            timers: TimerTable::new(),
            spi_arbiter: Arbiter::new(),
            leds: LedBank::new(),
            radio: RadioState::new(),
            flash: FlashState::new(),
            sensor: SensorState::new(),
            emissions: Vec::new(),
            rng,
            config,
        };
        if let Some(buf) = recycled_log {
            kernel.quanto.adopt_log_buffer(buf);
        }
        kernel.boot();
        kernel
    }

    /// Surrenders the RAM log buffer's allocation to a workspace pool.  The
    /// kernel must not record afterwards (the run is over).
    pub fn recycle_log_buffer(&mut self) -> Vec<LogEntry> {
        self.quanto.recycle_log_buffer()
    }

    fn boot(&mut self) {
        // The supply supervisor is always on; record its initial trace point.
        self.set_sink(self.ids.supervisor, StateIndex(1));
        // Record the boot draw so the oscilloscope trace starts at t = 0.
        self.trace.push(
            SimTime::ZERO,
            self.accumulator.current_power() / self.config.supply,
        );
        if self.config.dco_calibration {
            // TimerA1 fires 16 times per second from boot (Figure 15).
            self.queue
                .push(SimTime::from_micros(62_500), NodeEvent::DcoCalibration);
        }
    }

    // ------------------------------------------------------------------
    // Time, energy and Quanto plumbing (crate-internal).
    // ------------------------------------------------------------------

    /// The current (time, iCount) pair as the instrumented OS would read it.
    pub(crate) fn stamp(&mut self) -> Stamp {
        self.accumulator.advance(self.cursor);
        let reading = self.meter.read(self.accumulator.total_energy());
        Stamp::new(self.cursor, reading.counter)
    }

    /// Records a ground-truth power-state change and tells Quanto about it.
    pub(crate) fn set_sink(&mut self, sink: SinkId, state: StateIndex) {
        self.accumulator.set_state(self.cursor, sink, state);
        let current = self.accumulator.current_power() / self.config.supply;
        self.trace.push(self.cursor, current);
        if self.config.quanto_enabled {
            let stamp = self.stamp();
            self.quanto
                .set_power_state(stamp, sink, state.as_u8() as u16);
            self.charge_quanto_overhead();
        }
    }

    /// Advances the CPU work cursor by `cycles` of execution.
    pub(crate) fn charge_cycles(&mut self, cycles: u64) {
        let us = self.config.cycles_to_micros(cycles);
        self.cursor += SimDuration::from_micros(us);
    }

    fn charge_quanto_overhead(&mut self) {
        let cycles = self.quanto.take_pending_overhead_cycles();
        if cycles > 0 {
            self.charge_cycles(cycles);
        }
    }

    /// Paints the CPU with an activity.
    pub(crate) fn cpu_activity_set(&mut self, label: ActivityLabel) {
        if !self.config.quanto_enabled {
            return;
        }
        let stamp = self.stamp();
        self.quanto.activity_set(stamp, self.dev_cpu, label);
        self.charge_quanto_overhead();
    }

    /// Binds the CPU's current (proxy) activity to a real activity.
    pub(crate) fn cpu_activity_bind(&mut self, label: ActivityLabel) {
        if !self.config.quanto_enabled {
            return;
        }
        let stamp = self.stamp();
        self.quanto.activity_bind(stamp, self.dev_cpu, label);
        self.charge_quanto_overhead();
    }

    /// Paints an arbitrary tracked device with an activity.
    pub(crate) fn device_activity_set(&mut self, dev: DeviceId, label: ActivityLabel) {
        if !self.config.quanto_enabled {
            return;
        }
        let stamp = self.stamp();
        self.quanto.activity_set(stamp, dev, label);
        self.charge_quanto_overhead();
    }

    /// Begins an event batch at `event_time`: wakes the CPU and positions the
    /// work cursor.  Returns the effective start time.
    pub(crate) fn begin_batch(&mut self, event_time: SimTime) -> SimTime {
        let start = event_time.max(self.busy_until);
        self.cursor = start;
        if !self.cpu_active {
            self.cpu_active = true;
            self.set_sink(self.ids.cpu, cpu_state::ACTIVE);
        }
        start
    }

    /// Ends the batch: returns the CPU to idle and to sleep.
    pub(crate) fn end_batch(&mut self) {
        self.cpu_activity_set(self.act_idle);
        if self.cpu_active {
            self.cpu_active = false;
            self.set_sink(self.ids.cpu, cpu_state::LPM3);
        }
        self.busy_until = self.cursor;
    }

    /// Enters an interrupt handler: the CPU temporarily takes the statically
    /// assigned proxy activity of the interrupt source.
    pub(crate) fn irq_enter(&mut self, source: IrqSource) {
        let proxy = self.proxy_for(source);
        self.cpu_activity_set(proxy);
        self.charge_cycles(self.config.handler_cycles as u64);
    }

    fn proxy_for(&self, source: IrqSource) -> ActivityLabel {
        match source {
            IrqSource::TimerB0 => self.pxy_timer_b0,
            IrqSource::TimerB1 => self.pxy_timer_b1,
            IrqSource::TimerA1 => self.pxy_timer_a1,
            IrqSource::Spi => self.pxy_spi,
            IrqSource::Dma => self.pxy_dma,
            IrqSource::RadioRx => self.pxy_rx,
            IrqSource::Sensor => self.pxy_sensor,
            IrqSource::Flash => self.pxy_flash,
        }
    }

    /// The next pending event, if any.
    pub(crate) fn peek_event_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next pending event.
    pub(crate) fn pop_event(&mut self) -> Option<(SimTime, NodeEvent)> {
        self.queue.pop()
    }

    /// Pushes an externally-generated event (packet arrivals from `net-sim`).
    pub(crate) fn push_event(&mut self, at: SimTime, event: NodeEvent) {
        self.queue.push(at, event);
    }

    /// The next posted task, with its activity restored on the CPU and its
    /// cost charged.
    pub(crate) fn next_task(&mut self) -> Option<PostedTask> {
        let task = self.tasks.pop()?;
        // The scheduler restores the activity saved at post time.
        self.cpu_activity_set(task.saved_activity);
        self.charge_cycles(task.cost_cycles as u64);
        Some(task)
    }

    /// Drains accumulated radio emissions (called by the coordinator).
    pub(crate) fn take_emissions(&mut self) -> Vec<Emission> {
        std::mem::take(&mut self.emissions)
    }

    // ------------------------------------------------------------------
    // Event handlers (crate-internal; called by `Node::dispatch`).
    // ------------------------------------------------------------------

    /// Handles a hardware timer interrupt for a virtual timer.  Returns the
    /// saved activity to run the application handler under, if the timer is
    /// really due.
    pub(crate) fn handle_hw_timer(&mut self, timer: TimerId) -> Option<ActivityLabel> {
        self.irq_enter(IrqSource::TimerB0);
        // The virtual timer dispatcher runs as its own system activity.
        self.cpu_activity_set(self.act_vtimer);
        self.charge_cycles(40);
        let (saved, next) = self.timers.fire(timer, self.cursor)?;
        if let Some(next) = next {
            self.queue.push(next, NodeEvent::HwTimerFired { timer });
        }
        self.cpu_activity_set(saved);
        Some(saved)
    }

    /// Post-application bookkeeping after a timer handler ran.
    pub(crate) fn finish_hw_timer(&mut self) {
        self.cpu_activity_set(self.act_vtimer);
        self.charge_cycles(20);
    }

    /// Handles the 16 Hz DCO-calibration interrupt.
    pub(crate) fn handle_dco_calibration(&mut self) {
        self.irq_enter(IrqSource::TimerA1);
        self.charge_cycles(25);
        self.queue.push(
            self.cursor + SimDuration::from_micros(62_500),
            NodeEvent::DcoCalibration,
        );
    }

    /// Handles one interrupt-mode SPI chunk of the TX FIFO load.
    pub(crate) fn handle_spi_tx_chunk(&mut self) {
        self.irq_enter(IrqSource::Spi);
        self.charge_cycles(self.config.spi_chunk_cycles as u64);
        let Some(tx) = self.radio.tx.as_mut() else {
            return;
        };
        tx.bytes_loaded = (tx.bytes_loaded + 2).min(tx.packet.wire_bytes());
        let activity = tx.activity;
        let done = tx.bytes_loaded >= tx.packet.wire_bytes();
        self.cpu_activity_bind(activity);
        if done {
            self.start_backoff();
        } else {
            let chunk = SimDuration::from_micros(
                self.config
                    .cycles_to_micros(self.config.spi_chunk_cycles as u64),
            );
            self.queue.push(self.cursor + chunk, NodeEvent::SpiTxChunk);
        }
    }

    /// Handles the DMA-completion interrupt of the TX FIFO load.
    pub(crate) fn handle_spi_tx_dma_done(&mut self) {
        self.irq_enter(IrqSource::Dma);
        let Some(tx) = self.radio.tx.as_mut() else {
            return;
        };
        tx.bytes_loaded = tx.packet.wire_bytes();
        let activity = tx.activity;
        self.cpu_activity_bind(activity);
        self.start_backoff();
    }

    fn start_backoff(&mut self) {
        if let Some(tx) = self.radio.tx.as_mut() {
            tx.phase = TxPhase::Backoff;
        }
        let (lo, hi) = self.config.backoff_us;
        let backoff = self.rng.gen_range(lo..=hi);
        self.queue.push(
            self.cursor + SimDuration::from_micros(backoff),
            NodeEvent::CsmaBackoffDone,
        );
    }

    /// Handles the end of the CSMA backoff.  `channel_busy` is the CCA result
    /// supplied by the world.  Returns `true` if the frame went on the air.
    pub(crate) fn handle_backoff_done(&mut self, channel_busy: bool) -> bool {
        self.irq_enter(IrqSource::TimerB1);
        let Some(activity) = self.radio.tx.as_ref().map(|tx| tx.activity) else {
            return false;
        };
        self.cpu_activity_bind(activity);
        if channel_busy {
            if let Some(tx) = self.radio.tx.as_mut() {
                tx.backoff_rounds += 1;
            }
            self.radio.stats.busy_backoffs += 1;
            self.start_backoff();
            return false;
        }
        let (bytes, packet) = {
            let tx = self.radio.tx.as_mut().expect("tx operation checked above");
            tx.phase = TxPhase::OnAir;
            (tx.packet.wire_bytes(), tx.packet.clone())
        };
        // The transmitter replaces the receiver for the duration of the frame.
        self.set_sink(self.ids.radio_rx, radio_rx_state::OFF);
        self.set_sink(self.ids.radio_tx, radio_tx_state::TX_0DBM);
        self.radio.power = RadioPower::Transmitting;
        let airtime = SimDuration::from_micros(self.config.airtime_us(bytes));
        let start = self.cursor;
        let end = start + airtime;
        self.queue.push(end, NodeEvent::RadioTxDone);
        self.emissions.push(Emission {
            from: self.config.node_id,
            channel: self.config.radio_channel,
            packet,
            start,
            end,
        });
        true
    }

    /// Handles the end of an over-the-air transmission.  Returns `true` so
    /// the caller can deliver `send_done` to the application.
    pub(crate) fn handle_tx_done(&mut self) -> bool {
        self.irq_enter(IrqSource::TimerB1);
        let Some(tx) = self.radio.tx.take() else {
            return false;
        };
        self.cpu_activity_bind(tx.activity);
        self.radio.stats.packets_sent += 1;
        self.set_sink(self.ids.radio_tx, radio_tx_state::OFF);
        // Listening resumes if the radio is meant to stay on: always-on mode
        // with an outstanding request, or LPL inside an open wake-up window.
        let resume_listen = if self.config.lpl.is_none() {
            self.radio.requested_on
        } else {
            self.radio.lpl_wakeup_open
        };
        if resume_listen {
            self.set_sink(self.ids.radio_rx, radio_rx_state::LISTEN);
            self.radio.power = RadioPower::Listening;
        } else {
            self.radio_sinks_off();
        }
        self.device_activity_set(self.dev_radio, self.act_idle);
        true
    }

    /// Handles a start-of-frame delimiter for an incoming packet.  Returns
    /// `true` if the radio accepted the frame.
    pub(crate) fn handle_sfd(&mut self, packet: AmPacket) -> bool {
        if !self.radio.can_hear() {
            return false;
        }
        self.irq_enter(IrqSource::TimerB1);
        // Until the packet is decoded the work belongs to the receive proxy.
        self.cpu_activity_set(self.pxy_rx);
        let sfd_time = self.cursor;
        let accepted = self.radio.begin_rx(packet, sfd_time);
        if accepted {
            if self.radio.lpl_wakeup_open {
                self.radio.lpl_got_packet = true;
            }
            match self.config.spi_mode {
                SpiMode::Interrupt => {
                    let chunk = SimDuration::from_micros(
                        self.config
                            .cycles_to_micros(self.config.spi_chunk_cycles as u64),
                    );
                    self.queue.push(self.cursor + chunk, NodeEvent::SpiRxChunk);
                }
                SpiMode::Dma => {
                    let bytes = self
                        .radio
                        .rx
                        .as_ref()
                        .map(|rx| rx.packet.wire_bytes())
                        .unwrap_or(0);
                    let dur = SimDuration::from_micros(self.config.cycles_to_micros(
                        self.config.spi_dma_cycles_per_byte as u64 * bytes as u64,
                    ));
                    self.queue.push(self.cursor + dur, NodeEvent::SpiRxDmaDone);
                }
            }
        }
        accepted
    }

    /// Handles one interrupt-mode SPI chunk of the RX FIFO download.  Returns
    /// the decoded packet when the download completes and the packet is for
    /// this node.
    pub(crate) fn handle_spi_rx_chunk(&mut self) -> Option<AmPacket> {
        self.irq_enter(IrqSource::Spi);
        self.charge_cycles(self.config.spi_chunk_cycles as u64);
        self.cpu_activity_set(self.pxy_rx);
        let rx = self.radio.rx.as_mut()?;
        rx.bytes_downloaded = (rx.bytes_downloaded + 2).min(rx.packet.wire_bytes());
        if rx.bytes_downloaded >= rx.packet.wire_bytes() {
            self.finish_rx()
        } else {
            let chunk = SimDuration::from_micros(
                self.config
                    .cycles_to_micros(self.config.spi_chunk_cycles as u64),
            );
            self.queue.push(self.cursor + chunk, NodeEvent::SpiRxChunk);
            None
        }
    }

    /// Handles the DMA-completion interrupt of the RX FIFO download.
    pub(crate) fn handle_spi_rx_dma_done(&mut self) -> Option<AmPacket> {
        self.irq_enter(IrqSource::Dma);
        self.cpu_activity_set(self.pxy_rx);
        if let Some(rx) = self.radio.rx.as_mut() {
            rx.bytes_downloaded = rx.packet.wire_bytes();
        }
        self.finish_rx()
    }

    /// Decodes the downloaded packet at the AM layer: reads the hidden
    /// activity field, binds the receive proxy to it, and filters by
    /// destination.
    fn finish_rx(&mut self) -> Option<AmPacket> {
        let rx = self.radio.rx.take()?;
        // AM decode runs as a short task.
        self.charge_cycles(self.config.task_cycles as u64);
        let packet = rx.packet;
        // The proxy activity is bound to the activity carried in the packet
        // (Section 3.3) — this is the cross-node propagation step.
        self.cpu_activity_bind(packet.activity);
        self.radio.stats.packets_received += 1;
        if self.radio.lpl_wakeup_open {
            self.radio.stats.rx_wakeups += 1;
            self.radio.lpl_wakeup_open = false;
            self.radio_sinks_off();
        }
        let me = self.config.node_id;
        if packet.dest == me || packet.dest == AM_BROADCAST {
            Some(packet)
        } else {
            None
        }
    }

    /// Handles the LPL periodic wake-up.
    pub(crate) fn handle_lpl_wakeup(&mut self) {
        let Some(lpl) = self.config.lpl else {
            return;
        };
        if !self.radio.requested_on {
            return;
        }
        self.irq_enter(IrqSource::TimerB0);
        // The VTimer activity schedules the wake-ups (Figure 14).
        self.cpu_activity_set(self.act_vtimer);
        self.charge_cycles(30);
        // Schedule the next check regardless of what this one finds.
        self.queue.push(
            self.cursor + SimDuration::from_millis(lpl.check_interval_ms),
            NodeEvent::LplWakeup,
        );
        if self.radio.power != RadioPower::Off {
            // Still busy from a previous wake-up (e.g. long false positive).
            return;
        }
        self.radio_sinks_on_listen();
        self.radio.lpl_wakeup_open = true;
        self.radio.lpl_energy_detected = false;
        self.radio.lpl_got_packet = false;
        self.queue.push(
            self.cursor + SimDuration::from_millis(lpl.sample_window_ms),
            NodeEvent::LplCcaSample,
        );
    }

    /// Handles the end of the LPL clear-channel sample window.
    pub(crate) fn handle_lpl_cca(&mut self, channel_busy: bool) {
        let Some(lpl) = self.config.lpl else {
            return;
        };
        if !self.radio.lpl_wakeup_open || self.radio.rx.is_some() {
            // A packet reception is already in progress; let it finish.
            return;
        }
        self.irq_enter(IrqSource::TimerB0);
        if channel_busy {
            // Energy detected: stay on waiting for a packet.  Until a packet
            // arrives this work has no real activity to bind to — it stays on
            // the receive proxy, exactly the unbound proxy of Figure 14.
            self.radio.lpl_energy_detected = true;
            self.cpu_activity_set(self.pxy_rx);
            self.charge_cycles(30);
            self.queue.push(
                self.cursor + SimDuration::from_millis(lpl.listen_timeout_ms),
                NodeEvent::LplTimeout,
            );
        } else {
            self.cpu_activity_set(self.act_vtimer);
            self.radio.stats.clean_wakeups += 1;
            self.radio.lpl_wakeup_open = false;
            self.radio_sinks_off();
        }
    }

    /// Handles the expiry of the post-detection listen window.
    pub(crate) fn handle_lpl_timeout(&mut self) {
        if !self.radio.lpl_wakeup_open || self.radio.rx.is_some() {
            return;
        }
        self.irq_enter(IrqSource::TimerB0);
        self.cpu_activity_set(self.pxy_rx);
        self.radio.stats.false_wakeups += 1;
        self.radio.lpl_wakeup_open = false;
        self.radio_sinks_off();
    }

    /// Handles the radio oscillator start-up completion (non-LPL `radio_on`).
    pub(crate) fn handle_radio_startup_done(&mut self) {
        self.irq_enter(IrqSource::TimerB1);
        if self.radio.requested_on && self.radio.power == RadioPower::Starting {
            self.set_sink(self.ids.radio_rx, radio_rx_state::LISTEN);
            self.radio.power = RadioPower::Listening;
        }
    }

    /// Handles a sensor conversion completion.  Returns the (kind, value,
    /// activity) for the application callback.
    pub(crate) fn handle_sensor_done(
        &mut self,
        kind: SensorKind,
        value: u16,
    ) -> Option<(SensorKind, u16)> {
        self.irq_enter(IrqSource::Sensor);
        let (finished, activity) = self.sensor.complete()?;
        debug_assert_eq!(finished, kind);
        // The completion interrupt's proxy is bound to the activity the
        // driver stored when the conversion started.
        self.cpu_activity_bind(activity);
        self.set_sink(self.ids.temp_sensor, StateIndex(0));
        self.set_sink(self.ids.adc, StateIndex(0));
        self.device_activity_set(self.dev_sensor, self.act_idle);
        self.spi_arbiter.release(BusClient::Sensor);
        Some((kind, value))
    }

    /// Handles a flash operation completion.
    pub(crate) fn handle_flash_done(&mut self, op: FlashOp) -> Option<FlashOp> {
        self.irq_enter(IrqSource::Flash);
        let (finished, _len, activity) = self.flash.complete()?;
        debug_assert_eq!(finished, op);
        self.cpu_activity_bind(activity);
        self.set_sink(
            self.ids.ext_flash,
            StateIndex(self.flash.power.state_index()),
        );
        self.device_activity_set(self.dev_flash, self.act_idle);
        self.spi_arbiter.release(BusClient::Flash);
        Some(op)
    }

    fn radio_sinks_on_listen(&mut self) {
        self.set_sink(self.ids.radio_regulator, radio_regulator_state::ON);
        self.set_sink(self.ids.radio_control, radio_control_state::IDLE);
        self.set_sink(self.ids.radio_rx, radio_rx_state::LISTEN);
        self.radio.power = RadioPower::Listening;
    }

    fn radio_sinks_off(&mut self) {
        self.set_sink(self.ids.radio_rx, radio_rx_state::OFF);
        self.set_sink(self.ids.radio_tx, radio_tx_state::OFF);
        self.set_sink(self.ids.radio_control, radio_control_state::OFF);
        self.set_sink(self.ids.radio_regulator, radio_regulator_state::OFF);
        self.radio.power = RadioPower::Off;
    }

    // ------------------------------------------------------------------
    // The application-facing OS API ("system calls").
    // ------------------------------------------------------------------

    /// The current node-local time.
    pub fn now(&self) -> SimTime {
        self.cursor
    }

    /// This node's identifier.
    pub fn node_id(&self) -> NodeId {
        self.config.node_id
    }

    /// The node's configuration.
    pub fn config(&self) -> &NodeConfig {
        &self.config
    }

    /// Defines a new application activity and returns its label.
    pub fn define_activity(&mut self, name: &str) -> ActivityLabel {
        self.quanto.registry_mut().define_app(name)
    }

    /// The CPU's current activity.
    pub fn cpu_activity(&self) -> ActivityLabel {
        self.quanto.activity_get(self.dev_cpu)
    }

    /// Paints the CPU with an activity — the one call an application
    /// programmer needs to make (Figure 7).
    pub fn set_cpu_activity(&mut self, label: ActivityLabel) {
        self.cpu_activity_set(label);
    }

    /// The idle activity label for this node.
    pub fn idle_activity(&self) -> ActivityLabel {
        self.act_idle
    }

    /// Spends `cycles` of CPU time on application computation.
    pub fn busy_wait(&mut self, cycles: u64) {
        self.charge_cycles(cycles);
    }

    /// Starts a virtual timer.  The CPU's current activity is saved and
    /// restored when the timer fires.
    pub fn start_timer(&mut self, period: SimDuration, periodic: bool) -> TimerId {
        let saved = self.cpu_activity();
        let (id, deadline) = self.timers.start(self.cursor, period, periodic, saved);
        self.queue
            .push(deadline, NodeEvent::HwTimerFired { timer: id });
        id
    }

    /// Stops a virtual timer.
    pub fn stop_timer(&mut self, id: TimerId) -> bool {
        self.timers.stop(id)
    }

    /// Posts a task with the default cost; the CPU's current activity is
    /// saved and restored when the task runs.
    pub fn post_task(&mut self, id: TaskId) {
        let cost = self.config.task_cycles;
        self.post_task_with_cost(id, cost);
    }

    /// Posts a task with an explicit CPU cost in cycles.
    pub fn post_task_with_cost(&mut self, id: TaskId, cost_cycles: u32) {
        let saved = self.cpu_activity();
        self.tasks.post(id, saved, cost_cycles);
    }

    /// Turns an LED on, painting it with the CPU's current activity.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not 0, 1 or 2.
    pub fn led_on(&mut self, idx: usize) {
        if self.leds.set(idx, true) {
            let activity = self.cpu_activity();
            self.device_activity_set(self.dev_leds[idx], activity);
            let sink = self.led_sink(idx);
            self.set_sink(sink, led_state::ON);
        }
    }

    /// Turns an LED off and returns its activity to idle.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not 0, 1 or 2.
    pub fn led_off(&mut self, idx: usize) {
        if self.leds.set(idx, false) {
            let sink = self.led_sink(idx);
            self.set_sink(sink, led_state::OFF);
            self.device_activity_set(self.dev_leds[idx], self.act_idle);
        }
    }

    /// Toggles an LED.
    pub fn led_toggle(&mut self, idx: usize) {
        if self.leds.is_on(idx) {
            self.led_off(idx);
        } else {
            self.led_on(idx);
        }
    }

    /// Whether an LED is currently on.
    pub fn led_is_on(&self, idx: usize) -> bool {
        self.leds.is_on(idx)
    }

    fn led_sink(&self, idx: usize) -> SinkId {
        match idx {
            0 => self.ids.led0,
            1 => self.ids.led1,
            2 => self.ids.led2,
            _ => panic!("LED index {idx} out of range"),
        }
    }

    /// Turns the radio on.  Without LPL the receiver starts listening after
    /// a short oscillator start-up; with LPL the radio begins duty-cycling.
    pub fn radio_on(&mut self) {
        if self.radio.requested_on {
            return;
        }
        self.radio.requested_on = true;
        let activity = self.cpu_activity();
        self.device_activity_set(self.dev_radio, activity);
        match self.config.lpl {
            Some(lpl) => {
                self.queue.push(
                    self.cursor + SimDuration::from_millis(lpl.check_interval_ms),
                    NodeEvent::LplWakeup,
                );
            }
            None => {
                self.set_sink(self.ids.radio_regulator, radio_regulator_state::ON);
                self.set_sink(self.ids.radio_control, radio_control_state::IDLE);
                self.radio.power = RadioPower::Starting;
                self.queue.push(
                    self.cursor + SimDuration::from_micros(860),
                    NodeEvent::RadioStartupDone,
                );
            }
        }
    }

    /// Turns the radio off entirely.
    pub fn radio_off(&mut self) {
        self.radio.requested_on = false;
        self.radio.lpl_wakeup_open = false;
        if self.radio.power != RadioPower::Off {
            self.radio_sinks_off();
        }
        self.device_activity_set(self.dev_radio, self.act_idle);
    }

    /// Submits a packet for transmission.  The packet's hidden activity field
    /// is stamped with the CPU's current activity, and the radio is painted
    /// with it too (Figure 8).
    ///
    /// Returns `false` if a transmission is already in progress or the radio
    /// has not been turned on.
    pub fn send(&mut self, dest: NodeId, am_type: u8, payload: Vec<u8>) -> bool {
        if self.radio.tx_busy() || !self.radio.requested_on {
            return false;
        }
        let activity = self.cpu_activity();
        let mut packet = AmPacket::new(self.config.node_id, dest, am_type, payload);
        packet.activity = activity;
        self.device_activity_set(self.dev_radio, activity);
        // With LPL the radio may be off between checks; power it up for the
        // send.
        if self.radio.power == RadioPower::Off {
            self.radio_sinks_on_listen();
        }
        let bytes = packet.wire_bytes();
        if !self.radio.begin_tx(packet, activity) {
            return false;
        }
        match self.config.spi_mode {
            SpiMode::Interrupt => {
                let chunk = SimDuration::from_micros(
                    self.config
                        .cycles_to_micros(self.config.spi_chunk_cycles as u64),
                );
                self.queue.push(self.cursor + chunk, NodeEvent::SpiTxChunk);
            }
            SpiMode::Dma => {
                let dur =
                    SimDuration::from_micros(self.config.cycles_to_micros(
                        self.config.spi_dma_cycles_per_byte as u64 * bytes as u64,
                    ));
                self.queue.push(self.cursor + dur, NodeEvent::SpiTxDmaDone);
            }
        }
        true
    }

    /// Whether a transmission is currently in progress.
    pub fn radio_busy(&self) -> bool {
        self.radio.tx_busy()
    }

    /// Starts a split-phase sensor read.  Returns `false` if the sensor or
    /// the SPI bus is busy.
    pub fn read_sensor(&mut self, kind: SensorKind) -> bool {
        let activity = self.cpu_activity();
        if self.spi_arbiter.request(BusClient::Sensor, activity) == GrantOutcome::Queued {
            return false;
        }
        if !self.sensor.start(kind, activity) {
            self.spi_arbiter.release(BusClient::Sensor);
            return false;
        }
        self.device_activity_set(self.dev_sensor, activity);
        match kind {
            SensorKind::Temperature => self.set_sink(self.ids.temp_sensor, StateIndex(1)),
            SensorKind::Humidity => self.set_sink(self.ids.adc, StateIndex(1)),
        }
        let value = self.rng.gen_range(0..4096) as u16;
        let conversion = SimDuration::from_millis(75);
        self.queue.push(
            self.cursor + conversion,
            NodeEvent::SensorDone { kind, value },
        );
        true
    }

    /// Starts a split-phase flash operation over `len` bytes.  Returns
    /// `false` if the flash or the SPI bus is busy.
    pub fn flash_op(&mut self, op: FlashOp, len: usize) -> bool {
        let activity = self.cpu_activity();
        if self.spi_arbiter.request(BusClient::Flash, activity) == GrantOutcome::Queued {
            return false;
        }
        let Some(power) = self.flash.start(op, len, activity) else {
            self.spi_arbiter.release(BusClient::Flash);
            return false;
        };
        self.device_activity_set(self.dev_flash, activity);
        self.set_sink(self.ids.ext_flash, StateIndex(power.state_index()));
        let us_per_byte: u64 = match op {
            FlashOp::Read => 5,
            FlashOp::Write => 20,
            FlashOp::Erase => 40,
        };
        let dur = SimDuration::from_micros(1_000 + us_per_byte * len as u64);
        self.queue
            .push(self.cursor + dur, NodeEvent::FlashDone { op });
        true
    }

    /// Uniformly-distributed random number in `[0, bound)`, from the node's
    /// deterministic RNG (for application jitter).
    pub fn random(&mut self, bound: u32) -> u32 {
        self.rng.gen_range(0..bound.max(1))
    }

    // ------------------------------------------------------------------
    // Introspection used by the simulator and by tests.
    // ------------------------------------------------------------------

    /// The hardware catalog this node runs on.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The well-known sink ids of the catalog.
    pub fn sink_ids(&self) -> &HydrowatchIds {
        &self.ids
    }

    /// The Quanto runtime (for registry lookups and counters).
    pub fn quanto(&self) -> &QuantoRuntime {
        &self.quanto
    }

    /// Attaches a streaming consumer of drained log chunks (the run-loop
    /// drain hookup): `Flush`-policy drains during the run and the end-of-run
    /// take both go through the sink, so the node-side log memory stays
    /// bounded by the RAM buffer capacity.  With a sink attached,
    /// [`NodeRunOutput::log`] comes back empty — the entries live wherever
    /// the sink put them.
    pub fn set_log_sink(&mut self, sink: Box<dyn quanto_core::LogSink>) {
        self.quanto.set_log_sink(sink);
    }

    /// Attaches or detaches the ground-truth oscilloscope probe.  The
    /// current trace grows with every power-state change, so headless runs
    /// that only need the Quanto log and the energy totals (the fleet's
    /// zero-materialization path) detach it to stay memory-bounded.  Energy
    /// accounting ([`NodeRunOutput::ground_truth`]) is unaffected.
    pub fn set_trace_recording(&mut self, enabled: bool) {
        self.trace.set_enabled(enabled);
    }

    /// The tracked device ids: `(cpu, leds, radio, flash, sensor)`.
    pub fn device_ids(&self) -> (DeviceId, [DeviceId; 3], DeviceId, DeviceId, DeviceId) {
        (
            self.dev_cpu,
            self.dev_leds,
            self.dev_radio,
            self.dev_flash,
            self.dev_sensor,
        )
    }

    /// Radio statistics.
    pub fn radio_stats(&self) -> crate::drivers::RadioStats {
        self.radio.stats
    }

    /// Whether the radio receiver is currently able to hear a frame.
    pub fn radio_listening(&self) -> bool {
        self.radio.can_hear()
    }

    /// Collects the node's outputs at the end of a run, advancing the energy
    /// ground truth to `end`.
    pub(crate) fn collect_output(&mut self, end: SimTime) -> NodeRunOutput {
        self.cursor = self.cursor.max(end);
        self.accumulator.advance(self.cursor);
        let reading = self.meter.read(self.accumulator.total_energy());
        let final_stamp = Stamp::new(self.cursor, reading.counter);
        let mut trace = self.trace.clone();
        trace.finish(self.cursor);
        // End-of-run take: with a sink attached the remaining buffered tail
        // streams through it and `log` stays empty; otherwise the held
        // chunks are copied out once (no intermediate clone of `drained`).
        let log = if self.quanto.drain_log_to_attached_sink() {
            Vec::new()
        } else {
            let mut log = Vec::with_capacity(self.quanto.logger().len());
            for chunk in self.quanto.logger().chunks() {
                log.extend_from_slice(chunk);
            }
            log
        };
        NodeRunOutput {
            log,
            final_stamp,
            trace,
            ground_truth: self.accumulator.breakdown(),
            radio_stats: self.radio.stats,
            cost_stats: *self.quanto.cost_stats(),
            tasks_posted: self.tasks.posted_total(),
            log_dropped: self.quanto.logger().dropped(),
        }
    }
}
