//! The application programming model.
//!
//! Applications are written against the same split-phase, event-driven model
//! TinyOS uses: the OS calls the application's event handlers (`boot`, timer
//! firings, task bodies, packet receptions, operation completions), and the
//! application calls back into the OS through the [`OsHandle`] it is handed.
//! Activity tracking asks very little of the application programmer: define
//! activities at boot and paint the CPU before starting each logical activity
//! (Figure 7); the OS propagates the labels from there.

use crate::event::{FlashOp, SensorKind, TaskId, TimerId};
use crate::kernel::OsHandle;
use crate::packet::AmPacket;

/// An event-driven application running on one simulated node.
#[allow(unused_variables)]
pub trait Application {
    /// Called once at node boot, after the OS is initialized.
    fn boot(&mut self, os: &mut OsHandle);

    /// A virtual timer fired.
    fn timer_fired(&mut self, timer: TimerId, os: &mut OsHandle) {}

    /// A posted task is running.
    fn task(&mut self, task: TaskId, os: &mut OsHandle) {}

    /// A packet addressed to this node (or broadcast) was received and
    /// decoded.  The CPU is already painted with the packet's activity.
    fn packet_received(&mut self, packet: &AmPacket, os: &mut OsHandle) {}

    /// A previously submitted packet finished transmitting.
    fn send_done(&mut self, os: &mut OsHandle) {}

    /// A sensor conversion finished.
    fn sensor_read_done(&mut self, kind: SensorKind, value: u16, os: &mut OsHandle) {}

    /// A flash operation finished.
    fn flash_done(&mut self, op: FlashOp, os: &mut OsHandle) {}
}

/// An application that does nothing — the node just idles (plus whatever the
/// OS does on its own, such as the DCO calibration interrupt of Figure 15).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullApp;

impl Application for NullApp {
    fn boot(&mut self, _os: &mut OsHandle) {}
}
