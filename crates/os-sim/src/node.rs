//! A simulated node: kernel + application + event dispatch.

use crate::app::Application;
use crate::event::NodeEvent;
use crate::kernel::{Kernel, NodeRunOutput};
use crate::packet::AmPacket;
use crate::world::{Emission, World};
use hw_model::SimTime;
use quanto_core::NodeId;

/// One node of the network: the instrumented kernel plus the application.
pub struct Node {
    kernel: Kernel,
    app: Box<dyn Application>,
    booted: bool,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("id", &self.kernel.node_id())
            .field("kernel", &self.kernel)
            .finish()
    }
}

impl Node {
    /// Creates a node from a configured kernel and an application.
    pub fn new(kernel: Kernel, app: Box<dyn Application>) -> Self {
        Node {
            kernel,
            app,
            booted: false,
        }
    }

    /// This node's identifier.
    pub fn id(&self) -> NodeId {
        self.kernel.node_id()
    }

    /// Read-only access to the kernel (for assertions and reports).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable access to the kernel, for pre-run configuration such as
    /// attaching a log sink.
    pub(crate) fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Boots the node: runs the application's `boot` handler in a batch at
    /// time zero.  Called automatically by the first `process_next` if the
    /// coordinator does not call it explicitly.
    pub fn boot(&mut self) {
        if self.booted {
            return;
        }
        self.booted = true;
        self.kernel.begin_batch(SimTime::ZERO);
        self.app.boot(&mut self.kernel);
        self.drain_tasks();
        self.kernel.end_batch();
    }

    /// The time of this node's next pending event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.kernel.peek_event_time()
    }

    /// Delivers a frame from the ether: the node will see a start-of-frame
    /// delimiter interrupt at `sfd_time` (if its receiver is on then).
    pub fn deliver_packet(&mut self, packet: AmPacket, sfd_time: SimTime) {
        self.kernel
            .push_event(sfd_time, NodeEvent::RadioSfd { packet });
    }

    /// Processes this node's next pending event.  Returns the event's time
    /// and any frames the node put on the air while handling it.
    ///
    /// Returns `None` when the node has no pending events.
    pub fn process_next(&mut self, world: &mut dyn World) -> Option<(SimTime, Vec<Emission>)> {
        if !self.booted {
            self.boot();
        }
        let (time, event) = self.kernel.pop_event()?;
        let effective = self.kernel.begin_batch(time);
        self.dispatch(event, effective, world);
        self.drain_tasks();
        self.kernel.end_batch();
        Some((effective, self.kernel.take_emissions()))
    }

    /// Finishes the run at `end`, collecting the node's outputs.
    pub fn finish(&mut self, end: SimTime) -> NodeRunOutput {
        self.kernel.collect_output(end)
    }

    fn dispatch(&mut self, event: NodeEvent, at: SimTime, world: &mut dyn World) {
        let node = self.kernel.node_id();
        let channel = self.kernel.config().radio_channel;
        match event {
            NodeEvent::HwTimerFired { timer } => {
                if self.kernel.handle_hw_timer(timer).is_some() {
                    self.app.timer_fired(timer, &mut self.kernel);
                    self.kernel.finish_hw_timer();
                }
            }
            NodeEvent::DcoCalibration => self.kernel.handle_dco_calibration(),
            NodeEvent::CpuMaybeSleep => {}
            NodeEvent::SpiTxChunk => self.kernel.handle_spi_tx_chunk(),
            NodeEvent::SpiTxDmaDone => self.kernel.handle_spi_tx_dma_done(),
            NodeEvent::CsmaBackoffDone => {
                let busy = world.channel_busy(node, channel, at);
                self.kernel.handle_backoff_done(busy);
            }
            NodeEvent::RadioTxDone => {
                if self.kernel.handle_tx_done() {
                    self.app.send_done(&mut self.kernel);
                }
            }
            NodeEvent::RadioSfd { packet } => {
                self.kernel.handle_sfd(packet);
            }
            NodeEvent::SpiRxChunk => {
                if let Some(packet) = self.kernel.handle_spi_rx_chunk() {
                    self.app.packet_received(&packet, &mut self.kernel);
                }
            }
            NodeEvent::SpiRxDmaDone => {
                if let Some(packet) = self.kernel.handle_spi_rx_dma_done() {
                    self.app.packet_received(&packet, &mut self.kernel);
                }
            }
            NodeEvent::LplWakeup => self.kernel.handle_lpl_wakeup(),
            NodeEvent::LplCcaSample => {
                let busy = world.channel_busy(node, channel, at);
                self.kernel.handle_lpl_cca(busy);
            }
            NodeEvent::LplTimeout => self.kernel.handle_lpl_timeout(),
            NodeEvent::RadioStartupDone => self.kernel.handle_radio_startup_done(),
            NodeEvent::SensorDone { kind, value } => {
                if let Some((kind, value)) = self.kernel.handle_sensor_done(kind, value) {
                    self.app.sensor_read_done(kind, value, &mut self.kernel);
                }
            }
            NodeEvent::FlashDone { op } => {
                if let Some(op) = self.kernel.handle_flash_done(op) {
                    self.app.flash_done(op, &mut self.kernel);
                }
            }
        }
    }

    fn drain_tasks(&mut self) {
        // Tasks run to completion in post order; a task may post further
        // tasks, which run in the same batch (bounded by a sanity limit so a
        // buggy application cannot hang the simulator).
        let mut guard = 0;
        while let Some(task) = self.kernel.next_task() {
            self.app.task(task.id, &mut self.kernel);
            guard += 1;
            assert!(
                guard < 10_000,
                "task storm: more than 10000 tasks in one batch on node {}",
                self.kernel.node_id()
            );
        }
    }
}
