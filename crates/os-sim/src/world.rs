//! The node's view of the outside world.
//!
//! A single node only needs two things from its environment: an answer to
//! "is there energy on my radio channel right now?" (clear-channel
//! assessment, which drives both CSMA and low-power listening) and a place to
//! put the frames it transmits.  The multi-node simulator in `net-sim`
//! implements [`World`] with a real channel model and interference sources;
//! [`QuietWorld`] is the single-node default where the ether is silent.

use crate::packet::AmPacket;
use hw_model::SimTime;
use quanto_core::NodeId;

/// The environment a node's radio operates in.
pub trait World {
    /// Whether a clear-channel assessment on `channel` at `at` would detect
    /// energy (from other transmitters or from interference).
    fn channel_busy(&mut self, node: NodeId, channel: u8, at: SimTime) -> bool;

    /// Called by the engine when a node puts a frame on the air.  The world
    /// registers the transmission (so later assessments see the energy) and
    /// returns, for every node that hears the frame, the time its radio sees
    /// the start-of-frame delimiter.  `nodes` lists every node in the
    /// simulation, transmitter included.
    ///
    /// The default is an ether nobody listens to: the frame vanishes.
    fn transmit(&mut self, emission: &Emission, nodes: &[NodeId]) -> Vec<(NodeId, SimTime)> {
        let _ = (emission, nodes);
        Vec::new()
    }
}

/// A world with a perfectly quiet ether.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuietWorld;

impl World for QuietWorld {
    fn channel_busy(&mut self, _node: NodeId, _channel: u8, _at: SimTime) -> bool {
        false
    }
}

/// A frame a node put on the air; the coordinator decides who hears it.
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    /// The transmitting node.
    pub from: NodeId,
    /// The 802.15.4 channel used.
    pub channel: u8,
    /// The frame, including its hidden activity field.
    pub packet: AmPacket,
    /// When the transmission started.
    pub start: SimTime,
    /// When the transmission ended.
    pub end: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_world_is_never_busy() {
        let mut w = QuietWorld;
        assert!(!w.channel_busy(NodeId(1), 17, SimTime::ZERO));
        assert!(!w.channel_busy(NodeId(9), 26, SimTime::from_secs(100)));
    }
}
