//! The node-local discrete-event queue.

use crate::packet::AmPacket;
use hw_model::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Identifier of a virtual timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(pub u16);

/// Identifier of an application task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u16);

/// Sensors the platform can sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensorKind {
    /// SHT11 humidity channel.
    Humidity,
    /// SHT11 temperature channel.
    Temperature,
}

/// Flash operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlashOp {
    /// Read `len` bytes.
    Read,
    /// Write `len` bytes.
    Write,
    /// Erase a block.
    Erase,
}

/// Events a node schedules for itself (hardware completions, timer compare
/// interrupts, deferred work).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeEvent {
    /// The hardware timer reached the deadline of a virtual timer.
    HwTimerFired {
        /// Which virtual timer is due.
        timer: TimerId,
    },
    /// The 16 Hz TimerA1 interrupt used for DCO calibration (Figure 15).
    DcoCalibration,
    /// The CPU may go back to sleep if no work is pending.
    CpuMaybeSleep,
    /// One 2-byte SPI chunk of the TX FIFO load finished (interrupt mode).
    SpiTxChunk,
    /// The DMA transfer of the TX FIFO load finished.
    SpiTxDmaDone,
    /// The CSMA backoff expired; time to sample the channel and transmit.
    CsmaBackoffDone,
    /// The over-the-air transmission finished.
    RadioTxDone,
    /// A start-of-frame delimiter was detected for an incoming packet.
    RadioSfd {
        /// The incoming packet (its bytes are still in the radio FIFO).
        packet: AmPacket,
    },
    /// One 2-byte SPI chunk of the RX FIFO download finished.
    SpiRxChunk,
    /// The DMA transfer of the RX FIFO download finished.
    SpiRxDmaDone,
    /// Low-power-listening periodic wake-up.
    LplWakeup,
    /// The LPL clear-channel sample window ended.
    LplCcaSample,
    /// The LPL post-detection listen window expired with no packet.
    LplTimeout,
    /// The radio oscillator finished starting up.
    RadioStartupDone,
    /// A sensor conversion finished.
    SensorDone {
        /// Which sensor finished.
        kind: SensorKind,
        /// The converted value.
        value: u16,
    },
    /// A flash operation finished.
    FlashDone {
        /// Which operation finished.
        op: FlashOp,
    },
}

#[derive(Debug, Clone)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    event: NodeEvent,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to get earliest-first, breaking
        // ties by insertion order for determinism.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic earliest-first event queue.
#[derive(Debug, Clone, Default)]
pub struct LocalQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl LocalQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        LocalQueue::default()
    }

    /// Schedules an event at an absolute time.
    pub fn push(&mut self, time: SimTime, event: NodeEvent) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pops the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, NodeEvent)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_insertion() {
        let mut q = LocalQueue::new();
        q.push(SimTime::from_millis(5), NodeEvent::CpuMaybeSleep);
        q.push(SimTime::from_millis(1), NodeEvent::DcoCalibration);
        q.push(SimTime::from_millis(5), NodeEvent::LplWakeup);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(q.pop().unwrap().1, NodeEvent::DcoCalibration);
        // Equal times preserve insertion order.
        assert_eq!(q.pop().unwrap().1, NodeEvent::CpuMaybeSleep);
        assert_eq!(q.pop().unwrap().1, NodeEvent::LplWakeup);
        assert!(q.pop().is_none());
        assert!(q.is_empty());
    }
}
