//! The external NOR-flash driver.
//!
//! Flash operations go through a handshake during which the chip's power
//! state is visible to, but not directly controlled by, the CPU: the driver
//! shadows the chip's busy/ready transitions and exposes them through the
//! `PowerState` interface (the example discussed in Section 2.4).

use crate::event::FlashOp;
use quanto_core::ActivityLabel;

/// Power states of the external flash, matching the Table 1 rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlashPower {
    /// Deep power-down (the boot state).
    PowerDown,
    /// Awake but idle.
    Standby,
    /// Read in progress.
    Read,
    /// Write in progress.
    Write,
    /// Erase in progress.
    Erase,
}

impl FlashPower {
    /// The catalog state index for this power state (matches
    /// `hw_model::catalog::flash_state`).
    pub fn state_index(self) -> u8 {
        match self {
            FlashPower::PowerDown => 0,
            FlashPower::Standby => 1,
            FlashPower::Read => 2,
            FlashPower::Write => 3,
            FlashPower::Erase => 4,
        }
    }
}

/// Shadow state of the external flash.
#[derive(Debug, Clone)]
pub struct FlashState {
    /// Current power state.
    pub power: FlashPower,
    /// In-flight operation and the activity it belongs to.
    pub pending: Option<(FlashOp, usize, ActivityLabel)>,
    /// Completed operations.
    pub completed: u32,
    /// Requests rejected because an operation was already in flight.
    pub rejected: u32,
}

impl Default for FlashState {
    fn default() -> Self {
        FlashState {
            power: FlashPower::PowerDown,
            pending: None,
            completed: 0,
            rejected: 0,
        }
    }
}

impl FlashState {
    /// Creates a powered-down flash.
    pub fn new() -> Self {
        FlashState::default()
    }

    /// Starts an operation over `len` bytes on behalf of `activity`.
    ///
    /// Returns the power state the chip enters, or `None` if it was busy.
    pub fn start(
        &mut self,
        op: FlashOp,
        len: usize,
        activity: ActivityLabel,
    ) -> Option<FlashPower> {
        if self.pending.is_some() {
            self.rejected += 1;
            return None;
        }
        let power = match op {
            FlashOp::Read => FlashPower::Read,
            FlashOp::Write => FlashPower::Write,
            FlashOp::Erase => FlashPower::Erase,
        };
        self.power = power;
        self.pending = Some((op, len, activity));
        Some(power)
    }

    /// Completes the in-flight operation; the chip drops back to standby.
    pub fn complete(&mut self) -> Option<(FlashOp, usize, ActivityLabel)> {
        let done = self.pending.take();
        if done.is_some() {
            self.completed += 1;
            self.power = FlashPower::Standby;
        }
        done
    }

    /// Sends the chip to deep power-down (only when idle).
    ///
    /// Returns `true` if the state changed.
    pub fn power_down(&mut self) -> bool {
        if self.pending.is_none() && self.power != FlashPower::PowerDown {
            self.power = FlashPower::PowerDown;
            true
        } else {
            false
        }
    }

    /// Whether an operation is in flight.
    pub fn busy(&self) -> bool {
        self.pending.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quanto_core::{ActivityId, NodeId};

    #[test]
    fn operation_lifecycle() {
        let act = ActivityLabel::new(NodeId(1), ActivityId(3));
        let mut f = FlashState::new();
        assert_eq!(f.power, FlashPower::PowerDown);
        assert_eq!(f.start(FlashOp::Write, 256, act), Some(FlashPower::Write));
        assert!(f.busy());
        assert!(f.start(FlashOp::Read, 16, act).is_none());
        let (op, len, a) = f.complete().unwrap();
        assert_eq!(op, FlashOp::Write);
        assert_eq!(len, 256);
        assert_eq!(a, act);
        assert_eq!(f.power, FlashPower::Standby);
        assert!(f.power_down());
        assert!(!f.power_down());
        assert_eq!(f.completed, 1);
        assert_eq!(f.rejected, 1);
    }

    #[test]
    fn state_indices_match_catalog_order() {
        assert_eq!(FlashPower::PowerDown.state_index(), 0);
        assert_eq!(FlashPower::Standby.state_index(), 1);
        assert_eq!(FlashPower::Read.state_index(), 2);
        assert_eq!(FlashPower::Write.state_index(), 3);
        assert_eq!(FlashPower::Erase.state_index(), 4);
    }
}
