//! The SHT11-style sensor driver.
//!
//! Sensor reads are split-phase: the CPU starts a conversion, the chip
//! samples on its own (drawing its SAMPLE current), and a completion
//! interrupt delivers the value.  The driver stores the activity on whose
//! behalf the conversion runs so the completion interrupt's proxy activity
//! can be bound back to it — the pattern Section 3.3 describes for
//! device-completion interrupts.

use crate::event::SensorKind;
use quanto_core::ActivityLabel;

/// Shadow state of the sensor chip.
#[derive(Debug, Clone, Default)]
pub struct SensorState {
    /// The in-flight conversion, if any: which channel and for which
    /// activity.
    pub sampling: Option<(SensorKind, ActivityLabel)>,
    /// Completed conversions.
    pub completed: u32,
    /// Conversion requests rejected because one was already in flight.
    pub rejected: u32,
}

impl SensorState {
    /// Creates an idle sensor.
    pub fn new() -> Self {
        SensorState::default()
    }

    /// Starts a conversion.  Returns `false` (and counts a rejection) if one
    /// is already in flight — the SHT11 has a single conversion engine.
    pub fn start(&mut self, kind: SensorKind, activity: ActivityLabel) -> bool {
        if self.sampling.is_some() {
            self.rejected += 1;
            return false;
        }
        self.sampling = Some((kind, activity));
        true
    }

    /// Completes the in-flight conversion, returning which channel finished
    /// and the activity it belongs to.
    pub fn complete(&mut self) -> Option<(SensorKind, ActivityLabel)> {
        let done = self.sampling.take();
        if done.is_some() {
            self.completed += 1;
        }
        done
    }

    /// Whether a conversion is in flight.
    pub fn busy(&self) -> bool {
        self.sampling.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quanto_core::{ActivityId, NodeId};

    #[test]
    fn single_conversion_at_a_time() {
        let act = ActivityLabel::new(NodeId(1), ActivityId(5));
        let mut s = SensorState::new();
        assert!(!s.busy());
        assert!(s.start(SensorKind::Humidity, act));
        assert!(!s.start(SensorKind::Temperature, act));
        assert!(s.busy());
        let (kind, a) = s.complete().unwrap();
        assert_eq!(kind, SensorKind::Humidity);
        assert_eq!(a, act);
        assert!(s.complete().is_none());
        assert_eq!(s.completed, 1);
        assert_eq!(s.rejected, 1);
    }
}
