//! The CC2420-style radio driver state machine.
//!
//! The radio is the most involved instrumented device: it has several energy
//! sinks (voltage regulator, control path, RX path, TX path), split-phase
//! transmit and receive operations whose data moves over the shared SPI bus,
//! an optional low-power-listening duty cycle, and it performs work without
//! CPU intervention (the actual over-the-air transmission).  The kernel
//! drives this state machine from its event loop.

use crate::packet::AmPacket;
use hw_model::SimTime;
use quanto_core::ActivityLabel;

/// Gross power state of the radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadioPower {
    /// Voltage regulator off; the chip is dark.
    Off,
    /// Oscillator starting up.
    Starting,
    /// Oscillator running, neither receiving nor transmitting.
    Idle,
    /// Receiver on, listening (or actively receiving).
    Listening,
    /// Transmitter on, sending a frame.
    Transmitting,
}

/// Phase of an in-flight transmit operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxPhase {
    /// The packet is being copied into the TXFIFO over SPI.
    LoadingFifo,
    /// Waiting out the CSMA backoff.
    Backoff,
    /// On the air.
    OnAir,
}

/// An in-flight transmit operation.
#[derive(Debug, Clone)]
pub struct TxOperation {
    /// The packet being sent (its hidden activity field already stamped).
    pub packet: AmPacket,
    /// Bytes copied into the TXFIFO so far.
    pub bytes_loaded: usize,
    /// Current phase.
    pub phase: TxPhase,
    /// The activity on whose behalf the send runs.
    pub activity: ActivityLabel,
    /// How many backoff rounds have been taken (CCA found the channel busy).
    pub backoff_rounds: u32,
}

/// An in-flight receive operation (packet bytes being pulled from the RXFIFO).
#[derive(Debug, Clone)]
pub struct RxOperation {
    /// The packet being received.
    pub packet: AmPacket,
    /// Bytes downloaded from the RXFIFO so far.
    pub bytes_downloaded: usize,
    /// When the start-of-frame delimiter was seen.
    pub sfd_time: SimTime,
}

/// Counters the case studies report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RadioStats {
    /// Packets fully transmitted.
    pub packets_sent: u64,
    /// Packets fully received and delivered to the application.
    pub packets_received: u64,
    /// LPL wake-ups that found the channel clear and went back to sleep.
    pub clean_wakeups: u64,
    /// LPL wake-ups that detected energy but never received a packet
    /// (the false positives of Figure 13).
    pub false_wakeups: u64,
    /// LPL wake-ups that resulted in a packet reception.
    pub rx_wakeups: u64,
    /// CSMA backoff rounds taken because the channel was busy.
    pub busy_backoffs: u64,
}

/// The radio driver's shadow state.
#[derive(Debug, Clone)]
pub struct RadioState {
    /// Gross power state.
    pub power: RadioPower,
    /// In-flight transmit operation.
    pub tx: Option<TxOperation>,
    /// In-flight receive operation.
    pub rx: Option<RxOperation>,
    /// Whether an LPL wake-up window is currently open.
    pub lpl_wakeup_open: bool,
    /// Whether the current LPL wake-up saw energy on the channel.
    pub lpl_energy_detected: bool,
    /// Whether the current LPL wake-up received a packet.
    pub lpl_got_packet: bool,
    /// Whether the application asked for the radio to be on at all
    /// (with LPL this means duty-cycling; without it, always listening).
    pub requested_on: bool,
    /// Statistics.
    pub stats: RadioStats,
}

impl Default for RadioState {
    fn default() -> Self {
        RadioState {
            power: RadioPower::Off,
            tx: None,
            rx: None,
            lpl_wakeup_open: false,
            lpl_energy_detected: false,
            lpl_got_packet: false,
            requested_on: false,
            stats: RadioStats::default(),
        }
    }
}

impl RadioState {
    /// Creates a powered-down radio.
    pub fn new() -> Self {
        RadioState::default()
    }

    /// Whether the receiver can currently detect an incoming frame.
    pub fn can_hear(&self) -> bool {
        matches!(self.power, RadioPower::Listening) && self.rx.is_none() && self.tx.is_none()
    }

    /// Whether a transmit operation is in progress (any phase).
    pub fn tx_busy(&self) -> bool {
        self.tx.is_some()
    }

    /// Begins a transmit operation; the kernel has already stamped the
    /// packet's activity field.
    ///
    /// Returns `false` if a transmit is already in flight.
    pub fn begin_tx(&mut self, packet: AmPacket, activity: ActivityLabel) -> bool {
        if self.tx.is_some() {
            return false;
        }
        self.tx = Some(TxOperation {
            packet,
            bytes_loaded: 0,
            phase: TxPhase::LoadingFifo,
            activity,
            backoff_rounds: 0,
        });
        true
    }

    /// Begins a receive operation (SFD seen).
    ///
    /// Returns `false` if the radio cannot take the frame (off, already
    /// receiving, or transmitting).
    pub fn begin_rx(&mut self, packet: AmPacket, sfd_time: SimTime) -> bool {
        if !self.can_hear() {
            return false;
        }
        self.rx = Some(RxOperation {
            packet,
            bytes_downloaded: 0,
            sfd_time,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quanto_core::NodeId;

    fn pkt() -> AmPacket {
        AmPacket::new(NodeId(1), NodeId(4), 0, vec![0; 16])
    }

    #[test]
    fn tx_state_machine_rejects_concurrent_sends() {
        let mut r = RadioState::new();
        assert!(r.begin_tx(pkt(), ActivityLabel::IDLE));
        assert!(r.tx_busy());
        assert!(!r.begin_tx(pkt(), ActivityLabel::IDLE));
        assert_eq!(r.tx.as_ref().unwrap().phase, TxPhase::LoadingFifo);
    }

    #[test]
    fn rx_requires_listening() {
        let mut r = RadioState::new();
        assert!(!r.can_hear());
        assert!(!r.begin_rx(pkt(), SimTime::ZERO));
        r.power = RadioPower::Listening;
        assert!(r.can_hear());
        assert!(r.begin_rx(pkt(), SimTime::from_millis(1)));
        // Already receiving: a second frame is lost.
        assert!(!r.begin_rx(pkt(), SimTime::from_millis(2)));
    }

    #[test]
    fn tx_blocks_reception() {
        let mut r = RadioState::new();
        r.power = RadioPower::Listening;
        assert!(r.begin_tx(pkt(), ActivityLabel::IDLE));
        assert!(!r.can_hear());
    }
}
