//! Device-driver state machines.
//!
//! Each driver keeps its own shadow of the hardware's state (the part the
//! paper says drivers must expose through the `PowerState` interface) plus
//! whatever bookkeeping the OS needs to complete split-phase operations.  The
//! kernel orchestrates the drivers: it owns the event queue, the Quanto
//! runtime and the energy ground truth, and calls into these state machines
//! at each step.

pub mod flash;
pub mod led;
pub mod radio;
pub mod sensor;

pub use flash::{FlashPower, FlashState};
pub use led::LedBank;
pub use radio::{RadioPower, RadioState, RadioStats, RxOperation, TxOperation, TxPhase};
pub use sensor::SensorState;
