//! The LED driver.
//!
//! LEDs are the simplest instrumented device: two power states, fully under
//! CPU control (Figure 2 of the paper).

/// Shadow state of the three platform LEDs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LedBank {
    on: [bool; 3],
    toggles: [u32; 3],
}

impl LedBank {
    /// Creates a bank with all LEDs off.
    pub fn new() -> Self {
        LedBank::default()
    }

    /// Sets LED `idx` to `on`.  Returns `true` if the state changed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not 0, 1 or 2.
    pub fn set(&mut self, idx: usize, on: bool) -> bool {
        assert!(idx < 3, "LED index {idx} out of range");
        if self.on[idx] == on {
            false
        } else {
            self.on[idx] = on;
            self.toggles[idx] += 1;
            true
        }
    }

    /// Whether LED `idx` is currently on.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not 0, 1 or 2.
    pub fn is_on(&self, idx: usize) -> bool {
        assert!(idx < 3, "LED index {idx} out of range");
        self.on[idx]
    }

    /// How many times LED `idx` changed state.
    pub fn toggle_count(&self, idx: usize) -> u32 {
        self.toggles[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_tracks_changes_and_toggle_counts() {
        let mut leds = LedBank::new();
        assert!(!leds.is_on(0));
        assert!(leds.set(0, true));
        assert!(!leds.set(0, true), "redundant set is not a change");
        assert!(leds.set(0, false));
        assert!(leds.set(2, true));
        assert_eq!(leds.toggle_count(0), 2);
        assert_eq!(leds.toggle_count(1), 0);
        assert_eq!(leds.toggle_count(2), 1);
        assert!(leds.is_on(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_index_panics() {
        let mut leds = LedBank::new();
        leds.set(3, true);
    }
}
