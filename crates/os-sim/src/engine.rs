//! The shared event-driven simulation engine.
//!
//! Single-node runs ([`crate::sim::Simulator`]) and multi-node runs
//! (`net-sim`'s `NetSim`) used to each own a private time-advancement loop;
//! every new scenario had to be written twice or pick a side.  [`Engine`] is
//! the one loop both are now thin configurations of: it owns the nodes,
//! advances global time by always running the node with the earliest pending
//! event, and routes every emitted frame through the pluggable
//! [`World`] — the medium decides who hears what, the engine only schedules.
//!
//! The engine makes no assumption about node count: one node in a
//! [`crate::world::QuietWorld`] is the paper's single-mote bench, N nodes in
//! `net-sim`'s `Medium` are the multi-hop experiments, and future worlds
//! (fleets, batched runs, alternative mediums) plug in the same way.

use crate::app::Application;
use crate::config::NodeConfig;
use crate::kernel::{Kernel, NodeRunOutput};
use crate::node::Node;
use crate::world::World;
use hw_model::{SimDuration, SimTime};
use quanto_core::NodeId;

/// A global-time discrete-event scheduler over a set of nodes in a [`World`].
pub struct Engine<W: World> {
    nodes: Vec<Node>,
    world: W,
}

impl<W: World> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl<W: World> Engine<W> {
    /// Creates an engine with no nodes in the given world.
    pub fn new(world: W) -> Self {
        Engine {
            nodes: Vec::new(),
            world,
        }
    }

    /// Adds a node running `app` under `config`.  Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same id is already registered.
    pub fn add_node(&mut self, config: NodeConfig, app: Box<dyn Application>) -> NodeId {
        let id = config.node_id;
        assert!(
            !self.nodes.iter().any(|n| n.id() == id),
            "duplicate node id {id}"
        );
        let kernel = Kernel::new(config);
        self.nodes.push(Node::new(kernel, app));
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read-only access to every node.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Read-only access to one node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.iter().find(|n| n.id() == id)
    }

    /// Read-only access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. to reconfigure interference).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Boots every node (applications' `boot` handlers run at time zero).
    pub fn boot_all(&mut self) {
        for node in &mut self.nodes {
            node.boot();
        }
    }

    /// The time of the earliest pending event across all nodes, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.peek_earliest().map(|(t, _)| t)
    }

    /// The earliest pending event's `(time, node index)`, if any.
    fn peek_earliest(&self) -> Option<(SimTime, usize)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.next_event_time().map(|t| (t, i)))
            .min()
    }

    /// Processes the single earliest pending event in the whole simulation
    /// and fans its emissions out through the world.  Returns the event's
    /// effective time, or `None` when no node has pending events.
    pub fn step(&mut self) -> Option<SimTime> {
        let (_, idx) = self.peek_earliest()?;
        self.step_node(idx)
    }

    /// Processes the next event of the node at `idx` and fans its emissions
    /// out through the world.
    fn step_node(&mut self, idx: usize) -> Option<SimTime> {
        let (time, emissions) = self.nodes[idx].process_next(&mut self.world)?;
        if !emissions.is_empty() {
            let ids: Vec<NodeId> = self.nodes.iter().map(Node::id).collect();
            for emission in emissions {
                for (to, sfd) in self.world.transmit(&emission, &ids) {
                    if let Some(node) = self.nodes.iter_mut().find(|n| n.id() == to) {
                        node.deliver_packet(emission.packet.clone(), sfd);
                    }
                }
            }
        }
        Some(time)
    }

    /// Advances the whole simulation until `until` (inclusive).
    pub fn run_until(&mut self, until: SimTime) {
        self.boot_all();
        // One scan per event: the (time, node) pick doubles as the bound
        // check and the dispatch target.
        while let Some((t, idx)) = self.peek_earliest() {
            if t > until {
                break;
            }
            self.step_node(idx);
        }
    }

    /// Runs for `duration` from time zero and collects every node's outputs.
    pub fn run_for(&mut self, duration: SimDuration) -> Vec<(NodeId, NodeRunOutput)> {
        let end = SimTime::ZERO + duration;
        self.run_until(end);
        self.finish(end)
    }

    /// Collects every node's outputs at `end` without running further.
    pub fn finish(&mut self, end: SimTime) -> Vec<(NodeId, NodeRunOutput)> {
        self.nodes
            .iter_mut()
            .map(|n| (n.id(), n.finish(end)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::NullApp;
    use crate::world::{Emission, QuietWorld};

    #[test]
    fn empty_engine_has_no_events() {
        let mut engine: Engine<QuietWorld> = Engine::new(QuietWorld);
        assert_eq!(engine.node_count(), 0);
        assert_eq!(engine.next_event_time(), None);
        assert_eq!(engine.step(), None);
        assert!(engine.run_for(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn steps_interleave_nodes_in_global_time_order() {
        let mut engine = Engine::new(QuietWorld);
        engine.add_node(NodeConfig::new(NodeId(1)), Box::new(NullApp));
        engine.add_node(NodeConfig::new(NodeId(2)), Box::new(NullApp));
        engine.boot_all();
        let mut last = SimTime::ZERO;
        for _ in 0..32 {
            let Some(t) = engine.step() else { break };
            assert!(t >= last, "engine went backwards in time: {t:?} < {last:?}");
            last = t;
        }
        assert!(last > SimTime::ZERO, "the DCO calibration ticks both nodes");
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_ids_are_rejected() {
        let mut engine = Engine::new(QuietWorld);
        engine.add_node(NodeConfig::new(NodeId(3)), Box::new(NullApp));
        engine.add_node(NodeConfig::new(NodeId(3)), Box::new(NullApp));
    }

    /// A world that records transmissions and echoes every frame back to the
    /// transmitter — exercises the emission fan-out path without `net-sim`.
    struct EchoWorld {
        heard: usize,
    }

    impl World for EchoWorld {
        fn channel_busy(&mut self, _: NodeId, _: u8, _: SimTime) -> bool {
            false
        }

        fn transmit(&mut self, emission: &Emission, nodes: &[NodeId]) -> Vec<(NodeId, SimTime)> {
            self.heard += 1;
            // Loop the frame back to every *other* node (there are none in
            // this test, proving default routing is entirely world-defined).
            nodes
                .iter()
                .copied()
                .filter(|n| *n != emission.from)
                .map(|n| (n, emission.end))
                .collect()
        }
    }

    /// An app that transmits one frame shortly after boot.
    struct SendOnce;

    impl Application for SendOnce {
        fn boot(&mut self, os: &mut crate::kernel::OsHandle) {
            os.radio_on();
            os.start_timer(SimDuration::from_millis(50), false);
        }

        fn timer_fired(&mut self, _t: crate::event::TimerId, os: &mut crate::kernel::OsHandle) {
            os.send(crate::packet::AM_BROADCAST, 1, vec![1, 2, 3]);
        }
    }

    #[test]
    fn emissions_are_routed_through_the_world() {
        let mut engine = Engine::new(EchoWorld { heard: 0 });
        engine.add_node(
            NodeConfig {
                dco_calibration: false,
                ..NodeConfig::new(NodeId(1))
            },
            Box::new(SendOnce),
        );
        engine.run_until(SimTime::from_secs(1));
        assert_eq!(engine.world().heard, 1, "the frame reached the world");
    }
}
