//! The shared event-driven simulation engine.
//!
//! Single-node runs ([`crate::sim::Simulator`]) and multi-node runs
//! (`net-sim`'s `NetSim`) used to each own a private time-advancement loop;
//! every new scenario had to be written twice or pick a side.  [`Engine`] is
//! the one loop both are now thin configurations of: it owns the nodes,
//! advances global time by always running the node with the earliest pending
//! event, and routes every emitted frame through the pluggable
//! [`World`] — the medium decides who hears what, the engine only schedules.
//!
//! The engine makes no assumption about node count: one node in a
//! [`crate::world::QuietWorld`] is the paper's single-mote bench, N nodes in
//! `net-sim`'s `Medium` are the multi-hop experiments, and future worlds
//! (fleets, batched runs, alternative mediums) plug in the same way.
//!
//! # Scheduling
//!
//! The per-step "which node runs next?" pick is a lazy-invalidation binary
//! heap keyed on each node's `next_event_time`: whenever a node's queue may
//! have changed (it processed an event, it received a frame, it booted) a
//! fresh `(time, index)` entry is pushed, and stale entries are discarded on
//! pop by checking them against the node's *current* next-event time.  The
//! pick is O(log N) amortized instead of the former O(N) scan per event,
//! which is what makes 1000-node fleets feasible.  Ties are broken by node
//! index, matching the old linear scan's `(time, index)` minimum exactly.

use crate::app::Application;
use crate::config::NodeConfig;
use crate::kernel::{Kernel, NodeRunOutput};
use crate::node::Node;
use crate::world::World;
use hw_model::{SimDuration, SimTime};
use quanto_core::NodeId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

/// A heap entry: "node `idx` believed to have its next event at `time`".
///
/// Entries are hints, not obligations — a node is only run if its current
/// next-event time still matches, and [`Engine::step_node`] always processes
/// the node's *actual* earliest event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    time: SimTime,
    idx: usize,
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest time first,
        // breaking ties by the smallest node index (the linear scan's
        // `(time, index).min()` order).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.idx.cmp(&self.idx))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Scheduler-effort counters: how much work the event loop did.
///
/// Plain unconditional increments on the stepping path — cheap enough to
/// always collect, and reading them never perturbs the simulation (they are
/// not folded into any digest).  `quanto-fleet` copies them into the
/// observability registry after each run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events actually processed (one per successful node step).
    pub events_dispatched: u64,
    /// Entries pushed onto the scheduling heap.
    pub heap_pushes: u64,
    /// Entries popped off the scheduling heap (valid and stale).
    pub heap_pops: u64,
    /// Popped entries discarded because the node's queue had moved on.
    pub stale_pops: u64,
    /// Pushes skipped because a live entry at the same time already covered
    /// the node (the same-time wakeup dedup of PR 6).
    pub dedup_hits: u64,
}

/// A global-time discrete-event scheduler over a set of nodes in a [`World`].
pub struct Engine<W: World> {
    nodes: Vec<Node>,
    /// `ids[i]` is the id of `nodes[i]`; kept alongside so the emission
    /// fan-out does not rebuild the list on every transmission.
    ids: Vec<NodeId>,
    /// Node id → index in `nodes`, for O(1) packet delivery.
    index: HashMap<NodeId, usize>,
    /// Lazy-invalidation scheduling heap (see the module docs).
    ready: BinaryHeap<Pending>,
    /// `queued[idx]` is the time of a heap entry known to still be in the
    /// heap for node `idx` (the most recently pushed one).  [`Engine::refresh`]
    /// skips the push when the node's next-event time already has a live
    /// entry — without this, every frame delivered to a long-idle node (LPL
    /// receivers hear thousands in a big fleet) would pile another copy of
    /// the same far-future entry onto the heap.
    queued: Vec<Option<SimTime>>,
    /// Recycled log-buffer allocations handed out to nodes as they are added
    /// (filled by [`Engine::new_in`] from a scratch pool).
    spare_log_buffers: Vec<Vec<quanto_core::LogEntry>>,
    stats: EngineStats,
    world: W,
}

/// The reusable allocations of a torn-down [`Engine`], harvested by
/// [`Engine::reset_into`] and re-seeded into the next run by
/// [`Engine::new_in`] — node storage, the scheduling heap, the id maps, and
/// every node's RAM log buffer.  The type is opaque: scratch holds capacity,
/// never state, so reusing it cannot change what any run computes.
#[derive(Default)]
pub struct EngineScratch {
    nodes: Vec<Node>,
    ids: Vec<NodeId>,
    index: HashMap<NodeId, usize>,
    ready: BinaryHeap<Pending>,
    queued: Vec<Option<SimTime>>,
    log_buffers: Vec<Vec<quanto_core::LogEntry>>,
}

impl EngineScratch {
    /// An empty scratch pool (the first run through it allocates normally).
    pub fn new() -> Self {
        EngineScratch::default()
    }

    /// How many recycled log-buffer allocations the pool currently holds.
    pub fn log_buffers(&self) -> usize {
        self.log_buffers.len()
    }
}

impl std::fmt::Debug for EngineScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineScratch")
            .field("node_capacity", &self.nodes.capacity())
            .field("log_buffers", &self.log_buffers.len())
            .finish()
    }
}

impl<W: World> std::fmt::Debug for Engine<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

impl<W: World> Engine<W> {
    /// Creates an engine with no nodes in the given world.
    pub fn new(world: W) -> Self {
        Engine {
            nodes: Vec::new(),
            ids: Vec::new(),
            index: HashMap::new(),
            ready: BinaryHeap::new(),
            queued: Vec::new(),
            spare_log_buffers: Vec::new(),
            stats: EngineStats::default(),
            world,
        }
    }

    /// Creates an engine with no nodes in the given world, reusing the
    /// allocations a previous engine left in `scratch` (see
    /// [`Engine::reset_into`]).  Behaviour is identical to [`Engine::new`];
    /// only where the containers' memory comes from differs.
    pub fn new_in(world: W, scratch: &mut EngineScratch) -> Self {
        debug_assert!(scratch.nodes.is_empty() && scratch.ready.is_empty());
        Engine {
            nodes: std::mem::take(&mut scratch.nodes),
            ids: std::mem::take(&mut scratch.ids),
            index: std::mem::take(&mut scratch.index),
            ready: std::mem::take(&mut scratch.ready),
            queued: std::mem::take(&mut scratch.queued),
            spare_log_buffers: std::mem::take(&mut scratch.log_buffers),
            stats: EngineStats::default(),
            world,
        }
    }

    /// Tears the engine down, returning its reusable allocations to
    /// `scratch`: container capacity, plus each node's RAM log buffer (the
    /// largest per-node allocation).  The world is dropped.
    pub fn reset_into(mut self, scratch: &mut EngineScratch) {
        for node in &mut self.nodes {
            let buf = node.kernel_mut().recycle_log_buffer();
            if buf.capacity() > 0 {
                self.spare_log_buffers.push(buf);
            }
        }
        self.nodes.clear();
        self.ids.clear();
        self.index.clear();
        self.ready.clear();
        self.queued.clear();
        scratch.nodes = self.nodes;
        scratch.ids = self.ids;
        scratch.index = self.index;
        scratch.ready = self.ready;
        scratch.queued = self.queued;
        scratch.log_buffers = self.spare_log_buffers;
    }

    /// Adds a node running `app` under `config`.  Returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same id is already registered.
    pub fn add_node(&mut self, config: NodeConfig, app: Box<dyn Application>) -> NodeId {
        let id = config.node_id;
        let idx = self.nodes.len();
        assert!(
            self.index.insert(id, idx).is_none(),
            "duplicate node id {id}"
        );
        let kernel = Kernel::new_with_recycled(config, self.spare_log_buffers.pop());
        self.nodes.push(Node::new(kernel, app));
        self.ids.push(id);
        self.queued.push(None);
        self.refresh(idx);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read-only access to every node.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Read-only access to one node.
    pub fn node(&self, id: NodeId) -> Option<&Node> {
        self.index.get(&id).map(|&idx| &self.nodes[idx])
    }

    /// Attaches a streaming log-chunk consumer to one node (see
    /// [`crate::kernel::Kernel::set_log_sink`]).  Returns `false` if no node
    /// has that id.
    pub fn set_node_log_sink(&mut self, id: NodeId, sink: Box<dyn quanto_core::LogSink>) -> bool {
        match self.index.get(&id) {
            Some(&idx) => {
                self.nodes[idx].kernel_mut().set_log_sink(sink);
                true
            }
            None => false,
        }
    }

    /// Attaches or detaches every node's ground-truth oscilloscope probe
    /// (see [`crate::kernel::Kernel::set_trace_recording`]).
    pub fn set_trace_recording(&mut self, enabled: bool) {
        for node in &mut self.nodes {
            node.kernel_mut().set_trace_recording(enabled);
        }
    }

    /// Read-only access to the world.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Mutable access to the world (e.g. to reconfigure interference).
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Boots every node (applications' `boot` handlers run at time zero).
    pub fn boot_all(&mut self) {
        for idx in 0..self.nodes.len() {
            self.nodes[idx].boot();
            self.refresh(idx);
        }
    }

    /// The time of the earliest pending event across all nodes, if any.
    ///
    /// This is an observational O(N) scan; the run loop itself uses the
    /// scheduling heap.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.nodes.iter().filter_map(Node::next_event_time).min()
    }

    /// Pushes a fresh heap entry for the node at `idx`, if it has events —
    /// unless an entry at that exact time is already known to be in the
    /// heap, in which case the existing entry serves and the push is
    /// skipped (`queued[idx] == Some(t)` always implies a live `(t, idx)`
    /// entry, so skipping can never starve the node).
    fn refresh(&mut self, idx: usize) {
        if let Some(time) = self.nodes[idx].next_event_time() {
            if self.queued[idx] == Some(time) {
                self.stats.dedup_hits += 1;
                return;
            }
            self.ready.push(Pending { time, idx });
            self.stats.heap_pushes += 1;
            self.queued[idx] = Some(time);
        }
    }

    /// Pops the earliest valid `(time, node index)` pair, discarding stale
    /// heap entries, or `None` when no node has pending events.
    fn pop_earliest(&mut self) -> Option<(SimTime, usize)> {
        while let Some(Pending { time, idx }) = self.ready.pop() {
            self.stats.heap_pops += 1;
            // This entry is leaving the heap: if it is the one the dedup
            // marker points at, clear the marker so a future refresh at the
            // same time pushes a fresh entry instead of assuming this one
            // is still there.
            if self.queued[idx] == Some(time) {
                self.queued[idx] = None;
            }
            if self.nodes[idx].next_event_time() == Some(time) {
                return Some((time, idx));
            }
            // Stale: the node's queue moved on since this entry was pushed
            // (every queue mutation pushes a fresh entry, so the real next
            // event is represented elsewhere in the heap).
            self.stats.stale_pops += 1;
        }
        None
    }

    /// Processes the single earliest pending event in the whole simulation
    /// and fans its emissions out through the world.  Returns the event's
    /// effective time, or `None` when no node has pending events.
    pub fn step(&mut self) -> Option<SimTime> {
        self.step_traced().map(|(time, _)| time)
    }

    /// Like [`Engine::step`], but also reports which node ran — useful for
    /// schedulers, tracing and the scheduler-equivalence tests.
    pub fn step_traced(&mut self) -> Option<(SimTime, NodeId)> {
        let (_, idx) = self.pop_earliest()?;
        let time = self.step_node(idx)?;
        Some((time, self.ids[idx]))
    }

    /// Processes the next event of the node at `idx` and fans its emissions
    /// out through the world.
    fn step_node(&mut self, idx: usize) -> Option<SimTime> {
        let (time, emissions) = self.nodes[idx].process_next(&mut self.world)?;
        self.stats.events_dispatched += 1;
        for emission in emissions {
            for (to, sfd) in self.world.transmit(&emission, &self.ids) {
                if let Some(&to_idx) = self.index.get(&to) {
                    self.nodes[to_idx].deliver_packet(emission.packet.clone(), sfd);
                    self.refresh(to_idx);
                }
            }
        }
        self.refresh(idx);
        Some(time)
    }

    /// Advances the whole simulation until `until` (inclusive).
    pub fn run_until(&mut self, until: SimTime) {
        self.boot_all();
        while let Some((time, idx)) = self.pop_earliest() {
            if time > until {
                // Not consumed: put the (still valid) entry back for a later
                // `run_until` with a larger bound.
                self.ready.push(Pending { time, idx });
                self.stats.heap_pushes += 1;
                self.queued[idx] = Some(time);
                break;
            }
            self.step_node(idx);
        }
    }

    /// Runs for `duration` from time zero and collects every node's outputs.
    pub fn run_for(&mut self, duration: SimDuration) -> Vec<(NodeId, NodeRunOutput)> {
        let end = SimTime::ZERO + duration;
        self.run_until(end);
        self.finish(end)
    }

    /// Collects every node's outputs at `end` without running further.
    pub fn finish(&mut self, end: SimTime) -> Vec<(NodeId, NodeRunOutput)> {
        self.nodes
            .iter_mut()
            .map(|n| (n.id(), n.finish(end)))
            .collect()
    }

    /// Scheduler-effort counters accumulated since construction.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Test-only reference scheduler: picks the next node by the original
    /// linear scan (`(time, index).min()`) instead of the heap.  The
    /// equivalence tests step one engine with each strategy and require
    /// identical `(time, node)` sequences.
    #[cfg(test)]
    fn step_linear_traced(&mut self) -> Option<(SimTime, NodeId)> {
        let (_, idx) = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.next_event_time().map(|t| (t, i)))
            .min()?;
        let time = self.step_node(idx)?;
        Some((time, self.ids[idx]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::NullApp;
    use crate::event::TimerId;
    use crate::kernel::OsHandle;
    use crate::world::{Emission, QuietWorld};

    #[test]
    fn empty_engine_has_no_events() {
        let mut engine: Engine<QuietWorld> = Engine::new(QuietWorld);
        assert_eq!(engine.node_count(), 0);
        assert_eq!(engine.next_event_time(), None);
        assert_eq!(engine.step(), None);
        assert!(engine.run_for(SimDuration::from_secs(1)).is_empty());
    }

    #[test]
    fn steps_interleave_nodes_in_global_time_order() {
        let mut engine = Engine::new(QuietWorld);
        engine.add_node(NodeConfig::new(NodeId(1)), Box::new(NullApp));
        engine.add_node(NodeConfig::new(NodeId(2)), Box::new(NullApp));
        engine.boot_all();
        let mut last = SimTime::ZERO;
        for _ in 0..32 {
            let Some(t) = engine.step() else { break };
            assert!(t >= last, "engine went backwards in time: {t:?} < {last:?}");
            last = t;
        }
        assert!(last > SimTime::ZERO, "the DCO calibration ticks both nodes");
    }

    #[test]
    #[should_panic(expected = "duplicate node id")]
    fn duplicate_node_ids_are_rejected() {
        let mut engine = Engine::new(QuietWorld);
        engine.add_node(NodeConfig::new(NodeId(3)), Box::new(NullApp));
        engine.add_node(NodeConfig::new(NodeId(3)), Box::new(NullApp));
    }

    #[test]
    fn nodes_are_found_by_id_after_many_insertions() {
        let mut engine = Engine::new(QuietWorld);
        for id in (1..=32u32).rev() {
            engine.add_node(NodeConfig::new(NodeId(id)), Box::new(NullApp));
        }
        for id in 1..=32u32 {
            assert_eq!(engine.node(NodeId(id)).map(Node::id), Some(NodeId(id)));
        }
        assert!(engine.node(NodeId(33)).is_none());
    }

    /// A world that records transmissions and echoes every frame back to the
    /// transmitter — exercises the emission fan-out path without `net-sim`.
    struct EchoWorld {
        heard: usize,
    }

    impl World for EchoWorld {
        fn channel_busy(&mut self, _: NodeId, _: u8, _: SimTime) -> bool {
            false
        }

        fn transmit(&mut self, emission: &Emission, nodes: &[NodeId]) -> Vec<(NodeId, SimTime)> {
            self.heard += 1;
            // Loop the frame back to every *other* node (there are none in
            // this test, proving default routing is entirely world-defined).
            nodes
                .iter()
                .copied()
                .filter(|n| *n != emission.from)
                .map(|n| (n, emission.end))
                .collect()
        }
    }

    /// An app that transmits one frame shortly after boot.
    struct SendOnce;

    impl Application for SendOnce {
        fn boot(&mut self, os: &mut crate::kernel::OsHandle) {
            os.radio_on();
            os.start_timer(SimDuration::from_millis(50), false);
        }

        fn timer_fired(&mut self, _t: crate::event::TimerId, os: &mut crate::kernel::OsHandle) {
            os.send(crate::packet::AM_BROADCAST, 1, vec![1, 2, 3]);
        }
    }

    #[test]
    fn emissions_are_routed_through_the_world() {
        let mut engine = Engine::new(EchoWorld { heard: 0 });
        engine.add_node(
            NodeConfig {
                dco_calibration: false,
                ..NodeConfig::new(NodeId(1))
            },
            Box::new(SendOnce),
        );
        engine.run_until(SimTime::from_secs(1));
        assert_eq!(engine.world().heard, 1, "the frame reached the world");
    }

    #[test]
    fn run_until_resumes_across_bounds() {
        // The heap entry pushed back when the bound is hit must still be
        // consumed by a later run_until with a larger bound.
        let build = || {
            let mut e = Engine::new(QuietWorld);
            e.add_node(NodeConfig::new(NodeId(1)), Box::new(NullApp));
            e.add_node(NodeConfig::new(NodeId(2)), Box::new(NullApp));
            e
        };
        let mut split = build();
        split.run_until(SimTime::from_millis(400));
        split.run_until(SimTime::from_secs(2));
        let mut whole = build();
        whole.run_until(SimTime::from_secs(2));
        let a = split.finish(SimTime::from_secs(2));
        let b = whole.finish(SimTime::from_secs(2));
        for ((id_a, out_a), (id_b, out_b)) in a.iter().zip(b.iter()) {
            assert_eq!(id_a, id_b);
            assert_eq!(out_a.log, out_b.log, "split run diverged on node {id_a}");
        }
    }

    /// A deterministic SplitMix64 stream for the randomized schedules below.
    struct Mix(u64);

    impl Mix {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound.max(1)
        }
    }

    /// An app that arms a pseudo-random mix of one-shot and periodic timers
    /// at boot and occasionally re-arms from handlers (via the node's own
    /// seeded RNG, so two identically-built engines behave identically).
    struct ChatterApp {
        /// `(period_ms, repeating)` timers armed at boot.  Periods are drawn
        /// from a small set of common divisors so that cross-node ties at
        /// identical times are frequent, exercising the tie-break.
        timers: Vec<(u64, bool)>,
    }

    impl Application for ChatterApp {
        fn boot(&mut self, os: &mut OsHandle) {
            for (ms, repeating) in &self.timers {
                os.start_timer(SimDuration::from_millis(*ms), *repeating);
            }
        }

        fn timer_fired(&mut self, _t: TimerId, os: &mut OsHandle) {
            if os.random(4) == 0 {
                let extra = 1 + os.random(40) as u64;
                os.start_timer(SimDuration::from_millis(extra), false);
            }
        }
    }

    fn random_engine(seed: u64) -> Engine<QuietWorld> {
        let mut mix = Mix(seed);
        let nodes = 2 + mix.below(5) as u32;
        let mut engine = Engine::new(QuietWorld);
        for id in 1..=nodes {
            let mut timers = Vec::new();
            for _ in 0..(1 + mix.below(4)) {
                // Multiples of 5 ms collide across nodes constantly.
                let period = 5 * (1 + mix.below(12));
                timers.push((period, mix.below(2) == 0));
            }
            engine.add_node(
                NodeConfig {
                    dco_calibration: mix.below(2) == 0,
                    ..NodeConfig::new(NodeId(id))
                },
                Box::new(ChatterApp { timers }),
            );
        }
        engine
    }

    /// Property: across randomized schedules, the heap scheduler visits the
    /// exact `(time, node)` sequence of the original linear scan, including
    /// ties broken by node index.
    #[test]
    fn heap_scheduler_matches_linear_scan_semantics() {
        for seed in 0..24u64 {
            let mut heap_engine = random_engine(seed);
            let mut linear_engine = random_engine(seed);
            heap_engine.boot_all();
            linear_engine.boot_all();
            for step in 0..600 {
                let a = heap_engine.step_traced();
                let b = linear_engine.step_linear_traced();
                assert_eq!(
                    a, b,
                    "seed {seed}: schedulers diverged at step {step} (heap {a:?} vs linear {b:?})"
                );
                if a.is_none() {
                    break;
                }
            }
        }
    }

    /// The effort counters account for every heap operation: pops split
    /// into dispatches and stale discards, pushes at least cover the
    /// dispatched events, and the same-time dedup fires for multi-node
    /// runs whose deliveries land on already-scheduled wakeups.
    #[test]
    fn engine_stats_track_scheduler_effort() {
        let mut engine = random_engine(7);
        // `add_node` already refreshed each node once.
        assert_eq!(engine.stats().events_dispatched, 0);
        // Split run: the second `run_until`'s boot pass re-refreshes every
        // node at its unchanged next-event time, which the dedup marker
        // must absorb instead of piling duplicate heap entries.
        engine.run_until(SimTime::from_secs(15));
        engine.run_until(SimTime::from_secs(30));
        let s = engine.stats();
        assert!(s.events_dispatched > 0);
        // Every dispatched event came off the heap; what else came off was
        // stale (the final bounded pop is pushed back, never dispatched).
        assert!(s.heap_pops >= s.events_dispatched + s.stale_pops);
        assert!(s.heap_pushes >= s.events_dispatched);
        assert!(s.dedup_hits > 0, "expected same-time dedup hits: {s:?}");
    }

    /// A recycled engine behaves exactly like a fresh one: same logs, and
    /// the second run's nodes record into the first run's buffer
    /// allocations.
    #[test]
    fn scratch_reuse_is_behaviour_identical_and_recycles_buffers() {
        let run = |scratch: &mut EngineScratch| {
            let mut e = Engine::new_in(QuietWorld, scratch);
            e.add_node(NodeConfig::new(NodeId(1)), Box::new(NullApp));
            e.add_node(NodeConfig::new(NodeId(2)), Box::new(NullApp));
            let out = e.run_for(SimDuration::from_secs(1));
            let logs: Vec<_> = out.into_iter().map(|(id, o)| (id, o.log)).collect();
            e.reset_into(scratch);
            logs
        };
        let mut fresh = Engine::new(QuietWorld);
        fresh.add_node(NodeConfig::new(NodeId(1)), Box::new(NullApp));
        fresh.add_node(NodeConfig::new(NodeId(2)), Box::new(NullApp));
        let expected: Vec<_> = fresh
            .run_for(SimDuration::from_secs(1))
            .into_iter()
            .map(|(id, o)| (id, o.log))
            .collect();

        let mut scratch = EngineScratch::new();
        let first = run(&mut scratch);
        assert_eq!(scratch.log_buffers(), 2, "both nodes' buffers harvested");
        let second = run(&mut scratch);
        assert_eq!(first, expected);
        assert_eq!(second, expected, "reused scratch changed behaviour");
    }

    /// The heap never starves a node whose next event moved *earlier* after
    /// a delivery: a frame delivered mid-run must be seen before later
    /// timers.  (EchoWorld loops frames back to the other node.)
    #[test]
    fn delivery_reschedules_the_receiver() {
        let mut engine = Engine::new(EchoWorld { heard: 0 });
        let cfg = |id: u32| NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(NodeId(id))
        };
        engine.add_node(cfg(1), Box::new(SendOnce));
        engine.add_node(cfg(2), Box::new(NullApp));
        engine.run_until(SimTime::from_secs(1));
        assert_eq!(engine.world().heard, 1);
        // Node 2's radio was off, so the frame was dropped — but its SFD
        // event was scheduled mid-run and must have been consumed (the run
        // ends with an empty queue, not a stranded delivery).
        let stats = engine.node(NodeId(2)).unwrap().kernel().radio_stats();
        assert_eq!(stats.packets_sent, 0);
        assert_eq!(engine.next_event_time(), None);
    }
}
