//! The TinyOS-style task scheduler.
//!
//! TinyOS has a single stack and an event-based execution model; the
//! schedulable unit is a *task*, which runs to completion and cannot preempt
//! other tasks.  Quanto instruments the scheduler to save the CPU's current
//! activity when a task is posted and to restore it just before the task
//! runs, so activities survive arbitrary multiplexing through the task queue.

use crate::event::TaskId;
use quanto_core::ActivityLabel;
use std::collections::VecDeque;

/// A posted task waiting to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostedTask {
    /// The application-defined task id.
    pub id: TaskId,
    /// The CPU activity at post time, restored before the task runs.
    pub saved_activity: ActivityLabel,
    /// CPU cost of the task body, in cycles.
    pub cost_cycles: u32,
}

/// FIFO run-to-completion task queue.
#[derive(Debug, Clone, Default)]
pub struct TaskQueue {
    queue: VecDeque<PostedTask>,
    posted_total: u64,
    ran_total: u64,
}

impl TaskQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        TaskQueue::default()
    }

    /// Posts a task (TinyOS `post t()`), capturing the current CPU activity.
    pub fn post(&mut self, id: TaskId, saved_activity: ActivityLabel, cost_cycles: u32) {
        self.posted_total += 1;
        self.queue.push_back(PostedTask {
            id,
            saved_activity,
            cost_cycles,
        });
    }

    /// Dequeues the next task to run.
    pub fn pop(&mut self) -> Option<PostedTask> {
        let t = self.queue.pop_front();
        if t.is_some() {
            self.ran_total += 1;
        }
        t
    }

    /// Number of tasks currently waiting.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Returns true if no tasks are waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total tasks ever posted.
    pub fn posted_total(&self) -> u64 {
        self.posted_total
    }

    /// Total tasks ever run.
    pub fn ran_total(&self) -> u64 {
        self.ran_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quanto_core::{ActivityId, NodeId};

    fn lbl(id: u8) -> ActivityLabel {
        ActivityLabel::new(NodeId(1), ActivityId(id))
    }

    #[test]
    fn tasks_run_in_post_order_with_saved_activity() {
        let mut q = TaskQueue::new();
        q.post(TaskId(1), lbl(1), 100);
        q.post(TaskId(2), lbl(2), 200);
        assert_eq!(q.pending(), 2);
        let a = q.pop().unwrap();
        assert_eq!(a.id, TaskId(1));
        assert_eq!(a.saved_activity, lbl(1));
        assert_eq!(a.cost_cycles, 100);
        let b = q.pop().unwrap();
        assert_eq!(b.id, TaskId(2));
        assert!(q.pop().is_none());
        assert_eq!(q.posted_total(), 2);
        assert_eq!(q.ran_total(), 2);
        assert!(q.is_empty());
    }
}
