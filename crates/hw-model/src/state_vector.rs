//! The set of currently-active power states across all sinks.

use crate::catalog::{Catalog, SinkId};
use crate::sink::StateIndex;
use crate::units::Current;
use std::fmt;

/// The active power state of every sink in a catalog at one instant.
///
/// A `StateVector` is the simulation-side ground truth that the paper's
/// instrumented drivers shadow: at any given time, the aggregate power draw
/// of the platform is determined by this vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateVector {
    states: Vec<StateIndex>,
}

impl StateVector {
    /// Creates a vector with every sink in its default (boot) state.
    pub fn boot(catalog: &Catalog) -> Self {
        StateVector {
            states: catalog.sinks().map(|(_, s)| s.default_state).collect(),
        }
    }

    /// Creates a vector with every sink in its baseline state.
    pub fn baseline(catalog: &Catalog) -> Self {
        StateVector {
            states: catalog.sinks().map(|(_, s)| s.baseline_state).collect(),
        }
    }

    /// Number of sinks tracked by this vector.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Returns true if the vector tracks no sinks.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Returns the state of a sink.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range.
    pub fn state(&self, sink: SinkId) -> StateIndex {
        self.states[sink.as_usize()]
    }

    /// Sets the state of a sink, returning the previous state.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range.
    pub fn set_state(&mut self, sink: SinkId, state: StateIndex) -> StateIndex {
        std::mem::replace(&mut self.states[sink.as_usize()], state)
    }

    /// Iterates over `(SinkId, StateIndex)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SinkId, StateIndex)> + '_ {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (SinkId(i as u16), *s))
    }

    /// A compact, hashable key identifying this exact combination of states.
    ///
    /// Intervals with equal keys can be pooled before the regression, which is
    /// exactly the grouping step of Section 2.5.
    pub fn key(&self) -> StateVectorKey {
        StateVectorKey(self.states.iter().map(|s| s.as_u8()).collect())
    }

    /// Sum of nominal currents across all sinks in their current states.
    pub fn nominal_current(&self, catalog: &Catalog) -> Current {
        assert_eq!(
            self.len(),
            catalog.sink_count(),
            "state vector does not match catalog"
        );
        self.iter()
            .map(|(sink, state)| catalog.nominal_current(sink, state))
            .sum()
    }

    /// The regression design row for this vector: a dense 0/1 vector with one
    /// entry per catalog column plus NO constant term (the caller appends the
    /// constant).  Entry `c` is 1 when the (sink, state) pair of column `c` is
    /// active in this vector.
    pub fn design_row(&self, catalog: &Catalog) -> Vec<f64> {
        assert_eq!(
            self.len(),
            catalog.sink_count(),
            "state vector does not match catalog"
        );
        let mut row = vec![0.0; catalog.column_count()];
        for (sink, state) in self.iter() {
            if let Some(col) = catalog.column(sink, state) {
                row[col] = 1.0;
            }
        }
        row
    }

    /// Lists the active non-baseline column indices.
    pub fn active_columns(&self, catalog: &Catalog) -> Vec<usize> {
        self.iter()
            .filter_map(|(sink, state)| catalog.column(sink, state))
            .collect()
    }
}

/// A hashable key for a [`StateVector`]; see [`StateVector::key`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateVectorKey(Vec<u8>);

impl StateVectorKey {
    /// Reconstructs the per-sink state indices from the key.
    pub fn states(&self) -> Vec<StateIndex> {
        self.0.iter().map(|v| StateIndex(*v)).collect()
    }

    /// Rebuilds a full [`StateVector`] from the key.
    pub fn to_vector(&self) -> StateVector {
        StateVector {
            states: self.states(),
        }
    }
}

impl fmt::Display for StateVectorKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{blink_catalog, led_state};

    #[test]
    fn boot_and_baseline_vectors() {
        let (cat, cpu, leds) = blink_catalog();
        let boot = StateVector::boot(&cat);
        let base = StateVector::baseline(&cat);
        assert_eq!(boot, base); // In the Blink catalog defaults are baselines.
        assert_eq!(boot.len(), 4);
        assert_eq!(boot.state(cpu), StateIndex(0));
        assert_eq!(boot.state(leds[0]), StateIndex(0));
    }

    #[test]
    fn set_state_returns_previous() {
        let (cat, _cpu, leds) = blink_catalog();
        let mut sv = StateVector::boot(&cat);
        let prev = sv.set_state(leds[1], led_state::ON);
        assert_eq!(prev, led_state::OFF);
        assert_eq!(sv.state(leds[1]), led_state::ON);
    }

    #[test]
    fn nominal_current_sums_active_states() {
        let (cat, cpu, leds) = blink_catalog();
        let mut sv = StateVector::baseline(&cat);
        // Idle CPU only.
        let idle = sv.nominal_current(&cat).as_micro_amps();
        assert!((idle - 2.6).abs() < 1e-9);
        sv.set_state(leds[0], led_state::ON);
        sv.set_state(cpu, StateIndex(1));
        let active = sv.nominal_current(&cat).as_micro_amps();
        assert!((active - (500.0 + 2500.0)).abs() < 1e-9);
    }

    #[test]
    fn design_row_marks_active_columns() {
        let (cat, _cpu, leds) = blink_catalog();
        let mut sv = StateVector::baseline(&cat);
        assert_eq!(sv.design_row(&cat), vec![0.0; cat.column_count()]);
        sv.set_state(leds[2], led_state::ON);
        let row = sv.design_row(&cat);
        assert_eq!(row.iter().filter(|v| **v == 1.0).count(), 1);
        let col = cat.column(leds[2], led_state::ON).unwrap();
        assert_eq!(row[col], 1.0);
        assert_eq!(sv.active_columns(&cat), vec![col]);
    }

    #[test]
    fn key_round_trips() {
        let (cat, _cpu, leds) = blink_catalog();
        let mut sv = StateVector::baseline(&cat);
        sv.set_state(leds[0], led_state::ON);
        let key = sv.key();
        assert_eq!(key.to_vector(), sv);
        assert_eq!(format!("{key}"), "[0,1,0,0]");
    }
}
