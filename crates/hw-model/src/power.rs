//! Ground-truth power and energy for the simulated platform.
//!
//! The [`PowerModel`] answers "what is the platform *really* drawing right
//! now?", which plays the role of the physical electrical reality underneath
//! the iCount meter and the oscilloscope in the paper's experiments.  The
//! [`EnergyAccumulator`] integrates that draw over a sequence of power-state
//! transitions, maintaining both the aggregate energy (what iCount can see)
//! and the per-sink split (which only the simulator knows, and which the
//! regression in the `analysis` crate tries to recover).

use crate::catalog::{Catalog, SinkId};
use crate::noise::NoiseModel;
use crate::sink::StateIndex;
use crate::state_vector::StateVector;
use crate::units::{Current, Energy, Power, SimDuration, SimTime, Voltage};
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Ground-truth electrical model: per-state true currents and supply voltage.
#[derive(Debug, Clone)]
pub struct PowerModel {
    catalog: Arc<Catalog>,
    supply: Voltage,
    noise: NoiseModel,
    /// true_currents[sink][state] — nominal current times the per-state bias.
    true_currents: Vec<Vec<Current>>,
}

impl PowerModel {
    /// Builds a model over `catalog` at the given supply voltage.
    pub fn new(catalog: Arc<Catalog>, supply: Voltage, noise: NoiseModel) -> Self {
        let total_states = catalog.total_state_count();
        let biases = noise.draw_bias_factors(total_states);
        let mut true_currents = Vec::with_capacity(catalog.sink_count());
        let mut k = 0;
        for (_, sink) in catalog.sinks() {
            let mut per_state = Vec::with_capacity(sink.state_count());
            for state in &sink.states {
                per_state.push(state.current * biases[k]);
                k += 1;
            }
            true_currents.push(per_state);
        }
        PowerModel {
            catalog,
            supply,
            noise,
            true_currents,
        }
    }

    /// Builds an ideal (noise-free) model at 3.0 V, the paper's supply.
    pub fn ideal(catalog: Arc<Catalog>) -> Self {
        PowerModel::new(catalog, Voltage::from_volts(3.0), NoiseModel::IDEAL)
    }

    /// The catalog this model is defined over.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// The supply voltage.
    pub fn supply(&self) -> Voltage {
        self.supply
    }

    /// The noise model in effect.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The *true* mean current of one sink in one state (nominal × bias).
    ///
    /// # Panics
    ///
    /// Panics if the sink or state index is out of range.
    pub fn true_state_current(&self, sink: SinkId, state: StateIndex) -> Current {
        self.true_currents[sink.as_usize()][state.as_u8() as usize]
    }

    /// The true aggregate current for a state vector.
    pub fn true_current(&self, sv: &StateVector) -> Current {
        sv.iter()
            .map(|(sink, state)| self.true_state_current(sink, state))
            .sum()
    }

    /// The true aggregate power for a state vector.
    pub fn true_power(&self, sv: &StateVector) -> Power {
        self.true_current(sv) * self.supply
    }

    /// The true contribution of a single sink (in its state from `sv`).
    pub fn true_sink_power(&self, sv: &StateVector, sink: SinkId) -> Power {
        self.true_state_current(sink, sv.state(sink)) * self.supply
    }

    /// Energy consumed if the platform stays in `sv` for `dur`.
    pub fn energy_over(&self, sv: &StateVector, dur: SimDuration) -> Energy {
        self.true_power(sv) * dur
    }

    /// An instantaneous current sample, as an ideal oscilloscope probe would
    /// read it: the true current plus sample noise.
    pub fn sample_current(&self, sv: &StateVector, rng: &mut StdRng) -> Current {
        let true_i = self.true_current(sv).as_micro_amps();
        Current::from_micro_amps(self.noise.perturb_sample(rng, true_i))
    }
}

/// Accumulated ground-truth energy per sink (and total), produced by an
/// [`EnergyAccumulator`].
#[derive(Debug, Clone, Default)]
pub struct EnergyBreakdown {
    /// Total energy across all sinks.
    pub total: Energy,
    /// Energy per sink.
    pub per_sink: HashMap<SinkId, Energy>,
}

impl EnergyBreakdown {
    /// Energy attributed to one sink (zero if it never drew anything).
    pub fn sink(&self, sink: SinkId) -> Energy {
        self.per_sink.get(&sink).copied().unwrap_or(Energy::ZERO)
    }
}

/// Integrates ground-truth energy over a timeline of power-state changes.
///
/// The accumulator is the simulator's "physics": drivers report state changes
/// to it and it charges the battery model accordingly.  The simulated iCount
/// meter is fed from [`EnergyAccumulator::total_energy`].
#[derive(Debug, Clone)]
pub struct EnergyAccumulator {
    model: Arc<PowerModel>,
    state: StateVector,
    now: SimTime,
    total: Energy,
    /// Per-sink attribution, dense-indexed by `SinkId` — `advance` runs on
    /// every instrumentation stamp, so this must not hash.
    per_sink: Vec<Energy>,
}

impl EnergyAccumulator {
    /// Creates an accumulator starting at time zero in the boot state.
    pub fn new(model: Arc<PowerModel>) -> Self {
        let state = StateVector::boot(model.catalog());
        let per_sink = vec![Energy::ZERO; state.len()];
        EnergyAccumulator {
            model,
            state,
            now: SimTime::ZERO,
            total: Energy::ZERO,
            per_sink,
        }
    }

    /// The model driving this accumulator.
    pub fn model(&self) -> &Arc<PowerModel> {
        &self.model
    }

    /// The current (ground-truth) state vector.
    pub fn state(&self) -> &StateVector {
        &self.state
    }

    /// The time up to which energy has been integrated.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total integrated energy so far.
    pub fn total_energy(&self) -> Energy {
        self.total
    }

    /// The current true aggregate power draw.
    pub fn current_power(&self) -> Power {
        self.model.true_power(&self.state)
    }

    /// Advances the integration clock to `to`, charging energy for the
    /// elapsed interval at the current state vector.
    ///
    /// Advancing to a time at or before `now` is a no-op, which lets callers
    /// be sloppy about zero-length intervals.
    pub fn advance(&mut self, to: SimTime) {
        if to <= self.now {
            return;
        }
        let dur = to.duration_since(self.now);
        for (sink, state) in self.state.iter() {
            let e = (self.model.true_state_current(sink, state) * self.model.supply()) * dur;
            if e != Energy::ZERO {
                self.per_sink[sink.as_usize()] += e;
            }
        }
        self.total += self.model.energy_over(&self.state, dur);
        self.now = to;
    }

    /// Records a power-state change of one sink at time `at`.
    ///
    /// Energy for the interval since the previous event is integrated with
    /// the *old* state vector before the new state takes effect, matching how
    /// the real platform draws power up to the instant of the transition.
    ///
    /// Returns the previous state of the sink.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the accumulator's current time; the simulator
    /// must deliver events in order.
    pub fn set_state(&mut self, at: SimTime, sink: SinkId, state: StateIndex) -> StateIndex {
        assert!(
            at >= self.now,
            "state change at {at} is before accumulator time {}",
            self.now
        );
        self.advance(at);
        self.state.set_state(sink, state)
    }

    /// Returns the ground-truth energy breakdown accumulated so far.
    pub fn breakdown(&self) -> EnergyBreakdown {
        let per_sink = self
            .per_sink
            .iter()
            .enumerate()
            .filter(|(_, e)| **e != Energy::ZERO)
            .map(|(i, e)| (SinkId(i as u16), *e))
            .collect();
        EnergyBreakdown {
            total: self.total,
            per_sink,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{blink_catalog, led_state};

    fn blink_model() -> (Arc<PowerModel>, SinkId, [SinkId; 3]) {
        let (cat, cpu, leds) = blink_catalog();
        (Arc::new(PowerModel::ideal(Arc::new(cat))), cpu, leds)
    }

    #[test]
    fn ideal_model_uses_nominal_currents() {
        let (model, cpu, leds) = blink_model();
        assert_eq!(
            model.true_state_current(cpu, StateIndex(1)).as_micro_amps(),
            500.0
        );
        assert_eq!(
            model
                .true_state_current(leds[0], led_state::ON)
                .as_milli_amps(),
            2.5
        );
        let mut sv = StateVector::baseline(model.catalog());
        sv.set_state(leds[0], led_state::ON);
        // 2.5 mA at 3 V = 7.5 mW, plus the 2.6 uA idle CPU.
        let p = model.true_power(&sv).as_milli_watts();
        assert!((p - (7.5 + 0.0078)).abs() < 1e-3, "power was {p}");
    }

    #[test]
    fn biased_model_deviates_but_stays_bounded() {
        let (cat, _cpu, leds) = blink_catalog();
        let cat = Arc::new(cat);
        let model = PowerModel::new(
            cat.clone(),
            Voltage::from_volts(3.0),
            NoiseModel::realistic(11),
        );
        let nominal = cat.nominal_current(leds[0], led_state::ON).as_micro_amps();
        let actual = model
            .true_state_current(leds[0], led_state::ON)
            .as_micro_amps();
        assert!(actual > 0.0);
        assert!((actual - nominal).abs() / nominal <= 0.05 + 1e-12);
    }

    #[test]
    fn accumulator_integrates_energy() {
        let (model, _cpu, leds) = blink_model();
        let mut acc = EnergyAccumulator::new(model.clone());
        // 1 second with everything at baseline: only the idle CPU draws.
        acc.advance(SimTime::from_secs(1));
        let idle_e = acc.total_energy().as_micro_joules();
        // 2.6 uA * 3 V * 1 s = 7.8 uJ.
        assert!((idle_e - 7.8).abs() < 1e-9, "idle energy {idle_e}");

        // Turn the red LED on for exactly 2 s.
        acc.set_state(SimTime::from_secs(1), leds[0], led_state::ON);
        acc.set_state(SimTime::from_secs(3), leds[0], led_state::OFF);
        acc.advance(SimTime::from_secs(4));

        // LED energy: 2.5 mA * 3 V * 2 s = 15 mJ.
        let led_e = acc.breakdown().sink(leds[0]).as_milli_joules();
        assert!((led_e - 15.0).abs() < 1e-6, "led energy {led_e}");
        // Total = LED + 4 s of idle CPU.
        let total = acc.total_energy().as_milli_joules();
        assert!(
            (total - (15.0 + 4.0 * 0.0078)).abs() < 1e-6,
            "total {total}"
        );
    }

    #[test]
    fn set_state_charges_old_state_up_to_transition() {
        let (model, _cpu, leds) = blink_model();
        let mut acc = EnergyAccumulator::new(model);
        acc.set_state(SimTime::from_millis(0), leds[2], led_state::ON);
        // At 500 ms the LED goes off; the first 500 ms must be charged at the
        // ON current even though the change event is what triggers advancing.
        acc.set_state(SimTime::from_millis(500), leds[2], led_state::OFF);
        acc.advance(SimTime::from_secs(1));
        let led_e = acc.breakdown().sink(leds[2]).as_micro_joules();
        // 0.83 mA * 3 V * 0.5 s = 1245 uJ.
        assert!((led_e - 1245.0).abs() < 1e-6, "led energy {led_e}");
    }

    #[test]
    #[should_panic(expected = "before accumulator time")]
    fn out_of_order_events_rejected() {
        let (model, _cpu, leds) = blink_model();
        let mut acc = EnergyAccumulator::new(model);
        acc.set_state(SimTime::from_secs(2), leds[0], led_state::ON);
        acc.set_state(SimTime::from_secs(1), leds[0], led_state::OFF);
    }

    #[test]
    fn advance_backwards_is_noop() {
        let (model, _cpu, _leds) = blink_model();
        let mut acc = EnergyAccumulator::new(model);
        acc.advance(SimTime::from_secs(1));
        let e = acc.total_energy();
        acc.advance(SimTime::from_millis(500));
        assert_eq!(acc.total_energy(), e);
        assert_eq!(acc.now(), SimTime::from_secs(1));
    }

    #[test]
    fn breakdown_total_matches_sum_of_sinks() {
        let (model, cpu, leds) = blink_model();
        let mut acc = EnergyAccumulator::new(model);
        acc.set_state(SimTime::from_millis(10), leds[0], led_state::ON);
        acc.set_state(SimTime::from_millis(20), cpu, StateIndex(1));
        acc.set_state(SimTime::from_millis(30), leds[1], led_state::ON);
        acc.set_state(SimTime::from_millis(40), cpu, StateIndex(0));
        acc.advance(SimTime::from_millis(100));
        let bd = acc.breakdown();
        let sum: f64 = bd.per_sink.values().map(|e| e.as_micro_joules()).sum();
        assert!((sum - bd.total.as_micro_joules()).abs() < 1e-9);
    }
}
