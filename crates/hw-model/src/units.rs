//! Physical and simulation units.
//!
//! All quantities are newtypes over primitive numbers so that the rest of the
//! workspace cannot accidentally mix, say, microjoules with microseconds.
//! The base units are chosen to match the granularity of the paper's
//! measurements: time in microseconds, current in microamps, energy in
//! microjoules, power in microwatts, and voltage in volts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Absolute simulation time, in microseconds since node boot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (node boot).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from a count of microseconds since boot.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from a count of milliseconds since boot.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from a count of seconds since boot.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Returns the time as microseconds since boot.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as (fractional) milliseconds since boot.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the time as (fractional) seconds since boot.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; callers are expected to only
    /// ask for forward-looking durations.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "duration_since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference; returns zero if `earlier` is after `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two times.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Converts a CPU cycle count at a given clock frequency (Hz) into a
    /// duration, rounding up to the next whole microsecond.
    pub fn from_cycles(cycles: u64, clock_hz: u64) -> Self {
        assert!(clock_hz > 0, "clock frequency must be positive");
        let us = (cycles * 1_000_000).div_ceil(clock_hz);
        SimDuration(us)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ms", self.as_millis_f64())
    }
}

macro_rules! float_unit {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero value.
            pub const ZERO: $name = $name(0.0);

            /// Returns the raw value in the base unit.
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Returns the absolute value.
            pub fn abs(self) -> $name {
                $name(self.0.abs())
            }

            /// Returns the larger of two values.
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }

            /// Returns the smaller of two values.
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Returns true if the value is finite (not NaN or infinite).
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl Add for $name {
            type Output = $name;
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = $name;
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> Self {
                iter.fold($name::ZERO, |a, b| a + b)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.4} {}", self.0, $unit)
            }
        }
    };
}

float_unit!(
    /// Electrical current, stored in microamps.
    Current,
    "uA"
);
float_unit!(
    /// Electrical power, stored in microwatts.
    Power,
    "uW"
);
float_unit!(
    /// Energy, stored in microjoules.
    Energy,
    "uJ"
);
float_unit!(
    /// Voltage, stored in volts.
    Voltage,
    "V"
);

impl Current {
    /// Creates a current from microamps.
    pub const fn from_micro_amps(ua: f64) -> Self {
        Current(ua)
    }

    /// Creates a current from milliamps.
    pub const fn from_milli_amps(ma: f64) -> Self {
        Current(ma * 1_000.0)
    }

    /// Returns the current in microamps.
    pub const fn as_micro_amps(self) -> f64 {
        self.0
    }

    /// Returns the current in milliamps.
    pub fn as_milli_amps(self) -> f64 {
        self.0 / 1_000.0
    }
}

impl Power {
    /// Creates a power from microwatts.
    pub const fn from_micro_watts(uw: f64) -> Self {
        Power(uw)
    }

    /// Creates a power from milliwatts.
    pub const fn from_milli_watts(mw: f64) -> Self {
        Power(mw * 1_000.0)
    }

    /// Returns the power in microwatts.
    pub const fn as_micro_watts(self) -> f64 {
        self.0
    }

    /// Returns the power in milliwatts.
    pub fn as_milli_watts(self) -> f64 {
        self.0 / 1_000.0
    }
}

impl Energy {
    /// Creates an energy from microjoules.
    pub const fn from_micro_joules(uj: f64) -> Self {
        Energy(uj)
    }

    /// Creates an energy from millijoules.
    pub const fn from_milli_joules(mj: f64) -> Self {
        Energy(mj * 1_000.0)
    }

    /// Returns the energy in microjoules.
    pub const fn as_micro_joules(self) -> f64 {
        self.0
    }

    /// Returns the energy in millijoules.
    pub fn as_milli_joules(self) -> f64 {
        self.0 / 1_000.0
    }
}

impl Voltage {
    /// Creates a voltage from volts.
    pub const fn from_volts(v: f64) -> Self {
        Voltage(v)
    }

    /// Returns the voltage in volts.
    pub const fn as_volts(self) -> f64 {
        self.0
    }
}

impl Mul<Voltage> for Current {
    type Output = Power;
    /// Power (µW) = current (µA) × voltage (V).
    fn mul(self, rhs: Voltage) -> Power {
        Power(self.0 * rhs.0)
    }
}

impl Mul<Current> for Voltage {
    type Output = Power;
    fn mul(self, rhs: Current) -> Power {
        rhs * self
    }
}

impl Mul<SimDuration> for Power {
    type Output = Energy;
    /// Energy (µJ) = power (µW) × time (s).
    fn mul(self, rhs: SimDuration) -> Energy {
        Energy(self.0 * rhs.as_secs_f64())
    }
}

impl Mul<Power> for SimDuration {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        rhs * self
    }
}

impl Div<SimDuration> for Energy {
    type Output = Power;
    /// Average power (µW) over an interval = energy (µJ) / time (s).
    fn div(self, rhs: SimDuration) -> Power {
        Power(self.0 / rhs.as_secs_f64())
    }
}

impl Div<Voltage> for Power {
    type Output = Current;
    /// Current (µA) = power (µW) / voltage (V).
    fn div(self, rhs: Voltage) -> Current {
        Current(self.0 / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_millis(8);
        assert_eq!(t.as_micros(), 8_000);
        let t2 = t + SimDuration::from_micros(500);
        assert_eq!(t2.as_micros(), 8_500);
        assert_eq!(t2.duration_since(t).as_micros(), 500);
        assert_eq!(t2.saturating_duration_since(t2).as_micros(), 0);
        assert_eq!(t.saturating_duration_since(t2), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_when_reversed() {
        let t = SimTime::from_millis(1);
        let _ = t.duration_since(SimTime::from_millis(2));
    }

    #[test]
    fn cycles_round_up() {
        // 102 cycles at 1 MHz is 102 us exactly.
        assert_eq!(SimDuration::from_cycles(102, 1_000_000).as_micros(), 102);
        // 3 cycles at 2 MHz is 1.5 us, rounded up to 2.
        assert_eq!(SimDuration::from_cycles(3, 2_000_000).as_micros(), 2);
        // Zero cycles take zero time.
        assert_eq!(SimDuration::from_cycles(0, 8_000_000).as_micros(), 0);
    }

    #[test]
    fn power_energy_relations() {
        let i = Current::from_milli_amps(10.0);
        let v = Voltage::from_volts(3.0);
        let p = i * v;
        assert!((p.as_milli_watts() - 30.0).abs() < 1e-9);

        let e = p * SimDuration::from_secs(2);
        assert!((e.as_milli_joules() - 60.0).abs() < 1e-9);

        let p_back = e / SimDuration::from_secs(2);
        assert!((p_back.as_milli_watts() - 30.0).abs() < 1e-9);

        let i_back = p / v;
        assert!((i_back.as_milli_amps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unit_display_is_stable() {
        assert_eq!(
            format!("{}", Current::from_micro_amps(500.0)),
            "500.0000 uA"
        );
        assert_eq!(format!("{}", SimTime::from_millis(3)), "3.000 ms");
    }

    #[test]
    fn float_unit_ordering_and_sum() {
        let a = Energy::from_micro_joules(1.0);
        let b = Energy::from_micro_joules(2.0);
        assert!(a < b);
        let total: Energy = [a, b].into_iter().sum();
        assert!((total.as_micro_joules() - 3.0).abs() < 1e-12);
        assert_eq!((b - a).as_micro_joules(), 1.0);
        assert_eq!((-a).as_micro_joules(), -1.0);
        assert_eq!(b.max(a), b);
        assert_eq!(b.min(a), a);
    }
}
