//! Hardware platform model for the Quanto reproduction.
//!
//! The original Quanto system ran on the HydroWatch platform: a TI MSP430F1611
//! microcontroller, a CC2420 802.15.4 radio, an Atmel AT45DB161D NOR flash and
//! three LEDs, all fed through an iCount-augmented switching regulator.  This
//! crate models that platform as *data*:
//!
//! * [`sink::EnergySink`] — a functional unit that draws current (what the
//!   paper calls an *energy sink*),
//! * [`sink::PowerStateDef`] — one operating mode of a sink with a nominal
//!   current draw (a *power state*),
//! * [`catalog::Catalog`] — the full platform inventory (the paper's Table 1),
//! * [`state_vector::StateVector`] — the set of currently-active power states,
//! * [`power::PowerModel`] — the ground-truth aggregate power draw for a state
//!   vector, including a configurable deviation of the *true* per-state
//!   currents from their nominal (datasheet) values, and
//! * [`power::EnergyAccumulator`] — integration of ground-truth energy over a
//!   sequence of state-vector transitions.
//!
//! Everything downstream (the simulated iCount meter, the Quanto tracker, the
//! offline regression) observes the platform only through these types, which
//! mirrors how the real system observes hardware only through power-state
//! notifications and an aggregate energy counter.

pub mod catalog;
pub mod noise;
pub mod power;
pub mod sink;
pub mod state_vector;
pub mod units;

pub use catalog::{Catalog, CatalogBuilder, SinkId};
pub use noise::NoiseModel;
pub use power::{EnergyAccumulator, PowerModel};
pub use sink::{ComponentClass, EnergySink, PowerStateDef, StateIndex};
pub use state_vector::StateVector;
pub use units::{Current, Energy, Power, SimDuration, SimTime, Voltage};
