//! Energy sinks and power states.
//!
//! The paper's terminology (Section 2): each functional unit in the system is
//! an *energy sink*, and each operating mode of a sink with a distinct power
//! draw is a *power state*.  At any instant the aggregate platform draw is the
//! sum of the draws of every sink's currently-active power state.

use crate::units::Current;
use std::fmt;

/// Coarse classification of an energy sink, used for grouping in reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ComponentClass {
    /// A functional unit inside the microcontroller (CPU, ADC, DAC, ...).
    Mcu,
    /// A functional unit inside the radio (control path, RX path, TX path, ...).
    Radio,
    /// External (or internal) flash memory.
    Flash,
    /// An LED.
    Led,
    /// An external sensor chip.
    Sensor,
    /// Anything else.
    Other,
}

impl fmt::Display for ComponentClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ComponentClass::Mcu => "MCU",
            ComponentClass::Radio => "Radio",
            ComponentClass::Flash => "Flash",
            ComponentClass::Led => "LED",
            ComponentClass::Sensor => "Sensor",
            ComponentClass::Other => "Other",
        };
        f.write_str(s)
    }
}

/// Index of a power state within one energy sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct StateIndex(pub u8);

impl StateIndex {
    /// Returns the raw index.
    pub const fn as_u8(self) -> u8 {
        self.0
    }
}

impl fmt::Display for StateIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One operating mode of an energy sink, with its nominal current draw.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerStateDef {
    /// Human-readable state name, e.g. `"ACTIVE"` or `"TX(+0dBm)"`.
    pub name: String,
    /// Nominal (datasheet) current draw in this state.
    pub current: Current,
}

impl PowerStateDef {
    /// Creates a new power state definition.
    pub fn new(name: impl Into<String>, current: Current) -> Self {
        PowerStateDef {
            name: name.into(),
            current,
        }
    }
}

/// A functional unit that draws current: the paper's *energy sink*.
#[derive(Debug, Clone)]
pub struct EnergySink {
    /// Human-readable sink name, e.g. `"mcu.cpu"` or `"radio.tx"`.
    pub name: String,
    /// Which hardware component this sink belongs to.
    pub class: ComponentClass,
    /// The sink's power states.  Every sink has at least one state.
    pub states: Vec<PowerStateDef>,
    /// The state the sink boots into.
    pub default_state: StateIndex,
    /// The state treated as the sink's baseline (usually "off" or the lowest
    /// draw).  Baseline states are not given a column in the regression
    /// design matrix; their draw is absorbed by the constant term, exactly as
    /// the paper absorbs quiescent draw into its constant.
    pub baseline_state: StateIndex,
}

impl EnergySink {
    /// Creates a sink whose first state is both its default and its baseline.
    pub fn new(name: impl Into<String>, class: ComponentClass, states: Vec<PowerStateDef>) -> Self {
        assert!(
            !states.is_empty(),
            "an energy sink needs at least one state"
        );
        EnergySink {
            name: name.into(),
            class,
            states,
            default_state: StateIndex(0),
            baseline_state: StateIndex(0),
        }
    }

    /// Sets the state the sink boots into.
    pub fn with_default(mut self, idx: StateIndex) -> Self {
        assert!(
            (idx.0 as usize) < self.states.len(),
            "default state {} out of range for sink {}",
            idx,
            self.name
        );
        self.default_state = idx;
        self
    }

    /// Sets the baseline (regression-constant-absorbed) state.
    pub fn with_baseline(mut self, idx: StateIndex) -> Self {
        assert!(
            (idx.0 as usize) < self.states.len(),
            "baseline state {} out of range for sink {}",
            idx,
            self.name
        );
        self.baseline_state = idx;
        self
    }

    /// Number of states this sink has.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Looks up a state by name, if it exists.
    pub fn state_by_name(&self, name: &str) -> Option<StateIndex> {
        self.states
            .iter()
            .position(|s| s.name == name)
            .map(|i| StateIndex(i as u8))
    }

    /// Returns the definition of a state.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for this sink.
    pub fn state(&self, idx: StateIndex) -> &PowerStateDef {
        &self.states[idx.0 as usize]
    }

    /// Nominal current draw in a given state.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range for this sink.
    pub fn nominal_current(&self, idx: StateIndex) -> Current {
        self.state(idx).current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn led() -> EnergySink {
        EnergySink::new(
            "led0",
            ComponentClass::Led,
            vec![
                PowerStateDef::new("OFF", Current::ZERO),
                PowerStateDef::new("ON", Current::from_milli_amps(4.3)),
            ],
        )
    }

    #[test]
    fn sink_lookup_by_name_and_index() {
        let s = led();
        assert_eq!(s.state_count(), 2);
        assert_eq!(s.state_by_name("ON"), Some(StateIndex(1)));
        assert_eq!(s.state_by_name("BLINK"), None);
        assert_eq!(s.nominal_current(StateIndex(1)).as_milli_amps(), 4.3);
        assert_eq!(s.default_state, StateIndex(0));
        assert_eq!(s.baseline_state, StateIndex(0));
    }

    #[test]
    fn builder_adjusts_default_and_baseline() {
        let s = led()
            .with_default(StateIndex(1))
            .with_baseline(StateIndex(0));
        assert_eq!(s.default_state, StateIndex(1));
        assert_eq!(s.baseline_state, StateIndex(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_bad_default() {
        let _ = led().with_default(StateIndex(9));
    }

    #[test]
    #[should_panic(expected = "at least one state")]
    fn sink_requires_states() {
        let _ = EnergySink::new("empty", ComponentClass::Other, vec![]);
    }

    #[test]
    fn component_class_display() {
        assert_eq!(ComponentClass::Mcu.to_string(), "MCU");
        assert_eq!(ComponentClass::Led.to_string(), "LED");
    }
}
