//! Platform catalogs: the inventory of energy sinks and their power states.
//!
//! The main entry point is [`hydrowatch`], which reconstructs the paper's
//! Table 1 — the HydroWatch platform's sinks and nominal current draws at 3 V
//! and a 1 MHz clock.

use crate::sink::{ComponentClass, EnergySink, PowerStateDef, StateIndex};
use crate::units::Current;
use std::collections::HashMap;
use std::fmt;

/// Identifier of an energy sink within a [`Catalog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SinkId(pub u16);

impl SinkId {
    /// Returns the raw index.
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sink#{}", self.0)
    }
}

/// An immutable inventory of energy sinks.
///
/// The catalog additionally assigns a *column index* to every non-baseline
/// power state of every sink; these columns are the α variables of the
/// paper's regression (Equation 1).
#[derive(Debug, Clone)]
pub struct Catalog {
    sinks: Vec<EnergySink>,
    by_name: HashMap<String, SinkId>,
    /// column_of[sink][state] = Some(column) for non-baseline states.
    column_of: Vec<Vec<Option<usize>>>,
    /// (sink, state) for each column, in column order.
    column_defs: Vec<(SinkId, StateIndex)>,
}

impl Catalog {
    /// Number of sinks in the catalog.
    pub fn sink_count(&self) -> usize {
        self.sinks.len()
    }

    /// Total number of power states across all sinks.
    pub fn total_state_count(&self) -> usize {
        self.sinks.iter().map(|s| s.state_count()).sum()
    }

    /// Number of regression columns (non-baseline states).
    pub fn column_count(&self) -> usize {
        self.column_defs.len()
    }

    /// Iterates over `(SinkId, &EnergySink)` pairs in id order.
    pub fn sinks(&self) -> impl Iterator<Item = (SinkId, &EnergySink)> {
        self.sinks
            .iter()
            .enumerate()
            .map(|(i, s)| (SinkId(i as u16), s))
    }

    /// Returns a sink by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a valid sink id for this catalog.
    pub fn sink(&self, id: SinkId) -> &EnergySink {
        &self.sinks[id.as_usize()]
    }

    /// Looks up a sink by name.
    pub fn sink_by_name(&self, name: &str) -> Option<SinkId> {
        self.by_name.get(name).copied()
    }

    /// Returns the regression column for a (sink, state) pair, or `None` if
    /// the state is the sink's baseline state.
    pub fn column(&self, sink: SinkId, state: StateIndex) -> Option<usize> {
        self.column_of
            .get(sink.as_usize())
            .and_then(|states| states.get(state.as_u8() as usize))
            .copied()
            .flatten()
    }

    /// Returns the (sink, state) pair that a regression column refers to.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range.
    pub fn column_def(&self, column: usize) -> (SinkId, StateIndex) {
        self.column_defs[column]
    }

    /// Returns a human-readable label for a regression column, e.g.
    /// `"led0/ON"`.
    pub fn column_label(&self, column: usize) -> String {
        let (sink, state) = self.column_def(column);
        format!(
            "{}/{}",
            self.sink(sink).name,
            self.sink(sink).state(state).name
        )
    }

    /// Labels for all regression columns, in column order.
    pub fn column_labels(&self) -> Vec<String> {
        (0..self.column_count())
            .map(|c| self.column_label(c))
            .collect()
    }

    /// Nominal current draw of a (sink, state) pair.
    pub fn nominal_current(&self, sink: SinkId, state: StateIndex) -> Current {
        self.sink(sink).nominal_current(state)
    }
}

/// Builder for a [`Catalog`].
#[derive(Debug, Default)]
pub struct CatalogBuilder {
    sinks: Vec<EnergySink>,
}

impl CatalogBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        CatalogBuilder::default()
    }

    /// Adds a sink and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a sink with the same name was already added.
    pub fn add(&mut self, sink: EnergySink) -> SinkId {
        assert!(
            !self.sinks.iter().any(|s| s.name == sink.name),
            "duplicate sink name: {}",
            sink.name
        );
        let id = SinkId(self.sinks.len() as u16);
        self.sinks.push(sink);
        id
    }

    /// Finalizes the catalog, assigning regression columns.
    pub fn build(self) -> Catalog {
        let mut by_name = HashMap::new();
        let mut column_of = Vec::with_capacity(self.sinks.len());
        let mut column_defs = Vec::new();
        for (i, sink) in self.sinks.iter().enumerate() {
            by_name.insert(sink.name.clone(), SinkId(i as u16));
            let mut cols = vec![None; sink.state_count()];
            for (j, col) in cols.iter_mut().enumerate() {
                if StateIndex(j as u8) != sink.baseline_state {
                    *col = Some(column_defs.len());
                    column_defs.push((SinkId(i as u16), StateIndex(j as u8)));
                }
            }
            column_of.push(cols);
        }
        Catalog {
            sinks: self.sinks,
            by_name,
            column_of,
            column_defs,
        }
    }
}

/// Well-known sink ids of the HydroWatch platform catalog built by
/// [`hydrowatch`].
///
/// Holding ids (rather than looking names up repeatedly) keeps the hot
/// instrumentation path cheap, mirroring how the real system wires each
/// driver to its own `PowerState` component at compile time.
#[derive(Debug, Clone, Copy)]
pub struct HydrowatchIds {
    /// MSP430 CPU core (ACTIVE / LPM0..LPM4).
    pub cpu: SinkId,
    /// MSP430 internal voltage reference.
    pub vref: SinkId,
    /// MSP430 ADC.
    pub adc: SinkId,
    /// MSP430 DAC.
    pub dac: SinkId,
    /// MSP430 internal flash (program/erase).
    pub internal_flash: SinkId,
    /// MSP430 internal temperature sensor.
    pub temp_sensor: SinkId,
    /// MSP430 analog comparator.
    pub comparator: SinkId,
    /// MSP430 supply supervisor.
    pub supervisor: SinkId,
    /// CC2420 voltage regulator.
    pub radio_regulator: SinkId,
    /// CC2420 battery monitor.
    pub radio_battery_monitor: SinkId,
    /// CC2420 control path (oscillator / idle).
    pub radio_control: SinkId,
    /// CC2420 receive data path.
    pub radio_rx: SinkId,
    /// CC2420 transmit data path.
    pub radio_tx: SinkId,
    /// External AT45DB NOR flash.
    pub ext_flash: SinkId,
    /// Red LED.
    pub led0: SinkId,
    /// Green LED.
    pub led1: SinkId,
    /// Blue LED.
    pub led2: SinkId,
}

/// CPU power state indices for the HydroWatch catalog.
pub mod cpu_state {
    use crate::sink::StateIndex;
    /// Lowest-power mode; the catalog baseline for the CPU.
    pub const LPM4: StateIndex = StateIndex(0);
    /// Low-power mode 3 (the usual TinyOS sleep state).
    pub const LPM3: StateIndex = StateIndex(1);
    /// Low-power mode 2.
    pub const LPM2: StateIndex = StateIndex(2);
    /// Low-power mode 1.
    pub const LPM1: StateIndex = StateIndex(3);
    /// Low-power mode 0.
    pub const LPM0: StateIndex = StateIndex(4);
    /// Fully active.
    pub const ACTIVE: StateIndex = StateIndex(5);
}

/// Radio RX path state indices for the HydroWatch catalog.
pub mod radio_rx_state {
    use crate::sink::StateIndex;
    /// Receiver off.
    pub const OFF: StateIndex = StateIndex(0);
    /// Receiver listening (RX / LISTEN in Table 1).
    pub const LISTEN: StateIndex = StateIndex(1);
}

/// Radio TX path state indices for the HydroWatch catalog.
///
/// The CC2420 has eight programmable output power levels; Table 1 lists all
/// of them.  Index 0 is "off", indices 1..=8 are increasing output power.
pub mod radio_tx_state {
    use crate::sink::StateIndex;
    /// Transmitter off.
    pub const OFF: StateIndex = StateIndex(0);
    /// -25 dBm output power.
    pub const TX_M25DBM: StateIndex = StateIndex(1);
    /// -15 dBm output power.
    pub const TX_M15DBM: StateIndex = StateIndex(2);
    /// -10 dBm output power.
    pub const TX_M10DBM: StateIndex = StateIndex(3);
    /// -7 dBm output power.
    pub const TX_M7DBM: StateIndex = StateIndex(4);
    /// -5 dBm output power.
    pub const TX_M5DBM: StateIndex = StateIndex(5);
    /// -3 dBm output power.
    pub const TX_M3DBM: StateIndex = StateIndex(6);
    /// -1 dBm output power.
    pub const TX_M1DBM: StateIndex = StateIndex(7);
    /// 0 dBm output power (the default).
    pub const TX_0DBM: StateIndex = StateIndex(8);
}

/// Radio control path state indices.
pub mod radio_control_state {
    use crate::sink::StateIndex;
    /// Control path off.
    pub const OFF: StateIndex = StateIndex(0);
    /// Oscillator running, radio idle.
    pub const IDLE: StateIndex = StateIndex(1);
}

/// Radio voltage regulator state indices.
pub mod radio_regulator_state {
    use crate::sink::StateIndex;
    /// Regulator off.
    pub const OFF: StateIndex = StateIndex(0);
    /// Regulator on.
    pub const ON: StateIndex = StateIndex(1);
    /// Chip powered down but regulator energized.
    pub const POWER_DOWN: StateIndex = StateIndex(2);
}

/// External flash state indices.
pub mod flash_state {
    use crate::sink::StateIndex;
    /// Deep power-down.
    pub const POWER_DOWN: StateIndex = StateIndex(0);
    /// Standby.
    pub const STANDBY: StateIndex = StateIndex(1);
    /// Read in progress.
    pub const READ: StateIndex = StateIndex(2);
    /// Write in progress.
    pub const WRITE: StateIndex = StateIndex(3);
    /// Erase in progress.
    pub const ERASE: StateIndex = StateIndex(4);
}

/// LED state indices.
pub mod led_state {
    use crate::sink::StateIndex;
    /// LED off.
    pub const OFF: StateIndex = StateIndex(0);
    /// LED on.
    pub const ON: StateIndex = StateIndex(1);
}

/// Builds the HydroWatch platform catalog: the paper's Table 1.
///
/// Returns the catalog together with the well-known sink ids.
pub fn hydrowatch() -> (Catalog, HydrowatchIds) {
    let ua = Current::from_micro_amps;
    let ma = Current::from_milli_amps;
    let mut b = CatalogBuilder::new();

    // Microcontroller sinks.
    let cpu = b.add(
        EnergySink::new(
            "mcu.cpu",
            ComponentClass::Mcu,
            vec![
                PowerStateDef::new("LPM4", ua(0.2)),
                PowerStateDef::new("LPM3", ua(2.6)),
                PowerStateDef::new("LPM2", ua(17.0)),
                PowerStateDef::new("LPM1", ua(75.0)),
                PowerStateDef::new("LPM0", ua(75.0)),
                PowerStateDef::new("ACTIVE", ua(500.0)),
            ],
        )
        // TinyOS idles the MSP430 in LPM3; treat LPM3 as both the boot state
        // and the baseline that the regression constant absorbs.
        .with_default(cpu_state::LPM3)
        .with_baseline(cpu_state::LPM3),
    );
    let vref = b.add(EnergySink::new(
        "mcu.vref",
        ComponentClass::Mcu,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("ON", ua(500.0)),
        ],
    ));
    let adc = b.add(EnergySink::new(
        "mcu.adc",
        ComponentClass::Mcu,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("CONVERTING", ua(800.0)),
        ],
    ));
    let dac = b.add(EnergySink::new(
        "mcu.dac",
        ComponentClass::Mcu,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("CONVERTING-2", ua(50.0)),
            PowerStateDef::new("CONVERTING-5", ua(200.0)),
            PowerStateDef::new("CONVERTING-7", ua(700.0)),
        ],
    ));
    let internal_flash = b.add(EnergySink::new(
        "mcu.flash",
        ComponentClass::Mcu,
        vec![
            PowerStateDef::new("IDLE", Current::ZERO),
            PowerStateDef::new("PROGRAM", ma(3.0)),
            PowerStateDef::new("ERASE", ma(3.0)),
        ],
    ));
    let temp_sensor = b.add(EnergySink::new(
        "mcu.temp",
        ComponentClass::Mcu,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("SAMPLE", ua(60.0)),
        ],
    ));
    let comparator = b.add(EnergySink::new(
        "mcu.comparator",
        ComponentClass::Mcu,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("COMPARE", ua(45.0)),
        ],
    ));
    let supervisor = b.add(EnergySink::new(
        "mcu.supervisor",
        ComponentClass::Mcu,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("ON", ua(15.0)),
        ],
    ));

    // Radio sinks.
    let radio_regulator = b.add(EnergySink::new(
        "radio.regulator",
        ComponentClass::Radio,
        vec![
            PowerStateDef::new("OFF", ua(1.0)),
            PowerStateDef::new("ON", ua(22.0)),
            PowerStateDef::new("POWER_DOWN", ua(20.0)),
        ],
    ));
    let radio_battery_monitor = b.add(EnergySink::new(
        "radio.battmon",
        ComponentClass::Radio,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("ENABLED", ua(30.0)),
        ],
    ));
    let radio_control = b.add(EnergySink::new(
        "radio.control",
        ComponentClass::Radio,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("IDLE", ua(426.0)),
        ],
    ));
    let radio_rx = b.add(EnergySink::new(
        "radio.rx",
        ComponentClass::Radio,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("LISTEN", ma(19.7)),
        ],
    ));
    let radio_tx = b.add(EnergySink::new(
        "radio.tx",
        ComponentClass::Radio,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("TX(-25dBm)", ma(8.5)),
            PowerStateDef::new("TX(-15dBm)", ma(9.9)),
            PowerStateDef::new("TX(-10dBm)", ma(11.2)),
            PowerStateDef::new("TX(-7dBm)", ma(12.5)),
            PowerStateDef::new("TX(-5dBm)", ma(13.9)),
            PowerStateDef::new("TX(-3dBm)", ma(15.2)),
            PowerStateDef::new("TX(-1dBm)", ma(16.5)),
            PowerStateDef::new("TX(+0dBm)", ma(17.4)),
        ],
    ));

    // External flash.
    let ext_flash = b.add(
        EnergySink::new(
            "flash.at45db",
            ComponentClass::Flash,
            vec![
                PowerStateDef::new("POWER_DOWN", ua(9.0)),
                PowerStateDef::new("STANDBY", ua(25.0)),
                PowerStateDef::new("READ", ma(7.0)),
                PowerStateDef::new("WRITE", ma(12.0)),
                PowerStateDef::new("ERASE", ma(12.0)),
            ],
        )
        .with_default(flash_state::POWER_DOWN)
        .with_baseline(flash_state::POWER_DOWN),
    );

    // LEDs (red, green, blue).
    let led0 = b.add(EnergySink::new(
        "led0.red",
        ComponentClass::Led,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("ON", ma(4.3)),
        ],
    ));
    let led1 = b.add(EnergySink::new(
        "led1.green",
        ComponentClass::Led,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("ON", ma(3.7)),
        ],
    ));
    let led2 = b.add(EnergySink::new(
        "led2.blue",
        ComponentClass::Led,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("ON", ma(1.7)),
        ],
    ));

    let catalog = b.build();
    let ids = HydrowatchIds {
        cpu,
        vref,
        adc,
        dac,
        internal_flash,
        temp_sensor,
        comparator,
        supervisor,
        radio_regulator,
        radio_battery_monitor,
        radio_control,
        radio_rx,
        radio_tx,
        ext_flash,
        led0,
        led1,
        led2,
    };
    (catalog, ids)
}

/// Builds a minimal catalog with a two-state CPU and three LEDs.
///
/// This is the reduced model the paper uses for the Blink calibration
/// (Section 4.1): the CPU is either active or idle, and each LED is on or
/// off.  Returns `(catalog, cpu, [led0, led1, led2])`.
pub fn blink_catalog() -> (Catalog, SinkId, [SinkId; 3]) {
    let ma = Current::from_milli_amps;
    let ua = Current::from_micro_amps;
    let mut b = CatalogBuilder::new();
    let cpu = b.add(EnergySink::new(
        "cpu",
        ComponentClass::Mcu,
        vec![
            PowerStateDef::new("IDLE", ua(2.6)),
            PowerStateDef::new("ACTIVE", ua(500.0)),
        ],
    ));
    let led0 = b.add(EnergySink::new(
        "led0.red",
        ComponentClass::Led,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("ON", ma(2.5)),
        ],
    ));
    let led1 = b.add(EnergySink::new(
        "led1.green",
        ComponentClass::Led,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("ON", ma(2.23)),
        ],
    ));
    let led2 = b.add(EnergySink::new(
        "led2.blue",
        ComponentClass::Led,
        vec![
            PowerStateDef::new("OFF", Current::ZERO),
            PowerStateDef::new("ON", ma(0.83)),
        ],
    ));
    (b.build(), cpu, [led0, led1, led2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydrowatch_matches_table_1() {
        let (cat, ids) = hydrowatch();
        // 17 sinks: 8 MCU, 5 radio, 1 flash, 3 LEDs.
        assert_eq!(cat.sink_count(), 17);

        // Spot-check nominal currents against Table 1.
        assert_eq!(
            cat.nominal_current(ids.cpu, cpu_state::ACTIVE)
                .as_micro_amps(),
            500.0
        );
        assert_eq!(
            cat.nominal_current(ids.cpu, cpu_state::LPM3)
                .as_micro_amps(),
            2.6
        );
        assert_eq!(
            cat.nominal_current(ids.radio_rx, radio_rx_state::LISTEN)
                .as_milli_amps(),
            19.7
        );
        assert_eq!(
            cat.nominal_current(ids.radio_tx, radio_tx_state::TX_0DBM)
                .as_milli_amps(),
            17.4
        );
        assert_eq!(
            cat.nominal_current(ids.radio_tx, radio_tx_state::TX_M25DBM)
                .as_milli_amps(),
            8.5
        );
        assert_eq!(
            cat.nominal_current(ids.led0, led_state::ON).as_milli_amps(),
            4.3
        );
        assert_eq!(
            cat.nominal_current(ids.led1, led_state::ON).as_milli_amps(),
            3.7
        );
        assert_eq!(
            cat.nominal_current(ids.led2, led_state::ON).as_milli_amps(),
            1.7
        );
        assert_eq!(
            cat.nominal_current(ids.ext_flash, flash_state::WRITE)
                .as_milli_amps(),
            12.0
        );
    }

    #[test]
    fn hydrowatch_state_counts_match_paper() {
        let (cat, ids) = hydrowatch();
        // The paper: the microcontroller's eight energy sinks have sixteen
        // power states (counting only the states listed in Table 1 and one
        // implicit off state where needed we model a superset; check the CPU
        // and DAC explicitly).
        assert_eq!(cat.sink(ids.cpu).state_count(), 6);
        assert_eq!(cat.sink(ids.dac).state_count(), 4);
        // The radio's five sinks have fourteen power states in the paper; we
        // model off states explicitly so the TX sink alone has 9.
        assert_eq!(cat.sink(ids.radio_tx).state_count(), 9);
        assert_eq!(cat.sink(ids.radio_rx).state_count(), 2);
    }

    #[test]
    fn columns_skip_baseline_states() {
        let (cat, ids) = hydrowatch();
        // The CPU baseline (LPM3) has no column.
        assert_eq!(cat.column(ids.cpu, cpu_state::LPM3), None);
        assert!(cat.column(ids.cpu, cpu_state::ACTIVE).is_some());
        // Every column def round-trips.
        for c in 0..cat.column_count() {
            let (sink, state) = cat.column_def(c);
            assert_eq!(cat.column(sink, state), Some(c));
        }
        // Column labels are unique.
        let labels = cat.column_labels();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn lookup_by_name() {
        let (cat, ids) = hydrowatch();
        assert_eq!(cat.sink_by_name("mcu.cpu"), Some(ids.cpu));
        assert_eq!(cat.sink_by_name("led2.blue"), Some(ids.led2));
        assert_eq!(cat.sink_by_name("nonexistent"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate sink name")]
    fn duplicate_names_rejected() {
        let mut b = CatalogBuilder::new();
        b.add(EnergySink::new(
            "x",
            ComponentClass::Other,
            vec![PowerStateDef::new("OFF", Current::ZERO)],
        ));
        b.add(EnergySink::new(
            "x",
            ComponentClass::Other,
            vec![PowerStateDef::new("OFF", Current::ZERO)],
        ));
    }

    #[test]
    fn blink_catalog_shape() {
        let (cat, cpu, leds) = blink_catalog();
        assert_eq!(cat.sink_count(), 4);
        assert_eq!(cat.sink(cpu).state_count(), 2);
        // 4 sinks, each with one non-baseline state => 4 columns.
        assert_eq!(cat.column_count(), 4);
        for led in leds {
            assert_eq!(cat.sink(led).state_count(), 2);
        }
    }
}
