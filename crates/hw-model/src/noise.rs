//! Deviation of the *true* hardware from its datasheet.
//!
//! Quanto exists precisely because real hardware does not match its
//! datasheet: manufacturing variation, temperature, supply voltage and aging
//! all shift per-state currents.  The noise model gives the simulated
//! platform a fixed, per-state "true" current that deviates from the nominal
//! value, plus optional white noise applied when instantaneous current is
//! sampled (as an oscilloscope would see).
//!
//! Deterministic seeding keeps every experiment reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters controlling how the simulated hardware deviates from Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Maximum relative deviation of a state's true mean current from its
    /// nominal value (uniform in `[-bias, +bias]`).  `0.05` means ±5 %.
    pub state_bias: f64,
    /// Standard deviation of multiplicative white noise applied to
    /// instantaneous current samples, relative to the mean. `0.01` means 1 %.
    pub sample_sigma: f64,
    /// RNG seed; the same seed always produces the same platform.
    pub seed: u64,
}

impl NoiseModel {
    /// A perfectly ideal platform: true currents equal nominal currents and
    /// samples are noiseless.
    pub const IDEAL: NoiseModel = NoiseModel {
        state_bias: 0.0,
        sample_sigma: 0.0,
        seed: 0,
    };

    /// A realistic default: ±5 % per-state bias and 1 % sample noise.
    pub fn realistic(seed: u64) -> Self {
        NoiseModel {
            state_bias: 0.05,
            sample_sigma: 0.01,
            seed,
        }
    }

    /// Draws the per-state bias factors for `n` states.
    ///
    /// Each factor multiplies the nominal current; a factor of `1.03` means
    /// the true draw is 3 % above nominal.
    pub fn draw_bias_factors(&self, n: usize) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..n)
            .map(|_| {
                if self.state_bias == 0.0 {
                    1.0
                } else {
                    1.0 + rng.gen_range(-self.state_bias..=self.state_bias)
                }
            })
            .collect()
    }

    /// Returns an RNG for sample noise, seeded independently of the bias
    /// draw so that changing one does not perturb the other.
    pub fn sample_rng(&self) -> StdRng {
        StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(1),
        )
    }

    /// Applies multiplicative gaussian sample noise to a value.
    pub fn perturb_sample(&self, rng: &mut StdRng, value: f64) -> f64 {
        if self.sample_sigma == 0.0 {
            return value;
        }
        // Box-Muller transform; avoids needing a distributions dependency.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        value * (1.0 + self.sample_sigma * z)
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel::IDEAL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_model_is_identity() {
        let m = NoiseModel::IDEAL;
        assert_eq!(m.draw_bias_factors(5), vec![1.0; 5]);
        let mut rng = m.sample_rng();
        assert_eq!(m.perturb_sample(&mut rng, 42.0), 42.0);
    }

    #[test]
    fn bias_factors_are_bounded_and_deterministic() {
        let m = NoiseModel::realistic(7);
        let a = m.draw_bias_factors(100);
        let b = m.draw_bias_factors(100);
        assert_eq!(a, b, "same seed must give same platform");
        for f in &a {
            assert!(*f >= 0.95 && *f <= 1.05, "factor {f} outside ±5 %");
        }
        // Different seeds give different platforms.
        let c = NoiseModel::realistic(8).draw_bias_factors(100);
        assert_ne!(a, c);
    }

    #[test]
    fn sample_noise_has_roughly_right_spread() {
        let m = NoiseModel {
            state_bias: 0.0,
            sample_sigma: 0.05,
            seed: 3,
        };
        let mut rng = m.sample_rng();
        let samples: Vec<f64> = (0..20_000)
            .map(|_| m.perturb_sample(&mut rng, 100.0))
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        assert!((mean - 100.0).abs() < 0.5, "mean {mean} too far from 100");
        let sigma = var.sqrt();
        assert!((sigma - 5.0).abs() < 0.5, "sigma {sigma} too far from 5");
    }
}
