//! Fleet-of-fleets: multi-process sweep sharding with dynamic
//! self-scheduling.
//!
//! A [`Coordinator`] expands a grid once, serves its scenario *indices* in
//! adaptively-shrinking chunks over a line-delimited JSON work-queue
//! protocol (`std::net::TcpListener` on loopback — no dependencies), and
//! merges the per-scenario records the shards return.  Each shard is
//! another process of the same binary (`fleet_sweep --shard ADDR`) running
//! its own [`crate::FleetRunner`] over every chunk it claims.
//!
//! ```text
//! shard → {"t":"hello"}
//! coord → {"t":"job","proto":1,"shard":0,"shards":2,"threads":4,
//!          "expected":29,"grid":"[grid]…","seconds":…,"seeds":…,
//!          "pairs":…,"cache":"…"}          (floats as u64 bit patterns)
//! shard → {"t":"ready","count":29}
//! shard → {"t":"next"}
//! coord → {"t":"chunk","indices":[0,1,2,3]}   (or {"t":"done"})
//! shard → {"t":"result","index":0,"cache_hit":false,"record":{…}} ×4
//! shard → {"t":"next"}                        (… and so on)
//! shard → {"t":"stats","hits":0,"misses":4,"writes":4}   (after done)
//! ```
//!
//! **Self-scheduling.**  Chunks are claimed, not assigned: whenever a shard
//! asks, it receives the next `max(1, remaining / (2 × shards))` queued
//! indices (guided self-scheduling).  Early chunks are large to amortize
//! round-trips; late chunks shrink toward single scenarios, so a straggler
//! shard can never sit on a long tail while its peers idle.
//!
//! **Determinism.**  The shards ship grid *text* plus the numeric overrides
//! (not expanded scenarios), re-expand identically, and return each
//! scenario's `ScenarioRecord` — summaries, stream
//! residues and medium counters with every float as its exact bit pattern.
//! The coordinator reorders results by submission index and folds them
//! through the same `ReportAccumulator` the in-process
//! runner uses, so [`crate::FleetReport::digest`] is byte-identical at any
//! shard count × thread count.  Dist runs always use
//! [`Retention::Stream`]; the legacy pinned digest (raw entry bytes) is
//! not transportable.
//!
//! **Fault tolerance.**  A handler that loses its connection mid-chunk
//! pushes the chunk's unreturned indices back onto the *front* of the
//! queue, so a surviving shard re-executes them and the sweep still
//! completes with the same digest.  Only when every connection is gone and
//! work remains does [`Coordinator::run`] give up with
//! [`DistError::ShardsDied`].
//!
//! **Cache integration.**  The coordinator probes the result cache for
//! every cell up front — hits never enter the queue (a fully-warm sweep
//! spawns no work at all) — and shards write fresh entries as they
//! simulate, so the next sweep over an edited grid re-executes only the
//! changed cells.
//!
//! # Example
//!
//! Shards are normally spawned processes, but [`run_shard`] is plain
//! library code — a thread over loopback TCP drives the identical path:
//!
//! ```
//! use quanto_fleet::{dist, Coordinator, DistOptions, GridOverrides};
//!
//! let grid = "[grid]\nname = doc\n[cell.idle]\napp = idle\nseconds = 1\n";
//! let options = DistOptions { shards: 1, threads: 1, cache_dir: None };
//! let coordinator = Coordinator::bind(grid, GridOverrides::default(), &options).unwrap();
//! let addr = coordinator.addr().unwrap().to_string();
//! let shard = std::thread::spawn(move || dist::run_shard(&addr));
//! let report = coordinator.run(|_progress| {}).unwrap();
//! shard.join().unwrap().unwrap();
//! assert_eq!(report.results.len(), 1);
//! ```

use crate::cache::{CacheStats, ResultCache};
use crate::grid::{GridError, GridSpec};
use crate::record::ScenarioRecord;
use crate::report::{FleetReport, ReportAccumulator, ScenarioResult};
use crate::runner::{FleetProgress, FleetRunner, Retention};
use crate::scenario::Scenario;
use crate::wire::{push_json_str, Value};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Wire protocol version; both ends must agree exactly.
const PROTO_VERSION: u64 = 1;

/// How long the merge loop tolerates zero live connections (after at least
/// one shard has connected) before declaring the fleet dead.  Long enough
/// to ride out the gap between one shard disconnecting and another's
/// connect landing; short enough that tests and CI fail fast.
const ALL_DEAD_GRACE: Duration = Duration::from_secs(2);

/// How long the merge loop waits for the *first* connection before giving
/// up — generous, because freshly-spawned shard processes pay a process
/// start plus a grid expansion before they dial in.
const FIRST_CONNECT_GRACE: Duration = Duration::from_secs(120);

/// The numeric sweep overrides (`--seconds`, `--seeds`, `--pairs`) applied
/// identically on both ends of the protocol — the coordinator for its own
/// expansion and cache probe, each shard for its re-expansion.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GridOverrides {
    /// Replaces the grid-level default duration (cells with their own
    /// `seconds` keep them).
    pub seconds: Option<f64>,
    /// Replaces every non-empty seed axis with `1..=n`.
    pub seed_count: Option<u64>,
    /// Replaces every bounce-pairs cell's pair count.
    pub pairs: Option<u16>,
}

impl GridOverrides {
    /// Applies the overrides to a parsed grid, in the fixed order both ends
    /// share.
    pub fn apply(&self, spec: &mut GridSpec) {
        if let Some(seconds) = self.seconds {
            spec.override_seconds(seconds);
        }
        if let Some(n) = self.seed_count {
            spec.override_seed_count(n);
        }
        if let Some(pairs) = self.pairs {
            spec.override_pairs(pairs);
        }
    }
}

/// How a distributed sweep runs.
#[derive(Debug, Clone)]
pub struct DistOptions {
    /// How many shard processes will serve the queue (the chunk-size
    /// denominator; the coordinator accepts any number of connections).
    pub shards: u32,
    /// Worker threads per shard's in-process `FleetRunner`.
    pub threads: usize,
    /// Result-cache directory shared by the coordinator's probe and every
    /// shard; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
}

/// Why a distributed sweep failed.
#[derive(Debug)]
pub enum DistError {
    /// The grid text did not parse or expand.
    Grid(GridError),
    /// A socket or filesystem operation failed.
    Io(std::io::Error),
    /// The peer broke the wire protocol (version skew, malformed line,
    /// scenario-count mismatch).
    Protocol(String),
    /// Every shard connection was lost with work still queued; the merged
    /// prefix is abandoned (re-run to resume — completed cells are in the
    /// cache).
    ShardsDied {
        /// Scenarios merged before the fleet died.
        merged: usize,
        /// Scenarios the sweep needed.
        total: usize,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Grid(e) => write!(f, "grid error: {e}"),
            DistError::Io(e) => write!(f, "i/o error: {e}"),
            DistError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            DistError::ShardsDied { merged, total } => write!(
                f,
                "every shard connection died with {merged}/{total} scenarios merged \
                 and work still queued"
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<GridError> for DistError {
    fn from(e: GridError) -> Self {
        DistError::Grid(e)
    }
}

fn protocol(msg: impl Into<String>) -> DistError {
    DistError::Protocol(msg.into())
}

/// Everything a handler needs to brief a connecting shard.
struct JobSpec {
    grid_text: String,
    overrides: GridOverrides,
    shards: u32,
    threads: usize,
    cache_dir: Option<String>,
    expected: usize,
}

impl JobSpec {
    fn encode(&self, shard: u32) -> String {
        let mut out = String::with_capacity(self.grid_text.len() + 160);
        out.push_str(&format!(
            "{{\"t\":\"job\",\"proto\":{PROTO_VERSION},\"shard\":{shard},\"shards\":{},\
             \"threads\":{},\"expected\":{},",
            self.shards, self.threads, self.expected
        ));
        out.push_str("\"grid\":");
        push_json_str(&mut out, &self.grid_text);
        match self.overrides.seconds {
            Some(s) => out.push_str(&format!(",\"seconds\":{}", s.to_bits())),
            None => out.push_str(",\"seconds\":null"),
        }
        match self.overrides.seed_count {
            Some(n) => out.push_str(&format!(",\"seeds\":{n}")),
            None => out.push_str(",\"seeds\":null"),
        }
        match self.overrides.pairs {
            Some(p) => out.push_str(&format!(",\"pairs\":{p}")),
            None => out.push_str(",\"pairs\":null"),
        }
        match &self.cache_dir {
            Some(dir) => {
                out.push_str(",\"cache\":");
                push_json_str(&mut out, dir);
            }
            None => out.push_str(",\"cache\":null"),
        }
        out.push('}');
        out
    }
}

/// Messages the connection handlers feed the merge loop.
enum Msg {
    /// A shard connection was accepted.
    Opened,
    /// A chunk of `size` indices left the queue for a shard.
    ChunkServed { size: usize },
    /// One scenario's record came back.
    Result {
        shard: u32,
        index: usize,
        cache_hit: bool,
        record: ScenarioRecord,
    },
    /// A shard reported its cache traffic (sent once, after `done`).
    Stats { hits: u64, misses: u64, writes: u64 },
    /// A connection ended (cleanly or not; unreturned indices are already
    /// back on the queue).
    Closed,
}

/// The coordinator side of a distributed sweep: owns the expanded grid, the
/// work queue, the listener and (optionally) the result cache.
pub struct Coordinator {
    listener: TcpListener,
    scenarios: Vec<Scenario>,
    job: JobSpec,
    cache: Option<ResultCache>,
    /// Cache hits found at bind time, pre-merged by submission index.
    warm: BTreeMap<usize, ScenarioResult>,
    /// Indices still needing execution, in submission order.
    queue: VecDeque<usize>,
}

impl Coordinator {
    /// Parses and expands the grid, opens the cache (probing it for every
    /// cell — hits skip the queue entirely) and binds a loopback listener.
    /// Nothing is served until [`Coordinator::run`].
    pub fn bind(
        grid_text: &str,
        overrides: GridOverrides,
        options: &DistOptions,
    ) -> Result<Coordinator, DistError> {
        let mut spec = GridSpec::parse(grid_text)?;
        overrides.apply(&mut spec);
        let scenarios = spec.expand()?;
        let cache = match &options.cache_dir {
            Some(dir) => Some(ResultCache::open(dir)?),
            None => None,
        };
        let mut warm = BTreeMap::new();
        let mut queue = VecDeque::with_capacity(scenarios.len());
        for (i, scenario) in scenarios.iter().enumerate() {
            match cache.as_ref().and_then(|c| c.load_result(i, scenario)) {
                Some(result) => {
                    warm.insert(i, result);
                }
                None => queue.push_back(i),
            }
        }
        let cache_dir = options
            .cache_dir
            .as_ref()
            .map(|d| d.to_string_lossy().into_owned());
        let listener = TcpListener::bind("127.0.0.1:0")?;
        Ok(Coordinator {
            listener,
            job: JobSpec {
                grid_text: grid_text.to_string(),
                overrides,
                shards: options.shards.max(1),
                threads: options.threads.max(1),
                cache_dir,
                expected: scenarios.len(),
            },
            scenarios,
            cache,
            warm,
            queue,
        })
    }

    /// The address shards must connect to.
    pub fn addr(&self) -> Result<SocketAddr, DistError> {
        Ok(self.listener.local_addr()?)
    }

    /// Scenarios still needing execution (everything the bind-time cache
    /// probe could not answer).  Zero means [`Coordinator::run`] will merge
    /// entirely from the cache without serving a single chunk — don't
    /// bother spawning shards.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Total scenarios in the sweep.
    pub fn total(&self) -> usize {
        self.scenarios.len()
    }

    /// Serves the queue until every scenario has merged, invoking
    /// `progress` (on the calling thread) per merged scenario in submission
    /// order — the same contract as
    /// [`FleetRunner::run_with_progress`][crate::FleetRunner::run_with_progress],
    /// with [`FleetProgress::shard`] naming the executing shard and
    /// [`FleetProgress::cache_hit`] marking cells answered from the cache.
    pub fn run(self, mut progress: impl FnMut(FleetProgress)) -> Result<FleetReport, DistError> {
        let Coordinator {
            listener,
            scenarios,
            job,
            cache,
            warm,
            queue,
        } = self;
        let started = Instant::now();
        let total = scenarios.len();
        let probe_stats = cache.as_ref().map(ResultCache::stats);
        let mut acc = ReportAccumulator::new(total, Retention::Stream);
        let mut pending: BTreeMap<usize, (ScenarioResult, Option<u32>)> =
            warm.into_iter().map(|(i, r)| (i, (r, None))).collect();
        let mut next = 0usize;

        let merge_ready = |pending: &mut BTreeMap<usize, (ScenarioResult, Option<u32>)>,
                           next: &mut usize,
                           acc: &mut ReportAccumulator,
                           progress: &mut dyn FnMut(FleetProgress)| {
            while let Some((result, shard)) = pending.remove(next) {
                let completed = *next + 1;
                let elapsed_ms = started.elapsed().as_millis() as u64;
                let eta_ms = (completed >= 2)
                    .then(|| elapsed_ms * (total - completed) as u64 / completed as u64);
                let event = FleetProgress {
                    index: result.index,
                    name: result.scenario.name.clone(),
                    completed,
                    total,
                    medium_kind: result.medium_kind,
                    medium_counters: result.medium_counters().ok().copied(),
                    summaries: result.summaries.clone(),
                    elapsed_ms,
                    eta_ms,
                    shard,
                    cache_hit: result.cache_hit(),
                };
                acc.absorb(result);
                progress(event);
                *next += 1;
            }
        };

        // The fully-warm fast path: every cell came out of the cache at
        // bind time, so there is no queue to serve and no reason to accept
        // a single connection.
        if queue.is_empty() {
            merge_ready(&mut pending, &mut next, &mut acc, &mut progress);
            debug_assert_eq!(next, total, "warm merge covers the whole sweep");
            let mut report = acc.finish(job.threads, started.elapsed(), 0);
            if probe_stats.is_some() {
                // The bind-time probe is the only traffic this handle saw.
                report.set_cache_stats(cache.as_ref().expect("probed").stats());
            }
            return Ok(report);
        }

        let addr = listener.local_addr()?;
        let queue = Mutex::new(queue);
        let stop = AtomicBool::new(false);
        let next_shard = AtomicU32::new(0);
        let (tx, rx) = mpsc::channel::<Msg>();
        let mut shard_stats = CacheStats::default();

        let outcome = std::thread::scope(|scope| {
            let acceptor = {
                let job = &job;
                let queue = &queue;
                let stop = &stop;
                let next_shard = &next_shard;
                let tx = tx.clone();
                scope.spawn(move || {
                    let mut handlers = Vec::new();
                    loop {
                        let stream = match listener.accept() {
                            Ok((stream, _)) => stream,
                            Err(_) => break,
                        };
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let shard = next_shard.fetch_add(1, Ordering::SeqCst);
                        let tx = tx.clone();
                        handlers
                            .push(scope.spawn(move || handle_shard(stream, shard, job, queue, tx)));
                    }
                    for handler in handlers {
                        let _ = handler.join();
                    }
                })
            };
            drop(tx);

            // The merge loop: reorder shard results into submission order,
            // fold through the shared accumulator, account scheduler and
            // cache activity.  Runs on the caller's thread so obs counters
            // land where the sweep binaries harvest them.
            let mut live = 0usize;
            let mut ever_connected = false;
            let mut last_activity = Instant::now();
            let mut failure: Option<DistError> = None;
            while next < total {
                match rx.recv_timeout(Duration::from_millis(200)) {
                    Ok(msg) => {
                        last_activity = Instant::now();
                        match msg {
                            Msg::Opened => {
                                live += 1;
                                ever_connected = true;
                            }
                            Msg::Closed => live = live.saturating_sub(1),
                            Msg::ChunkServed { size } => {
                                quanto_obs::counter_add("sched.chunks_served", 1);
                                quanto_obs::observe("sched.chunk_size", size as u64);
                            }
                            Msg::Stats {
                                hits,
                                misses,
                                writes,
                            } => {
                                shard_stats.hits += hits;
                                shard_stats.misses += misses;
                                shard_stats.writes += writes;
                            }
                            Msg::Result {
                                shard,
                                index,
                                cache_hit,
                                record,
                            } => {
                                if index >= total || pending.contains_key(&index) || index < next {
                                    // A duplicate (requeued chunk raced its
                                    // dying first execution) — drop it; the
                                    // first completion already merged or
                                    // will merge.
                                    continue;
                                }
                                match ScenarioResult::from_record(
                                    index,
                                    scenarios[index].clone(),
                                    &record,
                                    cache_hit,
                                ) {
                                    Some(result) => {
                                        pending.insert(index, (result, Some(shard)));
                                        merge_ready(
                                            &mut pending,
                                            &mut next,
                                            &mut acc,
                                            &mut progress,
                                        );
                                    }
                                    None => {
                                        // The record does not describe the
                                        // scenario (shard bug or grid
                                        // skew): put the cell back so a
                                        // healthy shard re-runs it.
                                        queue
                                            .lock()
                                            .unwrap_or_else(|p| p.into_inner())
                                            .push_front(index);
                                    }
                                }
                            }
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        let grace = if ever_connected {
                            ALL_DEAD_GRACE
                        } else {
                            FIRST_CONNECT_GRACE
                        };
                        if live == 0 && last_activity.elapsed() >= grace {
                            failure = Some(DistError::ShardsDied {
                                merged: next,
                                total,
                            });
                            break;
                        }
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        failure = Some(DistError::ShardsDied {
                            merged: next,
                            total,
                        });
                        break;
                    }
                }
            }

            // Unblock the acceptor (a throwaway self-connection) and wait
            // for every handler to finish before the scope closes.
            stop.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(addr);
            let _ = acceptor.join();
            // Drain any stragglers (final stats lines race the last merge).
            for msg in rx.try_iter() {
                if let Msg::Stats {
                    hits,
                    misses,
                    writes,
                } = msg
                {
                    shard_stats.hits += hits;
                    shard_stats.misses += misses;
                    shard_stats.writes += writes;
                }
            }
            match failure {
                Some(e) => Err(e),
                None => Ok(()),
            }
        });
        outcome?;

        let mut report = acc.finish(job.threads, started.elapsed(), 0);
        if let Some(probe) = probe_stats {
            // Sweep-level cache accounting: the coordinator's bind-time
            // probe decides hit vs miss per cell (a shard re-misses every
            // cell the probe already declared a miss, so shard misses are
            // dropped as double counting); shard hits (duplicate specs
            // inside one sweep) and shard writes are additive.
            report.set_cache_stats(CacheStats {
                hits: probe.hits + shard_stats.hits,
                misses: probe.misses,
                writes: shard_stats.writes,
            });
        }
        Ok(report)
    }
}

/// Pops the next chunk off the queue: guided self-scheduling, where every
/// grab takes `1/(2 × shards)` of what remains (never less than one).  Big
/// early chunks amortize protocol round-trips; the tail degenerates to
/// single scenarios so no shard can hoard work it is too slow to finish.
///
/// Public because the chunk queue is a shared seam: the coordinator serves
/// shard processes from one of these, and the `quanto-serve` daemon's fair
/// scheduler serves its worker pool from one per job — the same adaptive
/// shrink in both topologies.  `shards` is the claimant count the chunk
/// size divides by (worker threads, for an in-process pool).
pub fn take_chunk(queue: &Mutex<VecDeque<usize>>, shards: u32) -> Vec<usize> {
    let mut q = queue.lock().unwrap_or_else(|p| p.into_inner());
    if q.is_empty() {
        return Vec::new();
    }
    let size = (q.len() / (2 * shards as usize)).max(1);
    q.drain(..size).collect()
}

/// Serves one shard connection to completion.  Any protocol violation or
/// lost connection returns the indices the shard still owed, which the
/// caller pushes back onto the queue.
fn serve_shard(
    stream: TcpStream,
    shard: u32,
    job: &JobSpec,
    queue: &Mutex<VecDeque<usize>>,
    tx: &mpsc::Sender<Msg>,
) -> Result<(), Vec<usize>> {
    let broken = |owed: &[usize]| owed.to_vec();
    let mut reader = BufReader::new(stream.try_clone().map_err(|_| Vec::new())?);
    let mut writer = stream;
    let _worker_span = quanto_obs::span("worker");

    let hello = read_msg(&mut reader).ok_or_else(Vec::new)?;
    if hello.get_str("t") != Some("hello") {
        return Err(Vec::new());
    }
    write_line(&mut writer, &job.encode(shard)).map_err(|_| Vec::new())?;
    let ready = read_msg(&mut reader).ok_or_else(Vec::new)?;
    if ready.get_str("t") != Some("ready") || ready.get_u64("count") != Some(job.expected as u64) {
        return Err(Vec::new());
    }

    loop {
        let msg = read_msg(&mut reader).ok_or_else(Vec::new)?;
        if msg.get_str("t") != Some("next") {
            return Err(Vec::new());
        }
        let chunk = take_chunk(queue, job.shards);
        if chunk.is_empty() {
            write_line(&mut writer, "{\"t\":\"done\"}").map_err(|_| Vec::new())?;
            // The shard flushes its cache stats (if any) and closes.
            while let Some(tail) = read_msg(&mut reader) {
                if tail.get_str("t") == Some("stats") {
                    let _ = tx.send(Msg::Stats {
                        hits: tail.get_u64("hits").unwrap_or(0),
                        misses: tail.get_u64("misses").unwrap_or(0),
                        writes: tail.get_u64("writes").unwrap_or(0),
                    });
                }
            }
            return Ok(());
        }
        let mut line = String::from("{\"t\":\"chunk\",\"indices\":[");
        for (i, index) in chunk.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&index.to_string());
        }
        line.push_str("]}");
        write_line(&mut writer, &line).map_err(|_| broken(&chunk))?;
        let _ = tx.send(Msg::ChunkServed { size: chunk.len() });

        // The chunk round-trip is the shard's busy time from where the
        // coordinator stands — spanned so shard utilization shows up in
        // the obs profile's worker table under this handler's label.
        let _chunk_span = quanto_obs::span_with("scenario", "chunk");
        let mut owed = chunk;
        for _ in 0..owed.len() {
            let msg = read_msg(&mut reader).ok_or_else(|| broken(&owed))?;
            if msg.get_str("t") != Some("result") {
                return Err(owed);
            }
            let index = match msg.get_u64("index").map(|i| i as usize) {
                Some(i) => i,
                None => return Err(owed),
            };
            let Some(slot) = owed.iter().position(|&i| i == index) else {
                return Err(owed);
            };
            let Some(record) = msg.get("record").and_then(ScenarioRecord::from_value) else {
                return Err(owed);
            };
            let cache_hit = msg
                .get("cache_hit")
                .and_then(Value::as_bool)
                .unwrap_or(false);
            owed.swap_remove(slot);
            if tx
                .send(Msg::Result {
                    shard,
                    index,
                    cache_hit,
                    record,
                })
                .is_err()
            {
                // Merge loop is gone (run aborted): nothing left to serve.
                return Err(owed);
            }
        }
    }
}

/// One connection handler: label the thread for the obs profile, serve,
/// requeue whatever the shard still owed, account the connection.
fn handle_shard(
    stream: TcpStream,
    shard: u32,
    job: &JobSpec,
    queue: &Mutex<VecDeque<usize>>,
    tx: mpsc::Sender<Msg>,
) {
    quanto_obs::set_thread_label(&format!("shard-{shard}"));
    let _ = tx.send(Msg::Opened);
    if let Err(owed) = serve_shard(stream, shard, job, queue, &tx) {
        let mut q = queue.lock().unwrap_or_else(|p| p.into_inner());
        // Front of the queue, original order: a surviving shard picks the
        // orphaned work up next, and submission-order merging is untouched.
        for index in owed.into_iter().rev() {
            q.push_front(index);
        }
    }
    let _ = tx.send(Msg::Closed);
    quanto_obs::flush_thread();
}

/// The shard side: dial the coordinator, re-expand the job's grid, then
/// claim and execute chunks until told `done`.  Runs in a `fleet_sweep
/// --shard ADDR` process (or an in-process thread, in tests).
pub fn run_shard(addr: &str) -> Result<(), DistError> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    write_line(&mut writer, "{\"t\":\"hello\"}")?;

    let job = read_msg(&mut reader).ok_or_else(|| protocol("expected a job line"))?;
    if job.get_str("t") != Some("job") {
        return Err(protocol("expected a job line"));
    }
    if job.get_u64("proto") != Some(PROTO_VERSION) {
        return Err(protocol(format!(
            "protocol version mismatch (coordinator {:?}, shard {PROTO_VERSION})",
            job.get_u64("proto")
        )));
    }
    let grid_text = job
        .get_str("grid")
        .ok_or_else(|| protocol("job without grid text"))?;
    let overrides = GridOverrides {
        seconds: job
            .get_opt_u64("seconds")
            .ok_or_else(|| protocol("bad seconds override"))?
            .map(f64::from_bits),
        seed_count: job
            .get_opt_u64("seeds")
            .ok_or_else(|| protocol("bad seeds override"))?,
        pairs: job
            .get_opt_u64("pairs")
            .ok_or_else(|| protocol("bad pairs override"))?
            .map(|p| p as u16),
    };
    let threads = job
        .get_u64("threads")
        .ok_or_else(|| protocol("job without threads"))? as usize;
    let expected = job
        .get_u64("expected")
        .ok_or_else(|| protocol("job without expected count"))? as usize;
    let cache = match job.get("cache") {
        Some(Value::Null) => None,
        Some(Value::Str(dir)) => Some(ResultCache::open(dir.clone())?),
        _ => return Err(protocol("bad cache field")),
    };

    let mut spec = GridSpec::parse(grid_text)?;
    overrides.apply(&mut spec);
    let scenarios = spec.expand()?;
    if scenarios.len() != expected {
        return Err(protocol(format!(
            "grid expands to {} scenarios here, coordinator expected {expected}",
            scenarios.len()
        )));
    }
    write_line(
        &mut writer,
        &format!("{{\"t\":\"ready\",\"count\":{}}}", scenarios.len()),
    )?;

    let runner = FleetRunner::new(threads);
    loop {
        write_line(&mut writer, "{\"t\":\"next\"}")?;
        let msg = read_msg(&mut reader).ok_or_else(|| protocol("coordinator hung up"))?;
        match msg.get_str("t") {
            Some("done") => break,
            Some("chunk") => {
                let indices = msg
                    .get("indices")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| protocol("chunk without indices"))?
                    .iter()
                    .map(|v| v.as_u64().map(|i| i as usize))
                    .collect::<Option<Vec<usize>>>()
                    .ok_or_else(|| protocol("non-numeric chunk index"))?;
                let batch: Vec<Scenario> = indices
                    .iter()
                    .map(|&i| scenarios.get(i).cloned())
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| protocol("chunk index out of range"))?;
                let report = runner.run_cached(batch, cache.as_ref());
                for (position, result) in report.results.iter().enumerate() {
                    let mut line = String::with_capacity(256);
                    line.push_str(&format!(
                        "{{\"t\":\"result\",\"index\":{},\"cache_hit\":{},\"record\":",
                        indices[position],
                        result.cache_hit(),
                    ));
                    line.push_str(&result.to_record().encode());
                    line.push('}');
                    write_line(&mut writer, &line)?;
                }
            }
            _ => return Err(protocol("expected chunk or done")),
        }
    }
    if let Some(cache) = &cache {
        let s = cache.stats();
        write_line(
            &mut writer,
            &format!(
                "{{\"t\":\"stats\",\"hits\":{},\"misses\":{},\"writes\":{}}}",
                s.hits, s.misses, s.writes
            ),
        )?;
    }
    Ok(())
}

/// Spawns `options.shards` local shard processes of `exe` (each invoked
/// with `--shard ADDR`) against a fresh coordinator and runs the sweep to
/// completion.  A fully-warm sweep short-circuits without spawning
/// anything.
pub fn run_sweep_spawned(
    exe: &std::path::Path,
    grid_text: &str,
    overrides: GridOverrides,
    options: &DistOptions,
    progress: impl FnMut(FleetProgress),
) -> Result<FleetReport, DistError> {
    let coordinator = Coordinator::bind(grid_text, overrides, options)?;
    if coordinator.pending() == 0 {
        return coordinator.run(progress);
    }
    let addr = coordinator.addr()?;
    let mut children = Vec::with_capacity(options.shards.max(1) as usize);
    for _ in 0..options.shards.max(1) {
        children.push(
            std::process::Command::new(exe)
                .arg("--shard")
                .arg(addr.to_string())
                .stdin(std::process::Stdio::null())
                .stdout(std::process::Stdio::null())
                .spawn()?,
        );
    }
    let outcome = coordinator.run(progress);
    for mut child in children {
        if outcome.is_err() {
            let _ = child.kill();
        }
        let _ = child.wait();
    }
    outcome
}

/// Reads one protocol line; `None` on EOF, i/o failure or a line that is
/// not a JSON object from the wire subset.
fn read_msg(reader: &mut BufReader<TcpStream>) -> Option<Value> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let value = Value::parse(line.trim_end())?;
    matches!(value, Value::Obj(_)).then_some(value)
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_spec_round_trips_through_the_wire() {
        let job = JobSpec {
            grid_text: "[grid]\nname=t\nseconds=2\n[cell.idle]\napp=idle\n".to_string(),
            overrides: GridOverrides {
                seconds: Some(1.5),
                seed_count: Some(4),
                pairs: None,
            },
            shards: 3,
            threads: 2,
            cache_dir: Some("/tmp/with \"quotes\"".to_string()),
            expected: 7,
        };
        let encoded = job.encode(2);
        let v = Value::parse(&encoded).expect("job line parses");
        assert_eq!(v.get_str("t"), Some("job"));
        assert_eq!(v.get_u64("proto"), Some(PROTO_VERSION));
        assert_eq!(v.get_u64("shard"), Some(2));
        assert_eq!(v.get_u64("threads"), Some(2));
        assert_eq!(v.get_u64("expected"), Some(7));
        assert_eq!(v.get_str("grid"), Some(job.grid_text.as_str()));
        assert_eq!(
            v.get_opt_u64("seconds").unwrap().map(f64::from_bits),
            Some(1.5)
        );
        assert_eq!(v.get_opt_u64("seeds"), Some(Some(4)));
        assert_eq!(v.get_opt_u64("pairs"), Some(None));
        assert_eq!(v.get_str("cache"), Some("/tmp/with \"quotes\""));
    }

    #[test]
    fn guided_chunks_shrink_toward_the_tail() {
        let queue = Mutex::new((0..100).collect::<VecDeque<usize>>());
        let mut sizes = Vec::new();
        loop {
            let chunk = take_chunk(&queue, 2);
            if chunk.is_empty() {
                break;
            }
            sizes.push(chunk.len());
        }
        assert_eq!(sizes.iter().sum::<usize>(), 100, "every index served once");
        assert_eq!(sizes[0], 25, "first grab takes remaining/(2×shards)");
        assert!(
            sizes.windows(2).all(|w| w[1] <= w[0]),
            "chunks never grow: {sizes:?}"
        );
        assert_eq!(*sizes.last().unwrap(), 1, "the tail is single scenarios");
    }
}
