//! Per-worker simulation workspaces: the allocation pool behind the fleet's
//! steady-state sweep path.
//!
//! A [`SimWorkspace`] owns everything a streaming scenario execution
//! allocates that is *capacity, not state*:
//!
//! * the engine's containers — node storage, id/index maps, the scheduling
//!   heap, the event-dedup slots — via [`net_sim::NetScratch`],
//! * every node's RAM log buffer (recycled through the kernel teardown),
//! * the medium's spatial-index cell grid, and
//! * the per-node analysis slots (`LiveNode`: interval/segment builders,
//!   the stream digest's encode scratch, the observation pool).
//!
//! [`crate::ScenarioResult::execute_streaming_in`] checks these out, runs
//! one scenario, and hands them back — so a worker thread sweeping N
//! scenarios allocates like it ran one.  Reuse is *behaviour-invariant* by
//! construction: every recycled structure goes through a reset seam that
//! restores exactly the state a fresh allocation would have, and the digest
//! pins (which compare pooled runs against cold runs byte for byte) enforce
//! it.
//!
//! Workspaces are deliberately `!Send`-ish in usage: each [`crate::FleetRunner`]
//! worker thread owns its own, so no synchronization ever touches the pool.

use crate::report::LiveNode;
use net_sim::NetScratch;
use std::cell::RefCell;
use std::rc::Rc;

/// One worker's reusable simulation state (see the module docs).
///
/// The obs counters `workspace.reuses` / `workspace.rebuilds` (emitted by
/// the execution path) attribute how often slots were recycled vs built;
/// `alloc.log_buffers_pooled` tracks the recycled log-buffer pool depth.
#[derive(Default)]
pub struct SimWorkspace {
    /// The torn-down network's allocations (engine containers, log buffers,
    /// spatial index).
    pub(crate) net: NetScratch,
    /// Parked per-node analysis slots, reusable once their sink closures are
    /// gone (`Rc::strong_count == 1`).
    pub(crate) slots: Vec<Rc<RefCell<LiveNode>>>,
}

impl std::fmt::Debug for SimWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimWorkspace")
            .field("slots", &self.slots.len())
            .field("log_buffers", &self.net.log_buffers())
            .finish()
    }
}

impl SimWorkspace {
    /// An empty workspace — the first scenario through it allocates
    /// normally and seeds the pool.
    pub fn new() -> Self {
        SimWorkspace::default()
    }

    /// How many per-node analysis slots are currently parked.
    pub fn pooled_slots(&self) -> usize {
        self.slots.len()
    }

    /// How many recycled log-buffer allocations the pool currently holds.
    pub fn pooled_log_buffers(&self) -> usize {
        self.net.log_buffers()
    }
}
