//! Composable sweep grids: a plain-data description of scenario axes that
//! expands to a [`Scenario`] batch, parseable from a simple config file.
//!
//! A grid is a list of *cells*.  Each cell names an application workload and
//! optional axes — seeds × channels × durations × mediums — and expands to
//! the cross-product of those axes (seeds outermost, mediums innermost, the
//! order the hard-coded paper grids always used).  The whole grid is the
//! concatenation of its cells' expansions, in file order, so a checked-in
//! grid file reproduces a hand-written `Vec<Scenario>` scenario-for-scenario
//! — the digest-pin tests hold a config file to exactly that standard.
//!
//! # File format
//!
//! A line-oriented `key = value` format with `[section]` headers; `#` starts
//! a comment.  One `[grid]` section holds the defaults, every `[cell.NAME]`
//! section describes one cell:
//!
//! ```text
//! # A seed × channel LPL sweep plus one path-loss Bounce cell.
//! [grid]
//! name = example
//! seconds = 14
//!
//! [cell.lpl]
//! app = lpl
//! interference = 0.18
//! seeds = 1..4
//! channels = 17, 26
//! name = lpl_ch{channel}_seed{seed}
//!
//! [cell.hidden_pairs]
//! app = bounce_pairs
//! pairs = 4
//! seeds = 1, 2
//! medium = path_loss
//! placement = line 30 5
//! cca_dbm = -100
//! name = pairs_{nodes}n_seed{seed}
//! ```
//!
//! Cell keys: `app` (`lpl`, `blink`, `bounce`, `bounce_pairs`, `idle`),
//! `name` (a template over `{seed}`, `{channel}`, `{seconds}`, `{medium}`,
//! `{nodes}`, `{pairs}`), the axes `seeds` (`1..8` or `1, 2, 7`),
//! `channels`, `seconds` (a list makes it an axis), `medium` (a list of
//! kinds makes it an axis), the app knobs `interference` (LPL duty) and
//! `pairs`, and the medium geometry: `range_m`, `positions`
//! (`id:x,y ...`), `placement` (`line SPACING GAP`, resolved against
//! `pairs`), `base` (`unit_disk` or `path_loss`, for mobility), `trace`
//! (`node: T:x,y ...` where `T` is `50%` of the cell duration, `3s`, or
//! `1500000us`; repeatable), and the path-loss model parameters
//! (`tx_power_dbm`, `ref_loss_db`, `exponent`, `shadowing_sigma_db`,
//! `sensitivity_dbm`, `capture_margin_db`, `cca_dbm`).
//!
//! Errors carry the offending line number and name the expected input — a
//! typo'd key or a malformed value fails loudly, never silently.
//!
//! # Example
//!
//! ```
//! use quanto_fleet::GridSpec;
//!
//! let text = "
//! [grid]
//! name = doc
//! seconds = 2
//!
//! [cell.lpl]
//! app = lpl
//! interference = 0.18
//! seeds = 1..2
//! channels = 17, 26
//! name = lpl_ch{channel}_seed{seed}
//! ";
//! let mut grid = GridSpec::parse(text).unwrap();
//! assert_eq!(grid.expand().unwrap().len(), 4); // 2 seeds × 2 channels
//! grid.override_seed_count(1); // what `fleet_sweep --seeds 1` applies
//! let batch = grid.expand().unwrap();
//! assert_eq!(batch.len(), 2);
//! assert_eq!(batch[0].name, "lpl_ch17_seed1");
//! ```

use crate::scenario::{GeometrySpec, MediumSpec, PathLossSpec, Scenario, TraceSpec};
use hw_model::SimDuration;
use std::fmt;

/// Why a grid file failed to parse or expand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GridError {
    /// 1-based line of the offending input, when attributable to one.
    pub line: Option<usize>,
    /// What went wrong and what was expected.
    pub message: String,
}

impl GridError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        GridError {
            line: Some(line),
            message: message.into(),
        }
    }

    fn general(message: impl Into<String>) -> Self {
        GridError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for GridError {}

/// Which application a cell runs — the grid-level mirror of
/// [`crate::AppSpec`], carrying the knobs the axes do not cover.
#[derive(Debug, Clone, PartialEq)]
pub enum CellApp {
    /// A low-power-listening node under `interference` duty (0 disables the
    /// access point).
    Lpl {
        /// Fraction of slots the 802.11 interferer is on the air.
        interference: f64,
    },
    /// The Blink profiling workload.
    Blink,
    /// The two-node Bounce exchange.
    Bounce,
    /// `pairs` side-by-side Bounce exchanges.
    BouncePairs {
        /// How many two-node exchanges run side by side (1–32767).
        pairs: u16,
    },
    /// The idle single-node baseline.
    Idle,
}

/// The geometric model under a mobility cell.
#[derive(Debug, Clone, PartialEq)]
pub enum BaseGeometry {
    /// Hard-range unit disk.
    UnitDisk {
        /// Communication range, meters.
        range_m: f64,
    },
    /// Log-distance path loss.
    PathLoss(PathLossSpec),
}

/// How a cell places its nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum Placement {
    /// Explicit `(node id, x, y)` coordinates.
    Explicit(Vec<(u32, f64, f64)>),
    /// Bounce pairs strung along a line: pair `k`'s initiator sits at
    /// `spacing·k`, its partner `gap` meters further.  Resolved against the
    /// cell's `pairs` at expansion time, so a pairs override rescales the
    /// layout.
    Line {
        /// Distance between consecutive pairs, meters.
        spacing_m: f64,
        /// Distance between the two partners of a pair, meters.
        gap_m: f64,
    },
}

/// One waypoint time in a mobility trace template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceTime {
    /// A percentage of the cell's duration (resolved at expansion).
    Percent(u64),
    /// An absolute offset in microseconds.
    Micros(u64),
}

/// One node's mobility trace as grid data: waypoint times may be relative
/// to the (possibly swept) cell duration.
pub type TraceTemplate = (u32, Vec<(TraceTime, f64, f64)>);

/// Which radio medium kind a cell sweeps through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediumKind {
    /// Explicit-topology ideal ether.
    Ideal,
    /// Positions plus a hard range.
    UnitDisk,
    /// Log-distance path loss.
    PathLoss,
    /// Waypoint traces over a geometric base.
    Mobility,
}

impl MediumKind {
    fn parse(token: &str) -> Option<MediumKind> {
        Some(match token {
            "ideal" => MediumKind::Ideal,
            "unit_disk" => MediumKind::UnitDisk,
            "path_loss" => MediumKind::PathLoss,
            "mobility" => MediumKind::Mobility,
            _ => return None,
        })
    }

    fn name(&self) -> &'static str {
        match self {
            MediumKind::Ideal => "ideal",
            MediumKind::UnitDisk => "unit_disk",
            MediumKind::PathLoss => "path_loss",
            MediumKind::Mobility => "mobility",
        }
    }
}

/// One cell of a grid: an app crossed with its axes.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// The section label (for error messages).
    pub label: String,
    /// The application workload.
    pub app: CellApp,
    /// Scenario-name template (`{seed}`, `{channel}`, `{seconds}`,
    /// `{medium}`, `{nodes}`, `{pairs}`); `None` derives a name from the
    /// app and axes.
    pub name: Option<String>,
    /// The seed axis; empty runs the app's default (paper) seeding.
    pub seeds: Vec<u64>,
    /// The channel axis; empty keeps the app's default channel.
    pub channels: Vec<u8>,
    /// The duration axis, seconds; empty inherits the grid default.
    pub seconds: Vec<f64>,
    /// The medium axis; empty means ideal.
    pub mediums: Vec<MediumKind>,
    /// Geometry shared by the cell's geometric mediums.
    pub range_m: Option<f64>,
    /// Node placement shared by the cell's geometric mediums.
    pub placement: Placement,
    /// The path-loss model (used by `path_loss` and a path-loss mobility
    /// base).
    pub path_loss: PathLossSpec,
    /// The mobility base geometry (`None` when the cell has no mobility
    /// medium).
    pub base: Option<BaseGeometry>,
    /// Mobility waypoint traces.
    pub traces: Vec<TraceTemplate>,
}

/// A whole sweep grid: defaults plus cells, expandable to a scenario batch.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Display name of the grid.
    pub name: String,
    /// Default cell duration, seconds.
    pub seconds: f64,
    /// The cells, in file order.
    pub cells: Vec<CellSpec>,
}

impl GridSpec {
    /// Parses a grid config file (see the module docs for the format).
    pub fn parse(text: &str) -> Result<GridSpec, GridError> {
        Parser::new().parse(text)
    }

    /// Replaces the grid-level default duration (cells with their own
    /// `seconds` keep them) — the `--seconds` override.
    pub fn override_seconds(&mut self, seconds: f64) {
        self.seconds = seconds;
    }

    /// Replaces every non-empty seed axis with `1..=n` — the `--seeds`
    /// override.  Cells without a seed axis stay on their default seeding.
    pub fn override_seed_count(&mut self, n: u64) {
        for cell in &mut self.cells {
            if !cell.seeds.is_empty() {
                cell.seeds = (1..=n).collect();
            }
        }
    }

    /// Replaces the pair count of every `bounce_pairs` cell — the
    /// `--stress PAIRS` override.
    pub fn override_pairs(&mut self, pairs: u16) {
        for cell in &mut self.cells {
            if let CellApp::BouncePairs { pairs: p } = &mut cell.app {
                *p = pairs;
            }
        }
    }

    /// Expands the grid to its scenario batch: every cell's axis
    /// cross-product (seeds ⊃ channels ⊃ durations ⊃ mediums), cells in
    /// order.  Duplicate scenario names are an error — they would silently
    /// shadow each other in report lookups.
    pub fn expand(&self) -> Result<Vec<Scenario>, GridError> {
        if self.seconds <= 0.0 {
            return Err(GridError::general(format!(
                "grid seconds must be positive, got {}",
                self.seconds
            )));
        }
        let mut batch = Vec::new();
        for cell in &self.cells {
            cell.expand_into(self.seconds, &mut batch)?;
        }
        let mut seen = std::collections::HashSet::new();
        for s in &batch {
            if !seen.insert(s.name.clone()) {
                return Err(GridError::general(format!(
                    "duplicate scenario name {:?} — give the cells distinct name templates \
                     (placeholders: {{seed}}, {{channel}}, {{seconds}}, {{medium}})",
                    s.name
                )));
            }
        }
        Ok(batch)
    }
}

impl CellSpec {
    fn err(&self, message: impl Into<String>) -> GridError {
        GridError::general(format!("cell {:?}: {}", self.label, message.into()))
    }

    /// The cell's node count (for `{nodes}` and line placements).
    fn node_count(&self) -> u32 {
        match self.app {
            CellApp::Lpl { .. } | CellApp::Blink | CellApp::Idle => 1,
            CellApp::Bounce => 2,
            CellApp::BouncePairs { pairs } => 2 * pairs as u32,
        }
    }

    fn positions(&self) -> Result<Vec<(u32, f64, f64)>, GridError> {
        match &self.placement {
            Placement::Explicit(list) => Ok(list.clone()),
            Placement::Line { spacing_m, gap_m } => {
                let CellApp::BouncePairs { pairs } = self.app else {
                    return Err(self.err(
                        "placement = line needs app = bounce_pairs (the line is built \
                         from the pair count)",
                    ));
                };
                let mut positions = Vec::with_capacity(2 * pairs as usize);
                for k in 0..pairs as u32 {
                    let x = spacing_m * k as f64;
                    positions.push((2 * k + 1, x, 0.0));
                    positions.push((2 * k + 2, x + gap_m, 0.0));
                }
                Ok(positions)
            }
        }
    }

    fn medium_spec(
        &self,
        kind: MediumKind,
        duration: SimDuration,
    ) -> Result<MediumSpec, GridError> {
        let spec = match kind {
            MediumKind::Ideal => MediumSpec::Ideal,
            MediumKind::UnitDisk => MediumSpec::UnitDisk {
                range_m: self
                    .range_m
                    .ok_or_else(|| self.err("medium = unit_disk needs range_m"))?,
                positions: self.positions()?,
            },
            MediumKind::PathLoss => MediumSpec::PathLoss {
                model: self.path_loss.clone(),
                positions: self.positions()?,
            },
            MediumKind::Mobility => {
                let base = match self.base.as_ref().ok_or_else(|| {
                    self.err("medium = mobility needs base = unit_disk or path_loss")
                })? {
                    BaseGeometry::UnitDisk { range_m } => {
                        GeometrySpec::UnitDisk { range_m: *range_m }
                    }
                    BaseGeometry::PathLoss(spec) => GeometrySpec::PathLoss(spec.clone()),
                };
                let us = duration.as_micros();
                let traces: Vec<TraceSpec> = self
                    .traces
                    .iter()
                    .map(|(node, waypoints)| {
                        let resolved = waypoints
                            .iter()
                            .map(|(t, x, y)| {
                                let at = match t {
                                    TraceTime::Percent(p) => us * p / 100,
                                    TraceTime::Micros(abs) => *abs,
                                };
                                (at, *x, *y)
                            })
                            .collect();
                        (*node, resolved)
                    })
                    .collect();
                MediumSpec::Mobility {
                    base,
                    positions: self.positions()?,
                    traces,
                }
            }
        };
        Ok(spec)
    }

    fn expand_into(
        &self,
        default_seconds: f64,
        batch: &mut Vec<Scenario>,
    ) -> Result<(), GridError> {
        for &channel in &self.channels {
            if !(11..=26).contains(&channel) {
                return Err(self.err(format!("802.15.4 channels are 11–26, got {channel}")));
            }
        }
        let seeds: Vec<Option<u64>> = if self.seeds.is_empty() {
            vec![None]
        } else {
            self.seeds.iter().copied().map(Some).collect()
        };
        let channels: Vec<Option<u8>> = if self.channels.is_empty() {
            vec![None]
        } else {
            self.channels.iter().copied().map(Some).collect()
        };
        let durations: Vec<f64> = if self.seconds.is_empty() {
            vec![default_seconds]
        } else {
            self.seconds.clone()
        };
        let mediums: Vec<MediumKind> = if self.mediums.is_empty() {
            vec![MediumKind::Ideal]
        } else {
            self.mediums.clone()
        };
        for secs in &durations {
            if *secs <= 0.0 {
                return Err(self.err(format!("seconds must be positive, got {secs}")));
            }
        }
        for &seed in &seeds {
            for &channel in &channels {
                for &secs in &durations {
                    let duration = SimDuration::from_micros((secs * 1e6).round() as u64);
                    for &medium in &mediums {
                        batch.push(self.build(seed, channel, duration, medium)?);
                    }
                }
            }
        }
        Ok(())
    }

    fn build(
        &self,
        seed: Option<u64>,
        channel: Option<u8>,
        duration: SimDuration,
        medium: MediumKind,
    ) -> Result<Scenario, GridError> {
        let mut scenario = match self.app {
            CellApp::Lpl { interference } => {
                Scenario::lpl(channel.unwrap_or(26), interference, duration)
            }
            CellApp::Blink => Scenario::blink(duration),
            CellApp::Bounce => Scenario::bounce(duration),
            CellApp::BouncePairs { pairs } => Scenario::bounce_pairs(pairs, duration),
            CellApp::Idle => Scenario::idle(duration),
        };
        if let Some(c) = channel {
            scenario.channel = c;
        }
        if let Some(s) = seed {
            scenario = scenario.with_seed(s);
        }
        if medium != MediumKind::Ideal {
            scenario = scenario.with_medium(self.medium_spec(medium, duration)?);
        }
        let name = match &self.name {
            Some(template) => self.render_name(template, seed, channel, duration, medium)?,
            None => {
                let mut name = scenario.name.clone();
                if let Some(s) = seed {
                    name.push_str(&format!("_seed{s}"));
                }
                name
            }
        };
        Ok(scenario.named(name))
    }

    fn render_name(
        &self,
        template: &str,
        seed: Option<u64>,
        channel: Option<u8>,
        duration: SimDuration,
        medium: MediumKind,
    ) -> Result<String, GridError> {
        let mut out = String::with_capacity(template.len());
        let mut rest = template;
        while let Some(open) = rest.find('{') {
            out.push_str(&rest[..open]);
            let Some(close) = rest[open..].find('}') else {
                return Err(self.err(format!("unclosed {{ in name template {template:?}")));
            };
            let key = &rest[open + 1..open + close];
            match key {
                "seed" => match seed {
                    Some(s) => out.push_str(&s.to_string()),
                    None => {
                        return Err(self.err(format!(
                            "name template {template:?} uses {{seed}} but the cell has no \
                             seeds axis"
                        )))
                    }
                },
                "channel" => {
                    let c = channel.unwrap_or(26);
                    out.push_str(&c.to_string());
                }
                "seconds" => out.push_str(&format!("{}", duration.as_secs_f64())),
                "medium" => out.push_str(medium.name()),
                "nodes" => out.push_str(&self.node_count().to_string()),
                "pairs" => match self.app {
                    CellApp::BouncePairs { pairs } => out.push_str(&pairs.to_string()),
                    _ => {
                        return Err(self.err(format!(
                            "name template {template:?} uses {{pairs}} but the app is not \
                             bounce_pairs"
                        )))
                    }
                },
                other => {
                    return Err(self.err(format!(
                        "unknown placeholder {{{other}}} in name template {template:?} \
                         (expected seed, channel, seconds, medium, nodes or pairs)"
                    )))
                }
            }
            rest = &rest[open + close + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

/// A cell section mid-parse: every key optional until assembly.
struct RawCell {
    label: String,
    header_line: usize,
    app: Option<(String, usize)>,
    name: Option<String>,
    seeds: Vec<u64>,
    channels: Vec<u8>,
    seconds: Vec<f64>,
    interference: Option<f64>,
    pairs: Option<u16>,
    mediums: Vec<MediumKind>,
    base: Option<(String, usize)>,
    range_m: Option<f64>,
    positions: Option<Vec<(u32, f64, f64)>>,
    placement_line: Option<(f64, f64)>,
    traces: Vec<TraceTemplate>,
    path_loss: PathLossSpec,
    path_loss_touched: bool,
}

impl RawCell {
    fn new(label: String, header_line: usize) -> Self {
        RawCell {
            label,
            header_line,
            app: None,
            name: None,
            seeds: Vec::new(),
            channels: Vec::new(),
            seconds: Vec::new(),
            interference: None,
            pairs: None,
            mediums: Vec::new(),
            base: None,
            range_m: None,
            positions: None,
            placement_line: None,
            traces: Vec::new(),
            path_loss: PathLossSpec::default(),
            path_loss_touched: false,
        }
    }

    fn assemble(self) -> Result<CellSpec, GridError> {
        let line = self.header_line;
        let err = |msg: String| GridError::at(line, format!("cell {:?}: {msg}", self.label));
        let Some((app_token, app_line)) = self.app else {
            return Err(err(
                "missing app (expected app = lpl | blink | bounce | bounce_pairs | idle)".into(),
            ));
        };
        let app = match app_token.as_str() {
            "lpl" => CellApp::Lpl {
                interference: self.interference.unwrap_or(0.0),
            },
            "blink" => CellApp::Blink,
            "bounce" => CellApp::Bounce,
            "bounce_pairs" => {
                let pairs = self
                    .pairs
                    .ok_or_else(|| err("app = bounce_pairs needs pairs = N (1..=32767)".into()))?;
                CellApp::BouncePairs { pairs }
            }
            "idle" => CellApp::Idle,
            other => {
                return Err(GridError::at(
                    app_line,
                    format!(
                        "cell {:?}: unknown app {other:?} (expected lpl, blink, bounce, \
                         bounce_pairs or idle)",
                        self.label
                    ),
                ))
            }
        };
        if self.interference.is_some() && !matches!(app, CellApp::Lpl { .. }) {
            return Err(err("interference only applies to app = lpl".into()));
        }
        if self.pairs.is_some() && !matches!(app, CellApp::BouncePairs { .. }) {
            return Err(err("pairs only applies to app = bounce_pairs".into()));
        }
        let uses_mobility = self.mediums.contains(&MediumKind::Mobility);
        let base = match (&self.base, uses_mobility) {
            (Some((token, base_line)), true) => Some(match token.as_str() {
                "unit_disk" => BaseGeometry::UnitDisk {
                    range_m: self
                        .range_m
                        .ok_or_else(|| err("base = unit_disk needs range_m".into()))?,
                },
                "path_loss" => BaseGeometry::PathLoss(self.path_loss.clone()),
                other => {
                    return Err(GridError::at(
                        *base_line,
                        format!(
                            "cell {:?}: unknown mobility base {other:?} (expected unit_disk \
                             or path_loss)",
                            self.label
                        ),
                    ))
                }
            }),
            (Some(_), false) => {
                return Err(err("base only applies to medium = mobility".into()));
            }
            (None, _) => None,
        };
        if !self.traces.is_empty() && !uses_mobility {
            return Err(err("trace only applies to medium = mobility".into()));
        }
        let geometric = self.mediums.iter().any(|m| *m != MediumKind::Ideal);
        if !geometric {
            if self.range_m.is_some() {
                return Err(err(
                    "range_m given but no geometric medium (add medium = unit_disk or \
                     mobility)"
                        .into(),
                ));
            }
            if self.path_loss_touched {
                return Err(err(
                    "path-loss parameters given but no path_loss medium".into()
                ));
            }
            if self.positions.is_some() || self.placement_line.is_some() {
                return Err(err(
                    "positions/placement given but no geometric medium".into()
                ));
            }
        }
        let placement = match (self.positions, self.placement_line) {
            (Some(_), Some(_)) => {
                return Err(err("give either positions or placement, not both".into()))
            }
            (Some(list), None) => Placement::Explicit(list),
            (None, Some((spacing_m, gap_m))) => Placement::Line { spacing_m, gap_m },
            (None, None) => Placement::Explicit(Vec::new()),
        };
        Ok(CellSpec {
            label: self.label,
            app,
            name: self.name,
            seeds: self.seeds,
            channels: self.channels,
            seconds: self.seconds,
            mediums: self.mediums,
            range_m: self.range_m,
            placement,
            path_loss: self.path_loss,
            base,
            traces: self.traces,
        })
    }
}

enum Section {
    None,
    Grid,
    Cell(Box<RawCell>),
}

struct Parser {
    name: Option<String>,
    seconds: Option<f64>,
    cells: Vec<CellSpec>,
    section: Section,
}

impl Parser {
    fn new() -> Self {
        Parser {
            name: None,
            seconds: None,
            cells: Vec::new(),
            section: Section::None,
        }
    }

    fn close_section(&mut self) -> Result<(), GridError> {
        if let Section::Cell(raw) = std::mem::replace(&mut self.section, Section::None) {
            self.cells.push(raw.assemble()?);
        }
        Ok(())
    }

    fn parse(mut self, text: &str) -> Result<GridSpec, GridError> {
        for (i, raw_line) in text.lines().enumerate() {
            let n = i + 1;
            let line = raw_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(header) = header.strip_suffix(']') else {
                    return Err(GridError::at(
                        n,
                        format!("malformed section header {line:?}"),
                    ));
                };
                self.close_section()?;
                if header == "grid" {
                    self.section = Section::Grid;
                } else if let Some(label) = header.strip_prefix("cell.") {
                    if label.is_empty() {
                        return Err(GridError::at(n, "empty cell label in [cell.]".to_string()));
                    }
                    self.section = Section::Cell(Box::new(RawCell::new(label.to_string(), n)));
                } else {
                    return Err(GridError::at(
                        n,
                        format!("unknown section [{header}] (expected [grid] or [cell.NAME])"),
                    ));
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(GridError::at(
                    n,
                    format!("expected key = value or a [section] header, got {line:?}"),
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            if value.is_empty() {
                return Err(GridError::at(n, format!("key {key:?} has an empty value")));
            }
            match &mut self.section {
                Section::None => {
                    return Err(GridError::at(
                        n,
                        format!("key {key:?} outside any section (start with [grid])"),
                    ))
                }
                Section::Grid => match key {
                    "name" => self.name = Some(value.to_string()),
                    "seconds" => self.seconds = Some(parse_f64(n, key, value)?),
                    other => {
                        return Err(GridError::at(
                            n,
                            format!("unknown [grid] key {other:?} (expected name or seconds)"),
                        ))
                    }
                },
                Section::Cell(cell) => parse_cell_key(cell, n, key, value)?,
            }
        }
        self.close_section()?;
        let grid = GridSpec {
            name: self.name.unwrap_or_else(|| "grid".to_string()),
            seconds: self.seconds.unwrap_or(14.0),
            cells: self.cells,
        };
        if grid.cells.is_empty() {
            return Err(GridError::general(
                "grid has no [cell.NAME] sections — nothing to run",
            ));
        }
        Ok(grid)
    }
}

fn parse_cell_key(cell: &mut RawCell, n: usize, key: &str, value: &str) -> Result<(), GridError> {
    match key {
        "app" => cell.app = Some((value.to_string(), n)),
        "name" => cell.name = Some(value.to_string()),
        "seeds" => cell.seeds = parse_u64_list(n, key, value)?,
        "channels" => {
            cell.channels = parse_u64_list(n, key, value)?
                .into_iter()
                .map(|c| {
                    u8::try_from(c).map_err(|_| {
                        GridError::at(n, format!("channel {c} does not fit in a byte"))
                    })
                })
                .collect::<Result<_, _>>()?
        }
        "seconds" => {
            cell.seconds = value
                .split(',')
                .map(|tok| parse_f64(n, key, tok.trim()))
                .collect::<Result<_, _>>()?
        }
        "interference" => {
            let duty = parse_f64(n, key, value)?;
            if !(0.0..=1.0).contains(&duty) {
                return Err(GridError::at(
                    n,
                    format!("interference is a duty fraction in 0..=1, got {duty}"),
                ));
            }
            cell.interference = Some(duty);
        }
        "pairs" => {
            let pairs = parse_u64(n, key, value)?;
            if !(1..=32767).contains(&pairs) {
                return Err(GridError::at(
                    n,
                    format!("pairs must be in 1..=32767, got {pairs}"),
                ));
            }
            cell.pairs = Some(pairs as u16);
        }
        "medium" => {
            cell.mediums = value
                .split(',')
                .map(|tok| {
                    let tok = tok.trim();
                    MediumKind::parse(tok).ok_or_else(|| {
                        GridError::at(
                            n,
                            format!(
                                "unknown medium {tok:?} (expected ideal, unit_disk, path_loss \
                                 or mobility)"
                            ),
                        )
                    })
                })
                .collect::<Result<_, _>>()?
        }
        "base" => cell.base = Some((value.to_string(), n)),
        "range_m" => cell.range_m = Some(parse_f64(n, key, value)?),
        "positions" => cell.positions = Some(parse_positions(n, value)?),
        "placement" => {
            let tokens: Vec<&str> = value.split_whitespace().collect();
            match tokens.as_slice() {
                ["line", spacing, gap] => {
                    cell.placement_line =
                        Some((parse_f64(n, key, spacing)?, parse_f64(n, key, gap)?))
                }
                _ => {
                    return Err(GridError::at(
                        n,
                        format!("placement must be `line SPACING_M GAP_M`, got {value:?}"),
                    ))
                }
            }
        }
        "trace" => cell.traces.push(parse_trace(n, value)?),
        "tx_power_dbm" | "ref_loss_db" | "exponent" | "shadowing_sigma_db" | "sensitivity_dbm"
        | "capture_margin_db" | "cca_dbm" => {
            let v = parse_f64(n, key, value)?;
            let p = &mut cell.path_loss;
            match key {
                "tx_power_dbm" => p.tx_power_dbm = v,
                "ref_loss_db" => p.ref_loss_db = v,
                "exponent" => p.exponent = v,
                "shadowing_sigma_db" => p.shadowing_sigma_db = v,
                "sensitivity_dbm" => p.sensitivity_dbm = v,
                "capture_margin_db" => p.capture_margin_db = v,
                _ => p.cca_threshold_dbm = Some(v),
            }
            cell.path_loss_touched = true;
        }
        other => {
            return Err(GridError::at(
                n,
                format!(
                    "unknown cell key {other:?} (expected app, name, seeds, channels, seconds, \
                     interference, pairs, medium, base, range_m, positions, placement, trace, \
                     or a path-loss parameter)"
                ),
            ))
        }
    }
    Ok(())
}

fn parse_f64(n: usize, key: &str, value: &str) -> Result<f64, GridError> {
    value
        .parse()
        .map_err(|_| GridError::at(n, format!("{key} expects a number, got {value:?}")))
}

fn parse_u64(n: usize, key: &str, value: &str) -> Result<u64, GridError> {
    value
        .parse()
        .map_err(|_| GridError::at(n, format!("{key} expects an integer, got {value:?}")))
}

/// `1..4` (inclusive range) or `1, 2, 7`.
fn parse_u64_list(n: usize, key: &str, value: &str) -> Result<Vec<u64>, GridError> {
    if let Some((lo, hi)) = value.split_once("..") {
        let lo = parse_u64(n, key, lo.trim())?;
        let hi = parse_u64(n, key, hi.trim())?;
        if hi < lo {
            return Err(GridError::at(
                n,
                format!("{key} range {lo}..{hi} is empty (ranges are inclusive, low..high)"),
            ));
        }
        return Ok((lo..=hi).collect());
    }
    value
        .split(',')
        .map(|tok| parse_u64(n, key, tok.trim()))
        .collect()
}

/// `1:0,0 4:8.5,0` — whitespace-separated `id:x,y` placements.
fn parse_positions(n: usize, value: &str) -> Result<Vec<(u32, f64, f64)>, GridError> {
    value
        .split_whitespace()
        .map(|tok| {
            let bad = || GridError::at(n, format!("positions expect `id:x,y` tokens, got {tok:?}"));
            let (id, xy) = tok.split_once(':').ok_or_else(bad)?;
            let (x, y) = xy.split_once(',').ok_or_else(bad)?;
            let id: u32 = id.parse().map_err(|_| bad())?;
            if id == 0 || id > quanto_core::NodeId::MAX_LABEL_ORIGIN {
                return Err(GridError::at(
                    n,
                    format!(
                        "node id {id} is out of range (usable ids are 1..={}; ids above 254 \
                         switch the cell to the v2 log encoding)",
                        quanto_core::NodeId::MAX_LABEL_ORIGIN
                    ),
                ));
            }
            Ok((
                id,
                x.parse().map_err(|_| bad())?,
                y.parse().map_err(|_| bad())?,
            ))
        })
        .collect()
}

/// `4: 0%:5,0 50%:30,0 3s:9,0 1500000us:0,0` — one node's waypoints.
fn parse_trace(n: usize, value: &str) -> Result<TraceTemplate, GridError> {
    let (node, rest) = value.split_once(':').ok_or_else(|| {
        GridError::at(n, format!("trace expects `node: T:x,y ...`, got {value:?}"))
    })?;
    let node: u32 = node
        .trim()
        .parse()
        .map_err(|_| GridError::at(n, format!("trace node id must be an integer, got {node:?}")))?;
    let mut waypoints = Vec::new();
    for tok in rest.split_whitespace() {
        let bad = || {
            GridError::at(
                n,
                format!(
                    "trace waypoints are `T:x,y` with T like `50%`, `3s` or `1500000us`, \
                     got {tok:?}"
                ),
            )
        };
        let (t, xy) = tok.split_once(':').ok_or_else(bad)?;
        let (x, y) = xy.split_once(',').ok_or_else(bad)?;
        let time = if let Some(p) = t.strip_suffix('%') {
            let p: u64 = p.parse().map_err(|_| bad())?;
            if p > 100 {
                return Err(GridError::at(
                    n,
                    format!("trace waypoint {p}% is past the end of the run"),
                ));
            }
            TraceTime::Percent(p)
        } else if let Some(us) = t.strip_suffix("us") {
            TraceTime::Micros(us.parse().map_err(|_| bad())?)
        } else if let Some(s) = t.strip_suffix('s') {
            let secs: f64 = s.parse().map_err(|_| bad())?;
            TraceTime::Micros((secs * 1e6).round() as u64)
        } else {
            return Err(bad());
        };
        waypoints.push((
            time,
            x.parse().map_err(|_| bad())?,
            y.parse().map_err(|_| bad())?,
        ));
    }
    if waypoints.is_empty() {
        return Err(GridError::at(n, "trace has no waypoints".to_string()));
    }
    Ok((node, waypoints))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_grid_parses_and_expands() {
        let grid = GridSpec::parse(
            "[grid]\nname = tiny\nseconds = 2\n\n[cell.lpl]\napp = lpl\ninterference = 0.18\n\
             seeds = 1..2\nchannels = 17, 26\nname = lpl_ch{channel}_seed{seed}\n",
        )
        .unwrap();
        assert_eq!(grid.name, "tiny");
        let batch = grid.expand().unwrap();
        assert_eq!(batch.len(), 4);
        // Seeds outermost, channels inner — the paper grids' order.
        assert_eq!(batch[0].name, "lpl_ch17_seed1");
        assert_eq!(batch[1].name, "lpl_ch26_seed1");
        assert_eq!(batch[2].name, "lpl_ch17_seed2");
        assert!(batch.iter().all(|s| s.seed_nodes));
    }

    #[test]
    fn medium_and_duration_axes_expand_innermost() {
        let grid = GridSpec::parse(
            "[grid]\nseconds = 1\n[cell.b]\napp = bounce\nseconds = 1, 2\n\
             medium = ideal, unit_disk\nrange_m = 10\npositions = 1:0,0 4:8,0\n\
             name = b_{seconds}s_{medium}\n",
        )
        .unwrap();
        let names: Vec<String> = grid.expand().unwrap().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            [
                "b_1s_ideal",
                "b_1s_unit_disk",
                "b_2s_ideal",
                "b_2s_unit_disk"
            ]
        );
    }

    #[test]
    fn line_placement_reproduces_the_stress_layout() {
        let grid = GridSpec::parse(
            "[grid]\nseconds = 3\n[cell.s]\napp = bounce_pairs\npairs = 2\nseeds = 7, 9\n\
             medium = path_loss\nplacement = line 30 5\n\
             name = path_loss_stress_{nodes}n_seed{seed}\n",
        )
        .unwrap();
        let batch = grid.expand().unwrap();
        let expected: Vec<Scenario> = [7, 9]
            .iter()
            .map(|&seed| crate::scenarios::path_loss_stress(2, seed, SimDuration::from_secs(3)))
            .collect();
        assert_eq!(batch, expected);
    }

    #[test]
    fn percent_traces_resolve_against_the_cell_duration() {
        let grid = GridSpec::parse(
            "[grid]\nseconds = 4\n[cell.m]\napp = bounce\nmedium = mobility\nbase = unit_disk\n\
             range_m = 10\npositions = 1:0,0\ntrace = 4: 0%:5,0 50%:30,0 100%:5,0\n",
        )
        .unwrap();
        let batch = grid.expand().unwrap();
        let MediumSpec::Mobility { traces, .. } = &batch[0].medium else {
            panic!("expected a mobility medium, got {:?}", batch[0].medium);
        };
        assert_eq!(
            traces[0],
            (
                4,
                vec![(0, 5.0, 0.0), (2_000_000, 30.0, 0.0), (4_000_000, 5.0, 0.0)]
            )
        );
    }

    #[test]
    fn overrides_rewrite_the_axes() {
        let mut grid = GridSpec::parse(
            "[grid]\nseconds = 14\n[cell.lpl]\napp = lpl\nseeds = 1..4\n\
             name = lpl_ch{channel}_seed{seed}\n[cell.blink]\napp = blink\n",
        )
        .unwrap();
        grid.override_seconds(2.0);
        grid.override_seed_count(2);
        let batch = grid.expand().unwrap();
        assert_eq!(batch.len(), 3);
        assert!(batch
            .iter()
            .all(|s| s.duration == SimDuration::from_secs(2)));
        assert_eq!(batch[1].name, "lpl_ch26_seed2");
        assert_eq!(batch[2].name, "blink_2s", "blink derives its default name");
    }

    #[test]
    fn errors_carry_line_numbers_and_expectations() {
        let cases: &[(&str, &str, Option<usize>)] = &[
            ("[grid]\nsecnods = 2\n", "unknown [grid] key", Some(2)),
            (
                "[grid]\nseconds = 2\n[cell.x]\napp = warp\n",
                "unknown app",
                Some(4),
            ),
            (
                "[grid]\n[cell.x]\napp = lpl\nrang_m = 4\n",
                "unknown cell key",
                Some(4),
            ),
            (
                "[grid]\n[cell.x]\napp = bounce\ninterference = 0.5\n",
                "only applies to app = lpl",
                Some(2),
            ),
            (
                "[grid]\n[cell.x]\napp = bounce_pairs\n",
                "needs pairs",
                Some(2),
            ),
            ("[grid]\nseconds = 2\n", "no [cell.NAME] sections", None),
            (
                "[grid]\n[cell.x]\napp = lpl\nseeds = 9..3\n",
                "range 9..3 is empty",
                Some(4),
            ),
            (
                "[grid]\n[cell.x]\napp = bounce\nmedium = unit_disk\n",
                "needs range_m",
                None,
            ),
            (
                "[grid]\n[cell.x]\napp = lpl\nchannels = 5\n",
                "channels are 11–26",
                None,
            ),
        ];
        for (text, needle, line) in cases {
            let err = GridSpec::parse(text)
                .and_then(|g| g.expand().map(|_| ()))
                .expect_err(&format!("{text:?} must fail"));
            assert!(
                err.message.contains(needle),
                "error {err} should mention {needle:?}"
            );
            if let Some(line) = line {
                assert_eq!(err.line, Some(*line), "{err}");
            }
        }
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let grid = GridSpec::parse(
            "[grid]\nseconds = 1\n[cell.a]\napp = idle\nname = same\n\
             [cell.b]\napp = idle\nname = same\n",
        )
        .unwrap();
        let err = grid.expand().unwrap_err();
        assert!(err.message.contains("duplicate scenario name"), "{err}");
    }

    #[test]
    fn cca_and_path_loss_keys_reach_the_model() {
        let grid = GridSpec::parse(
            "[grid]\nseconds = 1\n[cell.p]\napp = bounce\nmedium = path_loss\n\
             positions = 1:0,0 4:10,0\nexponent = 2.5\ncca_dbm = -101\n",
        )
        .unwrap();
        let batch = grid.expand().unwrap();
        let MediumSpec::PathLoss { model, .. } = &batch[0].medium else {
            panic!("expected path loss");
        };
        assert_eq!(model.exponent, 2.5);
        assert_eq!(model.cca_threshold_dbm, Some(-101.0));
    }
}
