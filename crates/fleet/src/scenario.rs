//! Declarative simulation scenarios.
//!
//! A [`Scenario`] is plain data — which application runs, on which channel,
//! under which interference, for how long, with which seed — from which a
//! ready-to-run [`NetSim`] can be built on any thread.  The paper's
//! evaluation grid (LPL on channel 17 vs 26, Blink profiles, Bounce) and
//! arbitrary seed × channel × topology sweeps are all batches of these.

use hw_model::SimDuration;
use net_sim::{NetSim, Topology};
use os_sim::{NodeConfig, NullApp};
use quanto_apps::{
    lpl_node_config, paper_interference, BlinkApp, BounceApp, LplListenerApp,
    PAPER_INTERFERENCE_SEED,
};
use quanto_core::NodeId;

/// Which application a scenario's nodes run.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// One Blink node (three timers toggling three LEDs) — the calibration
    /// and profiling workload.
    Blink,
    /// One low-power-listening node; `interference_duty` is the fraction of
    /// time the 802.11b access point on Wi-Fi channel 6 transmits (zero
    /// removes the interferer).
    LplListener {
        /// Fraction of slots the access point is on the air (0.0–1.0).
        interference_duty: f64,
    },
    /// Two Bounce nodes (ids 1 and 4, as in the paper) ping-ponging packets.
    Bounce,
    /// One idle node — the DCO-calibration-only baseline.
    Idle,
}

/// Which pairs of nodes can hear each other.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// Every node hears every other node.
    Full,
    /// An explicit symmetric link list over raw node ids.
    Links(Vec<(u8, u8)>),
}

impl TopologySpec {
    fn to_topology(&self) -> Topology {
        match self {
            TopologySpec::Full => Topology::full(),
            TopologySpec::Links(pairs) => {
                let pairs: Vec<(NodeId, NodeId)> = pairs
                    .iter()
                    .map(|(a, b)| (NodeId(*a), NodeId(*b)))
                    .collect();
                Topology::from_links(&pairs)
            }
        }
    }
}

/// One cell of an experiment grid: everything needed to build and run a
/// simulation, as plain (thread-shareable) data.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name (also the key for looking results up in a report).
    pub name: String,
    /// The application(s) to run.
    pub app: AppSpec,
    /// The 802.15.4 channel every node's radio uses (11–26).
    pub channel: u8,
    /// Seed for the scenario's environment (the interferer's traffic
    /// pattern) and — when [`Scenario::seed_nodes`] — the nodes' own RNGs.
    pub seed: u64,
    /// When true, node RNG seeds derive from `seed` (for seed sweeps); when
    /// false, nodes keep their id-derived defaults, which makes a scenario
    /// byte-compatible with the legacy sequential drivers.
    pub seed_nodes: bool,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Connectivity between nodes.
    pub topology: TopologySpec,
}

impl Scenario {
    /// The Blink profiling scenario (one node, channel 26, no radio use).
    pub fn blink(duration: SimDuration) -> Self {
        Scenario {
            name: format!("blink_{}s", duration.as_secs_f64()),
            app: AppSpec::Blink,
            channel: 26,
            seed: 0,
            seed_nodes: false,
            duration,
            topology: TopologySpec::Full,
        }
    }

    /// The Figure 13 LPL scenario: a listener on `channel` under an 802.11b
    /// access point transmitting `interference_duty` of the time.  The
    /// default seed (7) reproduces the paper drivers byte-for-byte.
    pub fn lpl(channel: u8, interference_duty: f64, duration: SimDuration) -> Self {
        Scenario {
            name: format!("lpl_ch{channel}"),
            app: AppSpec::LplListener { interference_duty },
            channel,
            seed: PAPER_INTERFERENCE_SEED,
            seed_nodes: false,
            duration,
            topology: TopologySpec::Full,
        }
    }

    /// The Bounce scenario: nodes 1 and 4 exchanging packets.
    pub fn bounce(duration: SimDuration) -> Self {
        Scenario {
            name: format!("bounce_{}s", duration.as_secs_f64()),
            app: AppSpec::Bounce,
            channel: 26,
            seed: 0,
            seed_nodes: false,
            duration,
            topology: TopologySpec::Full,
        }
    }

    /// An idle single-node baseline.
    pub fn idle(duration: SimDuration) -> Self {
        Scenario {
            name: format!("idle_{}s", duration.as_secs_f64()),
            app: AppSpec::Idle,
            channel: 26,
            seed: 0,
            seed_nodes: false,
            duration,
            topology: TopologySpec::Full,
        }
    }

    /// Renames the scenario.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Makes `seed` a real sweep axis: it reseeds the environment *and* the
    /// nodes' RNGs (backoff jitter, hold-time jitter).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.seed_nodes = true;
        self
    }

    /// Replaces the connectivity topology.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// The node ids this scenario instantiates, in insertion order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        match self.app {
            AppSpec::Blink | AppSpec::LplListener { .. } | AppSpec::Idle => vec![NodeId(1)],
            AppSpec::Bounce => vec![NodeId(1), NodeId(4)],
        }
    }

    /// Applies the scenario's channel and (optionally) seed to a node
    /// configuration.
    fn tweak(&self, mut config: NodeConfig) -> NodeConfig {
        config.radio_channel = self.channel;
        if self.seed_nodes {
            config.seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(config.node_id.as_u8() as u64 + 1);
        }
        config
    }

    /// Builds a ready-to-run simulation of this scenario.
    pub fn build(&self) -> NetSim {
        let mut net = NetSim::new();
        match &self.app {
            AppSpec::Blink => {
                net.add_node(
                    self.tweak(NodeConfig::new(NodeId(1))),
                    Box::new(BlinkApp::new()),
                );
            }
            AppSpec::LplListener { interference_duty } => {
                net.add_node(
                    self.tweak(lpl_node_config(NodeId(1), self.channel)),
                    Box::new(LplListenerApp),
                );
                if *interference_duty > 0.0 {
                    net.add_interferer(paper_interference(*interference_duty, self.seed));
                }
            }
            AppSpec::Bounce => {
                let quiet = |id: u8| NodeConfig {
                    dco_calibration: false,
                    ..NodeConfig::new(NodeId(id))
                };
                net.add_node(
                    self.tweak(quiet(1)),
                    Box::new(BounceApp::new(NodeId(4), true)),
                );
                net.add_node(
                    self.tweak(quiet(4)),
                    Box::new(BounceApp::new(NodeId(1), true)),
                );
            }
            AppSpec::Idle => {
                net.add_node(self.tweak(NodeConfig::new(NodeId(1))), Box::new(NullApp));
            }
        }
        net.set_topology(self.topology.to_topology());
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_sets_match_app_specs() {
        let d = SimDuration::from_secs(1);
        assert_eq!(Scenario::blink(d).node_ids(), vec![NodeId(1)]);
        assert_eq!(Scenario::bounce(d).node_ids(), vec![NodeId(1), NodeId(4)]);
        let net = Scenario::bounce(d).build();
        assert_eq!(net.node_count(), 2);
        assert!(net.node(NodeId(4)).is_some());
    }

    #[test]
    fn seeding_nodes_changes_their_configs() {
        let d = SimDuration::from_secs(1);
        let plain = Scenario::bounce(d).build();
        let seeded = Scenario::bounce(d).with_seed(99).build();
        let a = plain.node(NodeId(1)).unwrap().kernel().config().seed;
        let b = seeded.node(NodeId(1)).unwrap().kernel().config().seed;
        assert_ne!(a, b, "with_seed must reseed node RNGs");
    }

    #[test]
    fn topology_spec_translates_links() {
        let d = SimDuration::from_secs(1);
        let net = Scenario::bounce(d)
            .with_topology(TopologySpec::Links(vec![]))
            .build();
        assert!(!net.medium().topology().connected(NodeId(1), NodeId(4)));
        let full = Scenario::bounce(d).build();
        assert!(full.medium().topology().connected(NodeId(1), NodeId(4)));
    }
}
