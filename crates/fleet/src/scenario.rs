//! Declarative simulation scenarios.
//!
//! A [`Scenario`] is plain data — which application runs, on which channel,
//! under which interference, through which radio medium, for how long, with
//! which seed — from which a ready-to-run [`NetSim`] can be built on any
//! thread.  The paper's evaluation grid (LPL on channel 17 vs 26, Blink
//! profiles, Bounce) and arbitrary seed × channel × topology × medium sweeps
//! are all batches of these.

use hw_model::{SimDuration, SimTime};
use net_sim::{
    Mobility, MobilityTrace, NetScratch, NetSim, PathLoss, PathLossParams, Position,
    PositionedMedium, RadioMedium, SpatialIndex, Topology, UnitDisk,
};
use os_sim::{NodeConfig, NullApp};
use quanto_apps::{
    lpl_node_config, paper_interference, BlinkApp, BounceApp, LplListenerApp,
    PAPER_INTERFERENCE_SEED,
};
use quanto_core::{LogEncoding, NodeId};

/// Which application a scenario's nodes run.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// One Blink node (three timers toggling three LEDs) — the calibration
    /// and profiling workload.
    Blink,
    /// One low-power-listening node; `interference_duty` is the fraction of
    /// time the 802.11b access point on Wi-Fi channel 6 transmits (zero
    /// removes the interferer).
    LplListener {
        /// Fraction of slots the access point is on the air (0.0–1.0).
        interference_duty: f64,
    },
    /// Two Bounce nodes (ids 1 and 4, as in the paper) ping-ponging packets.
    Bounce,
    /// `pairs` independent Bounce exchanges: pair `k` is nodes `2k+1`
    /// (initiator) and `2k+2`, for node ids 1..=2·pairs.  The multi-node
    /// stress workload for geometric mediums; beyond 127 pairs the fleet
    /// exceeds the v1 node-id range and reports switch to the v2 log
    /// encoding.
    BouncePairs {
        /// How many two-node exchanges run side by side (at most 32767).
        pairs: u16,
    },
    /// One idle node — the DCO-calibration-only baseline.
    Idle,
}

impl AppSpec {
    /// The application's stable kind name (`"blink"`, `"lpl"`, `"bounce"`,
    /// `"bounce_pairs"`, `"idle"`) — the axis the obs profile groups phase
    /// time by.
    pub fn kind(&self) -> &'static str {
        match self {
            AppSpec::Blink => "blink",
            AppSpec::LplListener { .. } => "lpl",
            AppSpec::Bounce => "bounce",
            AppSpec::BouncePairs { .. } => "bounce_pairs",
            AppSpec::Idle => "idle",
        }
    }
}

/// Which pairs of nodes can hear each other.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologySpec {
    /// Every node hears every other node.
    Full,
    /// An explicit symmetric link list over raw node ids.
    Links(Vec<(u32, u32)>),
}

impl TopologySpec {
    fn to_topology(&self) -> Topology {
        match self {
            TopologySpec::Full => Topology::full(),
            TopologySpec::Links(pairs) => {
                let pairs: Vec<(NodeId, NodeId)> = pairs
                    .iter()
                    .map(|(a, b)| (NodeId(*a), NodeId(*b)))
                    .collect();
                Topology::from_links(&pairs)
            }
        }
    }
}

/// The log-distance path-loss model as plain sweepable data (see
/// [`net_sim::PathLossParams`]; the seed is supplied by the scenario so seed
/// sweeps also reseed the shadowing).
#[derive(Debug, Clone, PartialEq)]
pub struct PathLossSpec {
    /// Transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Path loss at the 1 m reference distance, dB.
    pub ref_loss_db: f64,
    /// Path-loss exponent.
    pub exponent: f64,
    /// Log-normal shadowing standard deviation, dB (0 disables it).
    pub shadowing_sigma_db: f64,
    /// Minimum decodable RSSI, dBm.
    pub sensitivity_dbm: f64,
    /// Capture margin, dB.
    pub capture_margin_db: f64,
    /// Clear-channel-assessment threshold, dBm; `None` couples it to
    /// `sensitivity_dbm` (the historical behavior — existing digests hold).
    pub cca_threshold_dbm: Option<f64>,
}

impl Default for PathLossSpec {
    fn default() -> Self {
        let p = PathLossParams::default();
        PathLossSpec {
            tx_power_dbm: p.tx_power_dbm,
            ref_loss_db: p.ref_loss_db,
            exponent: p.exponent,
            shadowing_sigma_db: p.shadowing_sigma_db,
            sensitivity_dbm: p.sensitivity_dbm,
            capture_margin_db: p.capture_margin_db,
            cca_threshold_dbm: p.cca_threshold_dbm,
        }
    }
}

impl PathLossSpec {
    fn to_params(&self, seed: u64) -> PathLossParams {
        PathLossParams {
            tx_power_dbm: self.tx_power_dbm,
            ref_loss_db: self.ref_loss_db,
            exponent: self.exponent,
            shadowing_sigma_db: self.shadowing_sigma_db,
            sensitivity_dbm: self.sensitivity_dbm,
            capture_margin_db: self.capture_margin_db,
            cca_threshold_dbm: self.cca_threshold_dbm,
            seed,
        }
    }
}

/// The geometric model a [`MediumSpec::Mobility`] medium layers traces over.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometrySpec {
    /// Hard-range unit disk.
    UnitDisk {
        /// Communication range, meters.
        range_m: f64,
    },
    /// Log-distance path loss with capture.
    PathLoss(PathLossSpec),
}

impl GeometrySpec {
    fn build(
        &self,
        seed: u64,
        positions: &[(u32, f64, f64)],
        brute_force: bool,
        spare_index: Option<SpatialIndex>,
    ) -> Box<dyn PositionedMedium> {
        match self {
            GeometrySpec::UnitDisk { range_m } => {
                let mut disk = UnitDisk::new(*range_m);
                if brute_force {
                    disk = disk.without_spatial_index();
                } else if let Some(spare) = spare_index {
                    // Recycled cell grid from a torn-down medium; adopted
                    // (and reset) before any placement, so the built state
                    // is identical to a fresh index.
                    disk.adopt_spatial_index(spare);
                }
                for (id, x, y) in positions {
                    disk.set_position(NodeId(*id), Position::new(*x, *y));
                }
                Box::new(disk)
            }
            GeometrySpec::PathLoss(spec) => {
                let mut model = PathLoss::new(spec.to_params(seed));
                if brute_force {
                    model = model.without_spatial_index();
                } else if let Some(spare) = spare_index {
                    model.adopt_spatial_index(spare);
                }
                for (id, x, y) in positions {
                    model.set_position(NodeId(*id), Position::new(*x, *y));
                }
                Box::new(model)
            }
        }
    }
}

/// One node's mobility trace as plain data: the node id and its
/// `(time µs, x, y)` waypoints.
pub type TraceSpec = (u32, Vec<(u64, f64, f64)>);

/// Which radio medium a scenario's frames propagate through — a plain-data
/// sweep axis, like seeds and channels.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum MediumSpec {
    /// The explicit-topology ideal ether ([`Scenario::topology`] decides
    /// delivery) — byte-identical to the pre-medium-subsystem simulator.
    #[default]
    Ideal,
    /// Positions plus a hard communication range.
    UnitDisk {
        /// Communication range, meters.
        range_m: f64,
        /// `(node id, x, y)` placements, meters; unplaced nodes sit at the
        /// origin.
        positions: Vec<(u32, f64, f64)>,
    },
    /// Log-distance path loss with deterministic shadowing and capture.
    PathLoss {
        /// The propagation model parameters.
        model: PathLossSpec,
        /// `(node id, x, y)` placements, meters.
        positions: Vec<(u32, f64, f64)>,
    },
    /// Piecewise-linear waypoint traces over a geometric base model.
    Mobility {
        /// The geometric model underneath.
        base: GeometrySpec,
        /// Static `(node id, x, y)` placements for untraced nodes.
        positions: Vec<(u32, f64, f64)>,
        /// Per-node waypoint traces: `(node id, [(time µs, x, y)])`.
        traces: Vec<TraceSpec>,
    },
}

impl MediumSpec {
    /// The medium's stable kind name (`"ideal"`, `"unit_disk"`,
    /// `"path_loss"`, `"mobility"`) — used in scenario names, reports and
    /// counter-access errors.
    pub fn kind(&self) -> &'static str {
        match self {
            MediumSpec::Ideal => "ideal",
            MediumSpec::UnitDisk { .. } => "unit_disk",
            MediumSpec::PathLoss { .. } => "path_loss",
            MediumSpec::Mobility { .. } => "mobility",
        }
    }

    /// Builds the propagation model; `None` for [`MediumSpec::Ideal`], which
    /// keeps the scenario's topology-driven default.
    fn build(
        &self,
        seed: u64,
        brute_force: bool,
        spare_index: Option<SpatialIndex>,
    ) -> Option<Box<dyn RadioMedium>> {
        match self {
            MediumSpec::Ideal => None,
            MediumSpec::UnitDisk { range_m, positions } => {
                Some(GeometrySpec::UnitDisk { range_m: *range_m }.build(
                    seed,
                    positions,
                    brute_force,
                    spare_index,
                ))
            }
            MediumSpec::PathLoss { model, positions } => {
                Some(GeometrySpec::PathLoss(model.clone()).build(
                    seed,
                    positions,
                    brute_force,
                    spare_index,
                ))
            }
            MediumSpec::Mobility {
                base,
                positions,
                traces,
            } => {
                let mut mobility =
                    Mobility::new(base.build(seed, positions, brute_force, spare_index));
                for (id, waypoints) in traces {
                    let waypoints = waypoints
                        .iter()
                        .map(|(us, x, y)| (SimTime::from_micros(*us), Position::new(*x, *y)))
                        .collect();
                    mobility = mobility.with_trace(NodeId(*id), MobilityTrace::new(waypoints));
                }
                Some(Box::new(mobility))
            }
        }
    }
}

/// One cell of an experiment grid: everything needed to build and run a
/// simulation, as plain (thread-shareable) data.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name (also the key for looking results up in a report).
    pub name: String,
    /// The application(s) to run.
    pub app: AppSpec,
    /// The 802.15.4 channel every node's radio uses (11–26).
    pub channel: u8,
    /// Seed for the scenario's environment (the interferer's traffic
    /// pattern, the medium's shadowing) and — when [`Scenario::seed_nodes`]
    /// — the nodes' own RNGs.
    pub seed: u64,
    /// When true, node RNG seeds derive from `seed` (for seed sweeps); when
    /// false, nodes keep their id-derived defaults, which makes a scenario
    /// byte-compatible with the legacy sequential drivers.
    pub seed_nodes: bool,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Connectivity between nodes (only consulted by the ideal medium).
    pub topology: TopologySpec,
    /// The radio medium frames propagate through.
    pub medium: MediumSpec,
    /// When true, geometric mediums are built without their spatial index
    /// and answer every delivery with the full node scan — the reference
    /// path for the index-equivalence tests and microbenches.  Results are
    /// byte-identical either way; only the run time differs.
    pub brute_force_medium: bool,
}

impl Scenario {
    /// The Blink profiling scenario (one node, channel 26, no radio use).
    pub fn blink(duration: SimDuration) -> Self {
        Scenario {
            name: format!("blink_{}s", duration.as_secs_f64()),
            app: AppSpec::Blink,
            channel: 26,
            seed: 0,
            seed_nodes: false,
            duration,
            topology: TopologySpec::Full,
            medium: MediumSpec::Ideal,
            brute_force_medium: false,
        }
    }

    /// The Figure 13 LPL scenario: a listener on `channel` under an 802.11b
    /// access point transmitting `interference_duty` of the time.  The
    /// default seed (7) reproduces the paper drivers byte-for-byte.
    pub fn lpl(channel: u8, interference_duty: f64, duration: SimDuration) -> Self {
        Scenario {
            name: format!("lpl_ch{channel}"),
            app: AppSpec::LplListener { interference_duty },
            channel,
            seed: PAPER_INTERFERENCE_SEED,
            seed_nodes: false,
            duration,
            topology: TopologySpec::Full,
            medium: MediumSpec::Ideal,
            brute_force_medium: false,
        }
    }

    /// The Bounce scenario: nodes 1 and 4 exchanging packets.
    pub fn bounce(duration: SimDuration) -> Self {
        Scenario {
            name: format!("bounce_{}s", duration.as_secs_f64()),
            app: AppSpec::Bounce,
            channel: 26,
            seed: 0,
            seed_nodes: false,
            duration,
            topology: TopologySpec::Full,
            medium: MediumSpec::Ideal,
            brute_force_medium: false,
        }
    }

    /// `pairs` side-by-side Bounce exchanges (node ids 1..=2·pairs) — the
    /// multi-node workload geometric mediums are stressed with.
    pub fn bounce_pairs(pairs: u16, duration: SimDuration) -> Self {
        assert!((1..=32767).contains(&pairs), "pairs must be in 1..=32767");
        Scenario {
            name: format!("bounce_pairs{pairs}_{}s", duration.as_secs_f64()),
            app: AppSpec::BouncePairs { pairs },
            channel: 26,
            seed: 0,
            seed_nodes: false,
            duration,
            topology: TopologySpec::Full,
            medium: MediumSpec::Ideal,
            brute_force_medium: false,
        }
    }

    /// An idle single-node baseline.
    pub fn idle(duration: SimDuration) -> Self {
        Scenario {
            name: format!("idle_{}s", duration.as_secs_f64()),
            app: AppSpec::Idle,
            channel: 26,
            seed: 0,
            seed_nodes: false,
            duration,
            topology: TopologySpec::Full,
            medium: MediumSpec::Ideal,
            brute_force_medium: false,
        }
    }

    /// Renames the scenario.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Makes `seed` a real sweep axis: it reseeds the environment *and* the
    /// nodes' RNGs (backoff jitter, hold-time jitter).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.seed_nodes = true;
        self
    }

    /// Replaces the connectivity topology.
    pub fn with_topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Replaces the radio medium — the topology-model sweep axis.
    pub fn with_medium(mut self, medium: MediumSpec) -> Self {
        self.medium = medium;
        self
    }

    /// Builds geometric mediums without their spatial index (the full-scan
    /// reference path).  Byte-identical results, O(nodes) per frame — for
    /// equivalence tests and microbenches only.
    pub fn without_spatial_index(mut self) -> Self {
        self.brute_force_medium = true;
        self
    }

    /// The node ids this scenario instantiates, in insertion order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        match self.app {
            AppSpec::Blink | AppSpec::LplListener { .. } | AppSpec::Idle => vec![NodeId(1)],
            AppSpec::Bounce => vec![NodeId(1), NodeId(4)],
            AppSpec::BouncePairs { pairs } => (1..=2 * pairs as u32).map(NodeId).collect(),
        }
    }

    /// The log wire format this scenario's digests fold: v1 while every
    /// node id fits the paper's one-byte origin (keeping historical digests
    /// byte-identical), v2 once any id exceeds 254.
    pub fn log_encoding(&self) -> LogEncoding {
        let max = self.node_ids().into_iter().max().unwrap_or(NodeId(0));
        LogEncoding::required_for(max)
    }

    /// FNV-1a digest over the scenario's *canonical spec*: every field that
    /// influences what the simulation computes or reports — app, channel,
    /// seed, duration, topology, medium, spatial-index choice — plus the
    /// log-encoding version and [`SPEC_DIGEST_VERSION`], folded as raw
    /// little-endian bytes with floats as IEEE-754 bit patterns.  The
    /// display [`Scenario::name`] is deliberately *excluded*: renaming a
    /// cell does not change what it simulates, so two cells differing only
    /// in name share one result-cache entry.
    ///
    /// This is the content address of the result cache: equal digests mean
    /// "this exact simulation has run before".
    pub fn spec_digest(&self) -> u64 {
        let mut h = crate::report::Fnv::new();
        h.write(&[SPEC_DIGEST_VERSION]);
        h.write(&[match self.log_encoding() {
            LogEncoding::V1 => 1,
            LogEncoding::V2 => 2,
        }]);
        match &self.app {
            AppSpec::Blink => h.write(b"blink"),
            AppSpec::LplListener { interference_duty } => {
                h.write(b"lpl");
                h.write(&interference_duty.to_bits().to_le_bytes());
            }
            AppSpec::Bounce => h.write(b"bounce"),
            AppSpec::BouncePairs { pairs } => {
                h.write(b"bounce_pairs");
                h.write(&pairs.to_le_bytes());
            }
            AppSpec::Idle => h.write(b"idle"),
        }
        h.write(&[self.channel]);
        h.write(&self.seed.to_le_bytes());
        h.write(&[self.seed_nodes as u8, self.brute_force_medium as u8]);
        h.write(&self.duration.as_micros().to_le_bytes());
        match &self.topology {
            TopologySpec::Full => h.write(b"full"),
            TopologySpec::Links(links) => {
                h.write(b"links");
                h.write(&(links.len() as u64).to_le_bytes());
                for (a, b) in links {
                    h.write(&a.to_le_bytes());
                    h.write(&b.to_le_bytes());
                }
            }
        }
        fold_medium(&mut h, &self.medium);
        h.finish()
    }

    /// Applies the scenario's channel and (optionally) seed to a node
    /// configuration.
    fn tweak(&self, mut config: NodeConfig) -> NodeConfig {
        config.radio_channel = self.channel;
        if self.seed_nodes {
            config.seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(config.node_id.as_u64() + 1);
        }
        config
    }

    /// Builds a ready-to-run simulation of this scenario.
    pub fn build(&self) -> NetSim {
        self.build_in(&mut NetScratch::new())
    }

    /// [`Scenario::build`] reusing the allocations a previous simulation
    /// left in `scratch` (engine containers, per-node log buffers, the
    /// spatial-index grid).  Behaviour-identical to a cold build: every
    /// recycled structure is reset before use, which the digest pins prove.
    pub fn build_in(&self, scratch: &mut NetScratch) -> NetSim {
        let mut net = NetSim::new_in(scratch);
        let quiet = |id: u32| NodeConfig {
            dco_calibration: false,
            ..NodeConfig::new(NodeId(id))
        };
        match &self.app {
            AppSpec::Blink => {
                net.add_node(
                    self.tweak(NodeConfig::new(NodeId(1))),
                    Box::new(BlinkApp::new()),
                );
            }
            AppSpec::LplListener { interference_duty } => {
                net.add_node(
                    self.tweak(lpl_node_config(NodeId(1), self.channel)),
                    Box::new(LplListenerApp),
                );
                if *interference_duty > 0.0 {
                    net.add_interferer(paper_interference(*interference_duty, self.seed));
                }
            }
            AppSpec::Bounce => {
                net.add_node(
                    self.tweak(quiet(1)),
                    Box::new(BounceApp::new(NodeId(4), true)),
                );
                net.add_node(
                    self.tweak(quiet(4)),
                    Box::new(BounceApp::new(NodeId(1), true)),
                );
            }
            AppSpec::BouncePairs { pairs } => {
                for k in 0..*pairs as u32 {
                    let a = 2 * k + 1;
                    let b = 2 * k + 2;
                    net.add_node(
                        self.tweak(quiet(a)),
                        Box::new(BounceApp::new(NodeId(b), true)),
                    );
                    net.add_node(
                        self.tweak(quiet(b)),
                        Box::new(BounceApp::new(NodeId(a), true)),
                    );
                }
            }
            AppSpec::Idle => {
                net.add_node(self.tweak(NodeConfig::new(NodeId(1))), Box::new(NullApp));
            }
        }
        net.set_topology(self.topology.to_topology());
        // The recycled spatial index is only pulled out of the scratch for
        // mediums that can actually adopt one — the ideal medium leaves it
        // pooled for a later geometric scenario.
        let spare_index = match &self.medium {
            MediumSpec::Ideal => None,
            _ => scratch.take_spatial_index(),
        };
        if let Some(model) = self
            .medium
            .build(self.seed, self.brute_force_medium, spare_index)
        {
            net.set_medium(model);
        }
        net
    }
}

/// Version byte folded first into every [`Scenario::spec_digest`].  Bump it
/// whenever the simulation's observable behavior changes for an unchanged
/// spec (a physics fix, a new digest-relevant counter, a changed default):
/// every existing cache entry then self-invalidates, because no new digest
/// can collide with one folded under the old version.
pub const SPEC_DIGEST_VERSION: u8 = 1;

/// Folds a medium spec (tag, parameters, positions, traces) into a spec
/// digest.
fn fold_medium(h: &mut crate::report::Fnv, medium: &MediumSpec) {
    let fold_positions = |h: &mut crate::report::Fnv, positions: &[(u32, f64, f64)]| {
        h.write(&(positions.len() as u64).to_le_bytes());
        for (id, x, y) in positions {
            h.write(&id.to_le_bytes());
            h.write(&x.to_bits().to_le_bytes());
            h.write(&y.to_bits().to_le_bytes());
        }
    };
    let fold_path_loss = |h: &mut crate::report::Fnv, spec: &PathLossSpec| {
        for f in [
            spec.tx_power_dbm,
            spec.ref_loss_db,
            spec.exponent,
            spec.shadowing_sigma_db,
            spec.sensitivity_dbm,
            spec.capture_margin_db,
        ] {
            h.write(&f.to_bits().to_le_bytes());
        }
        match spec.cca_threshold_dbm {
            Some(t) => {
                h.write(&[1]);
                h.write(&t.to_bits().to_le_bytes());
            }
            None => h.write(&[0]),
        }
    };
    match medium {
        MediumSpec::Ideal => h.write(b"ideal"),
        MediumSpec::UnitDisk { range_m, positions } => {
            h.write(b"unit_disk");
            h.write(&range_m.to_bits().to_le_bytes());
            fold_positions(h, positions);
        }
        MediumSpec::PathLoss { model, positions } => {
            h.write(b"path_loss");
            fold_path_loss(h, model);
            fold_positions(h, positions);
        }
        MediumSpec::Mobility {
            base,
            positions,
            traces,
        } => {
            h.write(b"mobility");
            match base {
                GeometrySpec::UnitDisk { range_m } => {
                    h.write(b"disk");
                    h.write(&range_m.to_bits().to_le_bytes());
                }
                GeometrySpec::PathLoss(spec) => {
                    h.write(b"loss");
                    fold_path_loss(h, spec);
                }
            }
            fold_positions(h, positions);
            h.write(&(traces.len() as u64).to_le_bytes());
            for (id, waypoints) in traces {
                h.write(&id.to_le_bytes());
                h.write(&(waypoints.len() as u64).to_le_bytes());
                for (us, x, y) in waypoints {
                    h.write(&us.to_le_bytes());
                    h.write(&x.to_bits().to_le_bytes());
                    h.write(&y.to_bits().to_le_bytes());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_sets_match_app_specs() {
        let d = SimDuration::from_secs(1);
        assert_eq!(Scenario::blink(d).node_ids(), vec![NodeId(1)]);
        assert_eq!(Scenario::bounce(d).node_ids(), vec![NodeId(1), NodeId(4)]);
        let net = Scenario::bounce(d).build();
        assert_eq!(net.node_count(), 2);
        assert!(net.node(NodeId(4)).is_some());
        let pairs = Scenario::bounce_pairs(3, d);
        assert_eq!(pairs.node_ids().len(), 6);
        let net = pairs.build();
        assert_eq!(net.node_count(), 6);
        assert!(net.node(NodeId(6)).is_some());
    }

    #[test]
    fn seeding_nodes_changes_their_configs() {
        let d = SimDuration::from_secs(1);
        let plain = Scenario::bounce(d).build();
        let seeded = Scenario::bounce(d).with_seed(99).build();
        let a = plain.node(NodeId(1)).unwrap().kernel().config().seed;
        let b = seeded.node(NodeId(1)).unwrap().kernel().config().seed;
        assert_ne!(a, b, "with_seed must reseed node RNGs");
    }

    #[test]
    fn topology_spec_translates_links() {
        let d = SimDuration::from_secs(1);
        let net = Scenario::bounce(d)
            .with_topology(TopologySpec::Links(vec![]))
            .build();
        let topology = net.medium().topology().expect("ideal medium");
        assert!(!topology.connected(NodeId(1), NodeId(4)));
        let full = Scenario::bounce(d).build();
        let topology = full.medium().topology().expect("ideal medium");
        assert!(topology.connected(NodeId(1), NodeId(4)));
    }

    #[test]
    fn medium_spec_installs_the_model() {
        let d = SimDuration::from_secs(1);
        let ideal = Scenario::bounce(d).build();
        assert_eq!(ideal.medium().model().kind(), "ideal");
        assert!(ideal.medium_counters().is_none());

        let disk = Scenario::bounce(d)
            .with_medium(MediumSpec::UnitDisk {
                range_m: 10.0,
                positions: vec![(1, 0.0, 0.0), (4, 5.0, 0.0)],
            })
            .build();
        assert_eq!(disk.medium().model().kind(), "unit_disk");
        assert!(disk.medium_counters().is_some());
        assert!(disk.medium().topology().is_none());

        let mobility = Scenario::bounce(d)
            .with_medium(MediumSpec::Mobility {
                base: GeometrySpec::PathLoss(PathLossSpec::default()),
                positions: vec![(1, 0.0, 0.0)],
                traces: vec![(4, vec![(0, 0.0, 0.0), (1_000_000, 9.0, 0.0)])],
            })
            .build();
        assert_eq!(mobility.medium().model().kind(), "mobility");
    }

    #[test]
    fn spec_digest_ignores_names_and_tracks_every_axis() {
        let d = SimDuration::from_secs(2);
        let base = Scenario::lpl(17, 0.18, d);
        // Renaming does not change what runs: same content address.
        assert_eq!(
            base.spec_digest(),
            base.clone().named("anything_else").spec_digest()
        );
        // Every simulation-relevant axis moves the digest.
        let variants = [
            Scenario::lpl(26, 0.18, d),
            Scenario::lpl(17, 0.25, d),
            Scenario::lpl(17, 0.18, SimDuration::from_secs(3)),
            Scenario::lpl(17, 0.18, d).with_seed(99),
            Scenario::lpl(17, 0.18, d).with_topology(TopologySpec::Links(vec![(1, 2)])),
            Scenario::lpl(17, 0.18, d).with_medium(MediumSpec::UnitDisk {
                range_m: 10.0,
                positions: vec![(1, 0.0, 0.0)],
            }),
            Scenario::lpl(17, 0.18, d)
                .with_medium(MediumSpec::UnitDisk {
                    range_m: 10.0,
                    positions: vec![(1, 0.0, 0.0)],
                })
                .without_spatial_index(),
            Scenario::blink(d).named("lpl_ch17"),
        ];
        let mut digests: Vec<u64> = variants.iter().map(Scenario::spec_digest).collect();
        digests.push(base.spec_digest());
        digests.sort_unstable();
        digests.dedup();
        assert_eq!(
            digests.len(),
            variants.len() + 1,
            "all spec digests distinct"
        );
    }

    #[test]
    fn spec_digest_is_stable_across_calls() {
        let s = Scenario::bounce_pairs(200, SimDuration::from_secs(1)).with_medium(
            MediumSpec::Mobility {
                base: GeometrySpec::PathLoss(PathLossSpec::default()),
                positions: vec![(1, 0.0, 0.0)],
                traces: vec![(4, vec![(0, 0.0, 0.0), (1_000_000, 9.0, 0.0)])],
            },
        );
        assert_eq!(s.spec_digest(), s.clone().spec_digest());
    }

    #[test]
    fn medium_kinds_are_stable_names() {
        assert_eq!(MediumSpec::Ideal.kind(), "ideal");
        assert_eq!(
            MediumSpec::UnitDisk {
                range_m: 1.0,
                positions: vec![]
            }
            .kind(),
            "unit_disk"
        );
        assert_eq!(
            MediumSpec::PathLoss {
                model: PathLossSpec::default(),
                positions: vec![]
            }
            .kind(),
            "path_loss"
        );
        assert_eq!(
            MediumSpec::Mobility {
                base: GeometrySpec::UnitDisk { range_m: 1.0 },
                positions: vec![],
                traces: vec![]
            }
            .kind(),
            "mobility"
        );
    }
}
