//! The serializable residue of an executed scenario.
//!
//! A [`ScenarioRecord`] carries exactly what [`crate::ScenarioResult`] needs
//! to fold the fleet digest and render reports — the per-node summaries, the
//! per-node stream residues and the medium's delivery counters — in a form
//! that survives a trip through a shard connection or the on-disk result
//! cache.  Every `f64` travels as its IEEE-754 bit pattern (`to_bits`),
//! never as decimal text: the digest folds those exact bits, so a lossy
//! round-trip would silently change `FleetReport::digest()`.
//!
//! Decoding is total: any structural mismatch returns `None`, which callers
//! treat as a corrupt cache entry (→ miss) or a broken shard (→ requeue).
//! The conversions to and from [`crate::ScenarioResult`] live in
//! `report.rs`, next to the private fields they touch.

use crate::wire::Value;

/// Serialized [`crate::NodeSummary`] — floats as bit patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SummaryRecord {
    pub(crate) node: u32,
    pub(crate) log_entries: u64,
    pub(crate) log_dropped: u64,
    /// `Power::as_micro_watts().to_bits()`.
    pub(crate) average_power_bits: u64,
    /// `Energy::as_micro_joules().to_bits()`.
    pub(crate) total_energy_bits: u64,
    /// `f64::to_bits` of the RX duty cycle.
    pub(crate) radio_duty_bits: u64,
    pub(crate) packets_sent: u64,
    pub(crate) packets_received: u64,
    pub(crate) false_wakeups: u64,
    /// `f64::to_bits` of the regression error, when solvable.
    pub(crate) regression_error_bits: Option<u64>,
    pub(crate) cpu_segments: u64,
}

/// Serialized [`crate::NodeStreamMeta`] — the digest-bearing residue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct StreamRecord {
    pub(crate) node: u32,
    pub(crate) entries: u64,
    pub(crate) entry_digest: u64,
    pub(crate) final_time_us: u64,
    pub(crate) final_icount: u32,
    pub(crate) log_dropped: u64,
    /// The six [`os_sim::drivers::RadioStats`] counters, in declaration
    /// order: sent, received, clean wakeups, false wakeups, rx wakeups,
    /// busy backoffs.
    pub(crate) radio_stats: [u64; 6],
    /// `Energy::as_micro_joules().to_bits()` of the ground-truth total.
    pub(crate) ground_truth_bits: u64,
}

/// Serialized [`net_sim::DeliveryCounters`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CountersRecord {
    pub(crate) delivered: u64,
    pub(crate) lost_out_of_range: u64,
    pub(crate) lost_below_sensitivity: u64,
    pub(crate) lost_captured: u64,
    pub(crate) candidates_examined: u64,
    pub(crate) pruned_by_cutoff: u64,
}

/// Everything digest-relevant about one executed scenario, decoupled from
/// the `Scenario` that produced it (the reader re-derives names, medium
/// kinds and node-id sets from its own copy of the spec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ScenarioRecord {
    pub(crate) summaries: Vec<SummaryRecord>,
    pub(crate) stream: Vec<StreamRecord>,
    pub(crate) medium: Option<CountersRecord>,
}

impl ScenarioRecord {
    /// Encodes as one compact JSON object (no newlines — the dist protocol
    /// is line-delimited).
    pub(crate) fn encode(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"s\":[");
        for (i, s) in self.summaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let regression = match s.regression_error_bits {
                Some(bits) => bits.to_string(),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"n\":{},\"e\":{},\"d\":{},\"p\":{},\"te\":{},\"dc\":{},\
                 \"ps\":{},\"pr\":{},\"fw\":{},\"re\":{},\"cs\":{}}}",
                s.node,
                s.log_entries,
                s.log_dropped,
                s.average_power_bits,
                s.total_energy_bits,
                s.radio_duty_bits,
                s.packets_sent,
                s.packets_received,
                s.false_wakeups,
                regression,
                s.cpu_segments,
            ));
        }
        out.push_str("],\"m\":[");
        for (i, m) in self.stream.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"n\":{},\"e\":{},\"g\":{},\"t\":{},\"i\":{},\"d\":{},\
                 \"rs\":[{},{},{},{},{},{}],\"gt\":{}}}",
                m.node,
                m.entries,
                m.entry_digest,
                m.final_time_us,
                m.final_icount,
                m.log_dropped,
                m.radio_stats[0],
                m.radio_stats[1],
                m.radio_stats[2],
                m.radio_stats[3],
                m.radio_stats[4],
                m.radio_stats[5],
                m.ground_truth_bits,
            ));
        }
        out.push_str("],\"c\":");
        match &self.medium {
            Some(c) => out.push_str(&format!(
                "{{\"dl\":{},\"lr\":{},\"ls\":{},\"lc\":{},\"ce\":{},\"pc\":{}}}",
                c.delivered,
                c.lost_out_of_range,
                c.lost_below_sensitivity,
                c.lost_captured,
                c.candidates_examined,
                c.pruned_by_cutoff,
            )),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Decodes from a parsed wire value; `None` on any structural mismatch.
    pub(crate) fn from_value(value: &Value) -> Option<ScenarioRecord> {
        let summaries = value
            .get("s")?
            .as_arr()?
            .iter()
            .map(decode_summary)
            .collect::<Option<Vec<_>>>()?;
        let stream = value
            .get("m")?
            .as_arr()?
            .iter()
            .map(decode_stream)
            .collect::<Option<Vec<_>>>()?;
        let medium = match value.get("c")? {
            Value::Null => None,
            c => Some(CountersRecord {
                delivered: c.get_u64("dl")?,
                lost_out_of_range: c.get_u64("lr")?,
                lost_below_sensitivity: c.get_u64("ls")?,
                lost_captured: c.get_u64("lc")?,
                candidates_examined: c.get_u64("ce")?,
                pruned_by_cutoff: c.get_u64("pc")?,
            }),
        };
        Some(ScenarioRecord {
            summaries,
            stream,
            medium,
        })
    }
}

fn decode_summary(v: &Value) -> Option<SummaryRecord> {
    Some(SummaryRecord {
        node: u32::try_from(v.get_u64("n")?).ok()?,
        log_entries: v.get_u64("e")?,
        log_dropped: v.get_u64("d")?,
        average_power_bits: v.get_u64("p")?,
        total_energy_bits: v.get_u64("te")?,
        radio_duty_bits: v.get_u64("dc")?,
        packets_sent: v.get_u64("ps")?,
        packets_received: v.get_u64("pr")?,
        false_wakeups: v.get_u64("fw")?,
        regression_error_bits: v.get_opt_u64("re")?,
        cpu_segments: v.get_u64("cs")?,
    })
}

fn decode_stream(v: &Value) -> Option<StreamRecord> {
    let rs = v.get("rs")?.as_arr()?;
    if rs.len() != 6 {
        return None;
    }
    let mut radio_stats = [0u64; 6];
    for (slot, item) in radio_stats.iter_mut().zip(rs) {
        *slot = item.as_u64()?;
    }
    Some(StreamRecord {
        node: u32::try_from(v.get_u64("n")?).ok()?,
        entries: v.get_u64("e")?,
        entry_digest: v.get_u64("g")?,
        final_time_us: v.get_u64("t")?,
        final_icount: u32::try_from(v.get_u64("i")?).ok()?,
        log_dropped: v.get_u64("d")?,
        radio_stats,
        ground_truth_bits: v.get_u64("gt")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioRecord {
        ScenarioRecord {
            summaries: vec![SummaryRecord {
                node: 1,
                log_entries: 42,
                log_dropped: 0,
                average_power_bits: (1.5f64).to_bits(),
                total_energy_bits: (0.25f64).to_bits(),
                radio_duty_bits: (0.0625f64).to_bits(),
                packets_sent: 7,
                packets_received: 6,
                false_wakeups: 1,
                regression_error_bits: Some((0.001f64).to_bits()),
                cpu_segments: 13,
            }],
            stream: vec![StreamRecord {
                node: 1,
                entries: 42,
                entry_digest: 0xdead_beef_cafe_f00d,
                final_time_us: 2_000_000,
                final_icount: 31337,
                log_dropped: 0,
                radio_stats: [7, 6, 5, 1, 2, 3],
                ground_truth_bits: (123.456f64).to_bits(),
            }],
            medium: Some(CountersRecord {
                delivered: 10,
                lost_out_of_range: 1,
                lost_below_sensitivity: 2,
                lost_captured: 3,
                candidates_examined: 16,
                pruned_by_cutoff: 4,
            }),
        }
    }

    #[test]
    fn record_round_trips_bit_exactly() {
        for record in [
            sample(),
            ScenarioRecord {
                summaries: vec![SummaryRecord {
                    regression_error_bits: None,
                    node: u32::MAX,
                    ..sample().summaries[0].clone()
                }],
                stream: vec![],
                medium: None,
            },
        ] {
            let encoded = record.encode();
            assert!(!encoded.contains('\n'), "line protocol: {encoded}");
            let value = Value::parse(&encoded).expect("encoded record parses");
            assert_eq!(ScenarioRecord::from_value(&value), Some(record));
        }
    }

    #[test]
    fn structural_mismatch_decodes_to_none() {
        let good = sample().encode();
        for bad in [
            good.replace("\"gt\"", "\"xx\""), // missing field
            good.replace("\"rs\":[7,6,5,1,2,3]", "\"rs\":[7,6,5,1,2]"), // short array
            good.replace("\"s\":[", "\"s\":{"), // wrong shape (also unbalanced)
            "{\"s\":[],\"m\":[]}".to_string(), // counters field absent
        ] {
            let decoded = Value::parse(&bad)
                .as_ref()
                .and_then(ScenarioRecord::from_value);
            assert_eq!(decoded, None, "{bad} must not decode");
        }
    }
}
