//! The fleet runner: shards a scenario batch across worker threads.
//!
//! Scenarios are independent simulations (each worker builds its own
//! [`os_sim::Engine`] from the plain-data [`Scenario`]), so the only shared
//! state is the work queue — an atomic cursor over the batch — and the
//! result slots.  Results are merged in submission order, which together
//! with fully-seeded scenarios makes a fleet run bit-reproducible at any
//! thread count.

use crate::report::{FleetReport, ScenarioResult};
use crate::scenario::Scenario;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Executes batches of [`Scenario`]s, optionally in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRunner {
    threads: usize,
}

impl FleetRunner {
    /// A runner using `threads` worker threads (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        FleetRunner {
            threads: threads.max(1),
        }
    }

    /// A single-threaded runner (the reference execution order).
    pub fn sequential() -> Self {
        FleetRunner::new(1)
    }

    /// A runner using every hardware thread the host exposes.
    pub fn host_parallel() -> Self {
        FleetRunner::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every scenario and merges the per-scenario results into a
    /// [`FleetReport`] ordered by submission index — the same report
    /// whatever the thread count.
    pub fn run(&self, scenarios: Vec<Scenario>) -> FleetReport {
        let started = Instant::now();
        let total = scenarios.len();
        let workers = self.threads.min(total.max(1));
        let results: Vec<ScenarioResult> = if workers <= 1 {
            scenarios
                .into_iter()
                .enumerate()
                .map(|(i, s)| ScenarioResult::execute(i, s))
                .collect()
        } else {
            let cursor = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<ScenarioResult>>> =
                (0..total).map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= total {
                            break;
                        }
                        let result = ScenarioResult::execute(i, scenarios[i].clone());
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    });
                }
            });
            slots
                .into_iter()
                .map(|slot| {
                    slot.into_inner()
                        .expect("result slot poisoned")
                        .expect("every claimed scenario stores a result")
                })
                .collect()
        };
        FleetReport {
            results,
            threads: workers,
            wall_clock: started.elapsed(),
        }
    }
}

impl Default for FleetRunner {
    fn default() -> Self {
        FleetRunner::host_parallel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use hw_model::SimDuration;

    fn small_batch() -> Vec<Scenario> {
        let d = SimDuration::from_secs(2);
        let mut batch = scenarios::lpl_grid(&[1, 2], &[17, 26], 0.18, d);
        batch.push(Scenario::blink(d));
        batch.push(Scenario::bounce(d));
        batch
    }

    /// Satellite requirement: the same batch through 1 thread and N threads
    /// yields byte-identical reports (same seeds ⇒ same outputs, stable
    /// ordering).
    #[test]
    fn parallel_report_is_byte_identical_to_sequential() {
        let sequential = FleetRunner::sequential().run(small_batch());
        let parallel = FleetRunner::new(3).run(small_batch());
        assert_eq!(sequential.results.len(), parallel.results.len());
        // Deep check first (precise failure location)…
        for (a, b) in sequential.results.iter().zip(parallel.results.iter()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.scenario, b.scenario);
            for ((id_a, out_a), (id_b, out_b)) in a.outputs.iter().zip(b.outputs.iter()) {
                assert_eq!(id_a, id_b);
                assert_eq!(
                    out_a.log, out_b.log,
                    "scenario {} node {id_a} diverged across thread counts",
                    a.scenario.name
                );
                assert_eq!(out_a.final_stamp, out_b.final_stamp);
                assert_eq!(out_a.log_dropped, out_b.log_dropped);
            }
        }
        // …then the digest the smoke harness relies on.
        assert_eq!(sequential.digest(), parallel.digest());
    }

    #[test]
    fn report_preserves_submission_order_and_names() {
        let report = FleetRunner::new(4).run(small_batch());
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        assert!(report.result("lpl_ch17_seed1").is_some());
        assert!(report.result("nope").is_none());
        let table = report.summary_table();
        assert!(table.contains("lpl_ch26_seed2"), "table:\n{table}");
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let d = SimDuration::from_secs(1);
        let report = FleetRunner::new(16).run(vec![Scenario::idle(d)]);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.threads, 1, "workers are clamped to the batch size");
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let report = FleetRunner::host_parallel().run(Vec::new());
        assert!(report.results.is_empty());
        let digest = report.digest();
        assert_eq!(digest, FleetRunner::sequential().run(Vec::new()).digest());
    }
}
