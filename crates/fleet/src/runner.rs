//! The fleet runner: shards a scenario batch across worker threads.
//!
//! Scenarios are independent simulations (each worker builds its own
//! [`os_sim::Engine`] from the plain-data [`Scenario`]), so the only shared
//! state is the work queue — an atomic cursor over the batch — and an mpsc
//! channel from the workers to the merge loop.  The merge loop reorders
//! completions into submission order, folds the report digest(s) and emits
//! a progress event per scenario.  What each worker *retains* is the
//! [`Retention`] mode: the default [`Retention::Stream`] feeds the analysis
//! through per-node log sinks during the run and never materializes a
//! scenario's log at all; [`Retention::Batch`] materializes per scenario
//! (which is what makes the legacy pinned digest computable) and drops at
//! merge; [`Retention::Raw`] keeps everything.  A backpressure window keeps
//! workers from racing more than ~2 × `threads` scenarios ahead of the
//! merge watermark, so on the materializing paths the raw entries held at
//! any instant are bounded by the window — not by the batch size, and not
//! by scheduler-induced skew.  Submission-order merging together with
//! fully-seeded scenarios makes a fleet run bit-reproducible at any thread
//! count.

use crate::cache::{CacheStats, ResultCache};
use crate::report::{scenario_json, FleetReport, NodeSummary, ReportAccumulator, ScenarioResult};
use crate::scenario::Scenario;
use crate::workspace::SimWorkspace;
use net_sim::DeliveryCounters;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Condvar, Mutex};
use std::time::Instant;

/// One scenario's worth of incremental progress, emitted by the merge loop
/// in submission order as a sweep advances.
#[derive(Debug, Clone)]
pub struct FleetProgress {
    /// Submission index of the scenario that just merged.
    pub index: usize,
    /// Its name.
    pub name: String,
    /// Scenarios merged so far, including this one.
    pub completed: usize,
    /// Total scenarios in the batch.
    pub total: usize,
    /// The medium kind the scenario ran under.
    pub medium_kind: &'static str,
    /// The medium's delivery counters, when it tracks them.
    pub medium_counters: Option<DeliveryCounters>,
    /// The scenario's per-node summaries.
    pub summaries: Vec<NodeSummary>,
    /// Wall-clock milliseconds since the batch started.
    pub elapsed_ms: u64,
    /// Naive remaining-time estimate, extrapolated from the merged-scenario
    /// rate: `elapsed / completed × (total − completed)`.  `None` until at
    /// least two scenarios have merged (one sample is no trend).
    pub eta_ms: Option<u64>,
    /// Which shard process executed the scenario; `None` on in-process runs.
    pub shard: Option<u32>,
    /// Whether the scenario was answered from the result cache instead of
    /// simulated.
    pub cache_hit: bool,
}

impl FleetProgress {
    /// This progress event as one machine-readable JSON line (the same
    /// per-scenario shape `FleetReport::summary_json` uses, plus the
    /// completed/total counters and elapsed/ETA timings).
    pub fn to_json(&self) -> String {
        let eta = match self.eta_ms {
            Some(ms) => ms.to_string(),
            None => "null".to_string(),
        };
        let shard = match self.shard {
            Some(s) => s.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"completed\":{},\"total\":{},\"elapsed_ms\":{},\"eta_ms\":{},\
             \"shard\":{},\"cache_hit\":{},\"result\":{}}}",
            self.completed,
            self.total,
            self.elapsed_ms,
            eta,
            shard,
            self.cache_hit,
            self.result_json()
        )
    }

    /// Just this scenario's result object — the exact string
    /// [`crate::FleetReport::summary_json`] places in its `results` array
    /// for the same scenario.  The serve daemon's partial-result store
    /// keeps these, so a mid-sweep partial query returns a byte-exact
    /// prefix of the final summary document's `results`.
    pub fn result_json(&self) -> String {
        scenario_json(
            self.index,
            &self.name,
            self.medium_kind,
            self.medium_counters.as_ref(),
            &self.summaries,
            self.cache_hit,
        )
    }
}

/// What a fleet run keeps of each scenario's raw data — the axis that
/// decides both the memory profile and which digests are computable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Retention {
    /// The zero-materialization default: every node's log streams through a
    /// sink that drives the incremental analysis and the entry digest
    /// *during* the run; no [`os_sim::NodeRunOutput::log`] is ever built,
    /// and the peak raw-entry retention of a whole sweep is zero.  The
    /// legacy pinned digest is unavailable (its byte layout needs each
    /// node's entry count before the entry bytes, which a stream cannot
    /// know); determinism checks use [`crate::FleetReport::digest`].
    #[default]
    Stream,
    /// Materialize each scenario's log, fold both digests at merge time in
    /// submission order, then drop the raw outputs.  This is the
    /// pre-refactor default path; peak retention is bounded by the
    /// out-of-order completion window.  Use it when the pinned pre-refactor
    /// digest must be reproduced byte-for-byte.
    Batch,
    /// Keep every scenario's raw outputs and analysis contexts in the
    /// report, for consumers that re-analyze raw logs (the figure
    /// binaries).  Costs memory proportional to the whole batch.
    Raw,
}

/// Executes batches of [`Scenario`]s, optionally in parallel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetRunner {
    threads: usize,
    retention: Retention,
}

impl FleetRunner {
    /// A runner using `threads` worker threads (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        FleetRunner {
            threads: threads.max(1),
            retention: Retention::Stream,
        }
    }

    /// A single-threaded runner (the reference execution order).
    pub fn sequential() -> Self {
        FleetRunner::new(1)
    }

    /// A runner using every hardware thread the host exposes.
    pub fn host_parallel() -> Self {
        FleetRunner::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Selects what each scenario's execution retains (see [`Retention`]).
    pub fn with_retention(mut self, retention: Retention) -> Self {
        self.retention = retention;
        self
    }

    /// Keeps every scenario's raw [`os_sim::NodeRunOutput`]s in the report
    /// instead of summarizing-and-dropping them.  Needed by consumers that
    /// re-analyze raw logs (the figure binaries); costs memory proportional
    /// to the whole batch.
    pub fn retain_raw(self) -> Self {
        self.with_retention(Retention::Raw)
    }

    /// Materializes each scenario's log and folds the legacy pinned digest
    /// at merge before dropping the raw outputs — the pre-refactor default
    /// path (see [`Retention::Batch`]).
    pub fn batch_digest(self) -> Self {
        self.with_retention(Retention::Batch)
    }

    /// Whether this runner keeps raw outputs.
    pub fn retains_raw(&self) -> bool {
        self.retention == Retention::Raw
    }

    /// The configured retention mode.
    pub fn retention(&self) -> Retention {
        self.retention
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every scenario and merges the per-scenario results into a
    /// [`FleetReport`] ordered by submission index — the same report
    /// whatever the thread count.
    pub fn run(&self, scenarios: Vec<Scenario>) -> FleetReport {
        self.run_with_progress(scenarios, |_| {})
    }

    /// Like [`FleetRunner::run`], but forwards every progress event into an
    /// mpsc channel, so a consumer thread can print incremental results
    /// while the sweep is still running.  Send errors are ignored — a
    /// dropped receiver only silences progress, it never fails the run.
    pub fn run_to_channel(
        &self,
        scenarios: Vec<Scenario>,
        progress: mpsc::Sender<FleetProgress>,
    ) -> FleetReport {
        self.run_with_progress(scenarios, move |p| {
            let _ = progress.send(p);
        })
    }

    /// Runs every scenario, invoking `progress` (on the calling thread) each
    /// time the next scenario in submission order has merged.  Progress
    /// events arrive in submission order and carry the per-node summaries,
    /// so partial sweep results can be reported long before the batch ends.
    pub fn run_with_progress(
        &self,
        scenarios: Vec<Scenario>,
        progress: impl FnMut(FleetProgress),
    ) -> FleetReport {
        self.run_with_progress_cached(scenarios, None, progress)
    }

    /// Like [`FleetRunner::run`] with a result cache consulted before and
    /// populated after each simulation.
    pub fn run_cached(&self, scenarios: Vec<Scenario>, cache: Option<&ResultCache>) -> FleetReport {
        self.run_with_progress_cached(scenarios, cache, |_| {})
    }

    /// Like [`FleetRunner::run_with_progress`], with an optional result
    /// cache.  Every scenario whose canonical spec digest has a valid cache
    /// entry is rebuilt from disk instead of simulated (its progress event
    /// carries `cache_hit`); every freshly-simulated scenario is written
    /// back.  The cache only engages under [`Retention::Stream`] — the
    /// batch modes exist to fold the pinned digest from raw entry bytes,
    /// which no cache record can reproduce — and the report is stamped with
    /// this run's hit/miss/write deltas.
    pub fn run_with_progress_cached(
        &self,
        scenarios: Vec<Scenario>,
        cache: Option<&ResultCache>,
        mut progress: impl FnMut(FleetProgress),
    ) -> FleetReport {
        let cache = match self.retention {
            Retention::Stream => cache,
            Retention::Batch | Retention::Raw => None,
        };
        let stats_before = cache.map(ResultCache::stats);
        let started = Instant::now();
        let total = scenarios.len();
        let workers = self.threads.min(total.max(1));
        let retention = self.retention;
        let mut acc = ReportAccumulator::new(total, retention);
        // Raw log entries currently held (completed results not yet merged,
        // plus merged results whose raw outputs were retained) and its
        // high-water mark — the number the smoke gate bounds.
        let mut held: u64 = 0;
        let mut peak: u64 = 0;

        let merge = |result: ScenarioResult,
                     acc: &mut ReportAccumulator,
                     held: &mut u64,
                     progress: &mut dyn FnMut(FleetProgress)| {
            let completed = result.index + 1;
            let elapsed_ms = started.elapsed().as_millis() as u64;
            let eta_ms = (completed >= 2)
                .then(|| elapsed_ms * (total - completed) as u64 / completed as u64);
            let event = FleetProgress {
                index: result.index,
                name: result.scenario.name.clone(),
                completed,
                total,
                medium_kind: result.medium_kind,
                medium_counters: result.medium_counters().ok().copied(),
                summaries: result.summaries.clone(),
                elapsed_ms,
                eta_ms,
                shard: None,
                cache_hit: result.cache_hit(),
            };
            *held -= acc.absorb(result);
            progress(event);
        };

        if workers <= 1 {
            quanto_obs::set_thread_label("worker-0");
            let worker_span = quanto_obs::span("worker");
            let mut ws = SimWorkspace::new();
            for (i, s) in scenarios.into_iter().enumerate() {
                let result = execute_or_cached_in(i, s, retention, cache, &mut ws);
                held += result.log_entries_held();
                peak = peak.max(held);
                let _merge_span = quanto_obs::span("merge");
                merge(result, &mut acc, &mut held, &mut progress);
            }
            drop(worker_span);
            quanto_obs::flush_thread();
        } else {
            // Backpressure window: a worker may not *start* scenario `i`
            // until fewer than `window` scenarios separate it from the merge
            // watermark.  Without this, a preempted worker (common on
            // oversubscribed or single-CPU hosts) lets its peers race
            // arbitrarily far ahead, and the reorder buffer — which must
            // hold raw outputs until the digest folds in submission order —
            // grows with the skew instead of the thread count.  The worker
            // owning the lowest unmerged index is never blocked (its index
            // equals the watermark), so the window cannot deadlock — and if
            // any thread panics, its `WakeOnUnwind` guard raises the abort
            // flag and wakes every parked waiter, so the panic propagates
            // out of `thread::scope` instead of hanging the run.
            let window = (2 * workers).max(8);
            let cursor = AtomicUsize::new(0);
            // Lock-free mirror of `MergeGate::merged`: workers comfortably
            // inside the window check this and never touch the gate mutex —
            // the common case on balanced sweeps, and the handoff that used
            // to serialize workers against the merge loop on small hosts.
            let watermark = AtomicUsize::new(0);
            let gate = Mutex::new(MergeGate {
                merged: 0,
                waiters: 0,
                abort: false,
            });
            let advanced = Condvar::new();
            let (tx, rx) = mpsc::channel::<ScenarioResult>();
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let tx = tx.clone();
                    let cursor = &cursor;
                    let scenarios = &scenarios;
                    let gate = &gate;
                    let advanced = &advanced;
                    let watermark = &watermark;
                    scope.spawn(move || {
                        quanto_obs::set_thread_label(&format!("worker-{w}"));
                        let _wake = WakeOnUnwind { gate, advanced };
                        let mut ws = SimWorkspace::new();
                        {
                            let _worker_span = quanto_obs::span("worker");
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                if i >= total {
                                    break;
                                }
                                // Fast path: inside the window per the
                                // atomic watermark — no lock.  (A stale read
                                // only under-approximates `merged`, so it
                                // can never admit an out-of-window start.)
                                if i >= watermark.load(Ordering::Acquire) + window {
                                    let mut g = gate.lock().unwrap_or_else(|p| p.into_inner());
                                    if i >= g.merged + window && !g.abort {
                                        // Only an actual wait opens a stall
                                        // span — an open gate costs nothing.
                                        let _stall_span = quanto_obs::span("stall");
                                        quanto_obs::counter_add("runner.backpressure_stalls", 1);
                                        g.waiters += 1;
                                        while i >= g.merged + window && !g.abort {
                                            g = advanced.wait(g).unwrap_or_else(|p| p.into_inner());
                                        }
                                        g.waiters -= 1;
                                    }
                                    if g.abort {
                                        break;
                                    }
                                }
                                let result = execute_or_cached_in(
                                    i,
                                    scenarios[i].clone(),
                                    retention,
                                    cache,
                                    &mut ws,
                                );
                                // The send wakes a parked receiver, which is
                                // where the scheduler preempts oversubscribed
                                // workers — span it so worker wall-clock
                                // still reconciles on small hosts.
                                let _send_span = quanto_obs::span("send");
                                if tx.send(result).is_err() {
                                    break;
                                }
                            }
                        }
                        // `thread::scope` returns before TLS destructors run,
                        // so the dump must be flushed explicitly — otherwise
                        // the harvest races the worker's TLS teardown.
                        quanto_obs::flush_thread();
                    });
                }
                drop(tx);
                // If the merge loop unwinds (a panicking `progress`
                // callback), wake the parked workers so the scope can join.
                let _wake = WakeOnUnwind {
                    gate: &gate,
                    advanced: &advanced,
                };
                // The merge loop: reorder completions into submission order,
                // fold, report, drop, advance the watermark.
                let mut pending: BTreeMap<usize, ScenarioResult> = BTreeMap::new();
                let mut next = 0usize;
                for result in rx {
                    held += result.log_entries_held();
                    peak = peak.max(held);
                    pending.insert(result.index, result);
                    quanto_obs::observe("runner.reorder_window_occupancy", pending.len() as u64);
                    let before = next;
                    let _merge_span = quanto_obs::span("merge");
                    while let Some(result) = pending.remove(&next) {
                        merge(result, &mut acc, &mut held, &mut progress);
                        next += 1;
                    }
                    if next != before {
                        // Publish the watermark lock-free first (workers'
                        // fast path), then update the gate — and only pay
                        // the notify syscall when someone is actually
                        // parked on the window.
                        watermark.store(next, Ordering::Release);
                        let wake = {
                            let mut g = gate.lock().unwrap_or_else(|p| p.into_inner());
                            g.merged = next;
                            g.waiters > 0
                        };
                        if wake {
                            quanto_obs::counter_add("runner.merge_wakeups", 1);
                            advanced.notify_all();
                        }
                    }
                }
                let aborted = gate.lock().unwrap_or_else(|p| p.into_inner()).abort;
                assert!(
                    aborted || pending.is_empty(),
                    "every submitted scenario merges"
                );
            });
        }
        let mut report = acc.finish(workers, started.elapsed(), peak);
        if let (Some(cache), Some(before)) = (cache, stats_before) {
            let after = cache.stats();
            report.set_cache_stats(CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
                writes: after.writes - before.writes,
            });
        }
        report
    }
}

/// One scenario through the cache fast path: a valid entry skips the
/// simulation entirely; a miss simulates on the zero-materialization path
/// and writes the entry back for next time.  With no cache (or a
/// materializing retention, which the caller already stripped the cache
/// for), this is plain [`ScenarioResult::execute_with`].
///
/// Public because it is the execution seam every sweep scheduler shares:
/// the in-process runner's workers, the dist shards (via their own
/// `FleetRunner`) and the `quanto-serve` daemon's pool all produce their
/// per-scenario results through exactly this call, which is what makes
/// their digests byte-identical.  A cache may only be supplied with
/// [`Retention::Stream`] — no cache record can reproduce the raw entry
/// bytes the batch digests fold.
pub fn execute_or_cached(
    index: usize,
    scenario: Scenario,
    retention: Retention,
    cache: Option<&ResultCache>,
) -> ScenarioResult {
    let mut ws = SimWorkspace::new();
    execute_or_cached_in(index, scenario, retention, cache, &mut ws)
}

/// [`execute_or_cached`] through a pooled [`SimWorkspace`]: the streaming
/// simulation path draws its allocations from (and returns them to) the
/// workspace, so a worker looping over scenarios allocates like it ran one.
/// Results are byte-identical to [`execute_or_cached`] — pooling recycles
/// capacity, never state.
pub fn execute_or_cached_in(
    index: usize,
    scenario: Scenario,
    retention: Retention,
    cache: Option<&ResultCache>,
    ws: &mut SimWorkspace,
) -> ScenarioResult {
    match cache {
        Some(cache) => {
            debug_assert_eq!(retention, Retention::Stream, "cache is stream-only");
            if let Some(result) = cache.load_result(index, &scenario) {
                return result;
            }
            let result = ScenarioResult::execute_streaming_in(index, scenario, ws);
            cache.store_record(&result.scenario, &result.to_record());
            result
        }
        None => ScenarioResult::execute_with_in(index, scenario, retention, ws),
    }
}

impl Default for FleetRunner {
    fn default() -> Self {
        FleetRunner::host_parallel()
    }
}

/// The backpressure gate the merge loop advances and workers wait on.
struct MergeGate {
    /// Scenarios merged so far (the next index to merge).
    merged: usize,
    /// Workers currently parked on the window — lets the merge loop skip
    /// the notify syscall entirely when nobody is waiting (the common case).
    waiters: usize,
    /// Raised when any thread unwinds, so parked waiters exit instead of
    /// waiting for a watermark advance that will never come.
    abort: bool,
}

/// Drop guard held by every worker and by the merge loop: if its thread
/// unwinds, it raises the abort flag and wakes every parked waiter so the
/// panic propagates out of `thread::scope` instead of deadlocking the run.
struct WakeOnUnwind<'a> {
    gate: &'a Mutex<MergeGate>,
    advanced: &'a Condvar,
}

impl Drop for WakeOnUnwind<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.gate
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .abort = true;
        }
        self.advanced.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;
    use hw_model::SimDuration;

    fn small_batch() -> Vec<Scenario> {
        let d = SimDuration::from_secs(2);
        let mut batch = scenarios::lpl_grid(&[1, 2], &[17, 26], 0.18, d);
        batch.push(Scenario::blink(d));
        batch.push(Scenario::bounce(d));
        batch
    }

    /// Satellite requirement: the same batch through 1 thread and N threads
    /// yields byte-identical reports (same seeds ⇒ same outputs, stable
    /// ordering).
    #[test]
    fn parallel_report_is_byte_identical_to_sequential() {
        let sequential = FleetRunner::sequential().retain_raw().run(small_batch());
        let parallel = FleetRunner::new(3).retain_raw().run(small_batch());
        assert_eq!(sequential.results.len(), parallel.results.len());
        // Deep check first (precise failure location)…
        for (a, b) in sequential.results.iter().zip(parallel.results.iter()) {
            assert_eq!(a.index, b.index);
            assert_eq!(a.scenario, b.scenario);
            let (raw_a, raw_b) = (a.raw().unwrap(), b.raw().unwrap());
            for ((id_a, out_a), (id_b, out_b)) in raw_a.outputs.iter().zip(raw_b.outputs.iter()) {
                assert_eq!(id_a, id_b);
                assert_eq!(
                    out_a.log, out_b.log,
                    "scenario {} node {id_a} diverged across thread counts",
                    a.scenario.name
                );
                assert_eq!(out_a.final_stamp, out_b.final_stamp);
                assert_eq!(out_a.log_dropped, out_b.log_dropped);
            }
        }
        // …then the digests the smoke harness relies on: the stream digest,
        // and the pinned digest's merge-time fold versus the whole-batch
        // recomputation.
        assert_eq!(sequential.digest(), parallel.digest());
        assert_eq!(sequential.pinned_digest(), parallel.pinned_digest());
        assert!(sequential.pinned_digest().is_some());
        assert_eq!(sequential.recompute_digest(), sequential.pinned_digest());
        assert_eq!(parallel.recompute_digest(), parallel.pinned_digest());
    }

    /// The bridge between the paths: the zero-materialization run must see
    /// byte-identical entry streams (per-node counts and FNV digests), fold
    /// the same report digest and produce bit-identical summaries as the
    /// materializing run — that equality is what extends the pinned-digest
    /// proof chain to the sink-fed path.
    #[test]
    fn streaming_path_is_byte_identical_to_materializing_path() {
        let retained = FleetRunner::new(3).retain_raw().run(small_batch());
        let streamed = FleetRunner::new(3).run(small_batch());
        assert_eq!(retained.digest(), streamed.digest());
        assert!(retained.results.iter().all(|r| r.has_raw()));
        assert!(streamed.results.iter().all(|r| !r.has_raw()));
        assert_eq!(streamed.recompute_digest(), None);
        assert_eq!(streamed.pinned_digest(), None);
        assert_eq!(
            retained.total_log_entries(),
            streamed.total_log_entries(),
            "both paths must account every surviving entry"
        );
        for (a, b) in retained.results.iter().zip(streamed.results.iter()) {
            // The O(1) stream residues are the byte-identity witness: equal
            // counts and equal FNV digests mean the sink saw exactly the
            // bytes the materialized log holds.
            assert_eq!(a.stream_meta(), b.stream_meta(), "{}", a.scenario.name);
            for (sa, sb) in a.summaries.iter().zip(b.summaries.iter()) {
                assert_eq!(
                    sa.average_power.as_micro_watts().to_bits(),
                    sb.average_power.as_micro_watts().to_bits()
                );
                assert_eq!(
                    sa.total_energy.as_micro_joules().to_bits(),
                    sb.total_energy.as_micro_joules().to_bits()
                );
                assert_eq!(sa.radio_duty_cycle.to_bits(), sb.radio_duty_cycle.to_bits());
                assert_eq!(
                    sa.regression_error.map(f64::to_bits),
                    sb.regression_error.map(f64::to_bits)
                );
                assert_eq!(sa.log_entries, sb.log_entries);
                assert_eq!(sa.cpu_segments, sb.cpu_segments);
            }
        }
    }

    /// The batch-digest mode must agree with raw retention on both digests
    /// — it exists so the pinned digest stays reproducible without keeping
    /// the whole batch in memory.
    #[test]
    fn batch_digest_mode_preserves_both_digests() {
        let retained = FleetRunner::new(3).retain_raw().run(small_batch());
        let batch = FleetRunner::new(3).batch_digest().run(small_batch());
        assert_eq!(retained.digest(), batch.digest());
        assert_eq!(retained.pinned_digest(), batch.pinned_digest());
        assert!(batch.pinned_digest().is_some());
        assert!(batch.results.iter().all(|r| !r.has_raw()));
    }

    /// The default path never holds a raw entry; batch-digest mode is
    /// bounded by the completion window; raw retention peaks at the total.
    #[test]
    fn retention_modes_bound_peak_retention_as_documented() {
        let streamed = FleetRunner::new(4).run(small_batch());
        assert!(streamed.total_log_entries() > 0);
        assert_eq!(
            streamed.peak_entries_held(),
            0,
            "zero-materialization path must hold nothing"
        );
        let batch = FleetRunner::new(4).batch_digest().run(small_batch());
        assert!(batch.peak_entries_held() > 0);
        assert!(
            batch.peak_entries_held() < batch.total_log_entries(),
            "peak {} should be below total {}",
            batch.peak_entries_held(),
            batch.total_log_entries()
        );
        // Retaining raw buffers everything: the peak is the total.
        let retained = FleetRunner::new(4).retain_raw().run(small_batch());
        assert_eq!(retained.peak_entries_held(), retained.total_log_entries());
    }

    #[test]
    fn progress_events_arrive_in_submission_order_with_summaries() {
        let batch = small_batch();
        let total = batch.len();
        let mut seen = Vec::new();
        let report = FleetRunner::new(3).run_with_progress(batch, |p| seen.push(p));
        assert_eq!(seen.len(), total);
        let mut last_elapsed = 0;
        for (i, p) in seen.iter().enumerate() {
            assert_eq!(p.index, i);
            assert_eq!(p.completed, i + 1);
            assert_eq!(p.total, total);
            assert!(!p.summaries.is_empty());
            assert_eq!(p.name, report.results[i].scenario.name);
            assert!(p.to_json().contains(&format!("\"total\":{total}")));
            assert!(p.to_json().contains("\"elapsed_ms\":"));
            // One merged scenario is no trend; from the second on the ETA
            // extrapolates and must reach zero at the end of the batch.
            if p.completed < 2 {
                assert_eq!(p.eta_ms, None);
                assert!(p.to_json().contains("\"eta_ms\":null"));
            } else {
                assert!(p.eta_ms.is_some());
            }
            assert!(p.elapsed_ms >= last_elapsed, "elapsed must not go back");
            last_elapsed = p.elapsed_ms;
        }
        assert_eq!(seen.last().unwrap().eta_ms, Some(0));
    }

    #[test]
    fn channel_progress_matches_callback_progress() {
        let (tx, rx) = mpsc::channel();
        let report = FleetRunner::new(2).run_to_channel(small_batch(), tx);
        let events: Vec<FleetProgress> = rx.into_iter().collect();
        assert_eq!(events.len(), report.results.len());
        assert_eq!(events.last().unwrap().completed, report.results.len());
    }

    /// A panicking progress callback must propagate, not deadlock: without
    /// the abort/wake guard, workers parked on the backpressure window would
    /// wait forever for a watermark advance that never comes and the scope
    /// would never join (this test would hang).
    #[test]
    fn panicking_progress_callback_propagates_instead_of_deadlocking() {
        let seeds: Vec<u64> = (1..=16).collect();
        let batch = scenarios::lpl_grid(&seeds, &[17, 26], 0.18, SimDuration::from_millis(200));
        assert!(batch.len() > 8, "batch must exceed the backpressure window");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            FleetRunner::new(4).run_with_progress(batch, |_| panic!("progress consumer failed"));
        }));
        assert!(outcome.is_err(), "the callback panic must propagate");
    }

    /// The cache contract end to end: a cold run populates, a warm run
    /// answers every cell from disk (zero simulations) and still folds the
    /// exact digest of an uncached run.
    #[test]
    fn warm_cache_run_simulates_nothing_and_keeps_the_digest() {
        let dir =
            std::env::temp_dir().join(format!("quanto-runner-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).expect("open cache");
        let total = small_batch().len() as u64;
        let plain = FleetRunner::new(2).run(small_batch());
        assert!(plain.cache_stats().is_none(), "no cache, no stats");

        let cold = FleetRunner::new(2).run_cached(small_batch(), Some(&cache));
        assert_eq!(cold.digest(), plain.digest());
        let stats = cold.cache_stats().expect("cached run is stamped");
        assert_eq!((stats.hits, stats.misses, stats.writes), (0, total, total));
        assert!(cold.results.iter().all(|r| !r.cache_hit()));

        let mut hits_seen = 0;
        let warm = FleetRunner::new(4).run_with_progress_cached(small_batch(), Some(&cache), |p| {
            assert!(p.cache_hit, "warm run must hit on every cell");
            assert!(p.to_json().contains("\"cache_hit\":true"));
            hits_seen += 1;
        });
        assert_eq!(hits_seen, total as usize);
        assert_eq!(warm.digest(), plain.digest(), "warm digest byte-identical");
        let stats = warm.cache_stats().expect("cached run is stamped");
        assert_eq!((stats.hits, stats.misses, stats.writes), (total, 0, 0));
        assert!(warm.results.iter().all(|r| r.cache_hit()));

        // Materializing retentions must bypass the cache entirely: the
        // pinned digest folds raw entry bytes no record carries.
        let batch = FleetRunner::new(2)
            .batch_digest()
            .run_cached(small_batch(), Some(&cache));
        assert!(batch.cache_stats().is_none());
        assert!(batch.pinned_digest().is_some());
        assert_eq!(batch.digest(), plain.digest());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    /// Workspace pooling is capacity-only: running the same grid twice
    /// through one pooled workspace — including geometric mediums, whose
    /// spatial-index grid is recycled — must fold byte-identical stream
    /// digests to cold, workspace-free executions, while actually reusing
    /// the pooled per-node slots.
    #[test]
    fn pooled_workspace_reuse_is_digest_identical_to_fresh_execution() {
        use crate::report::Fnv;
        let grid = || {
            let mut batch = small_batch();
            batch.extend(scenarios::medium_grid(SimDuration::from_secs(1)));
            batch
        };
        let fold = |results: &[ScenarioResult]| {
            let mut h = Fnv::new();
            for r in results {
                r.fold_stream_digest(&mut h);
            }
            h.finish()
        };
        let fresh: Vec<ScenarioResult> = grid()
            .into_iter()
            .enumerate()
            .map(|(i, s)| ScenarioResult::execute_streaming(i, s))
            .collect();
        let mut ws = SimWorkspace::new();
        for pass in 0..2 {
            let pooled: Vec<ScenarioResult> = grid()
                .into_iter()
                .enumerate()
                .map(|(i, s)| ScenarioResult::execute_streaming_in(i, s, &mut ws))
                .collect();
            assert_eq!(
                fold(&pooled),
                fold(&fresh),
                "pass {pass} through the pooled workspace diverged"
            );
            for (a, b) in pooled.iter().zip(fresh.iter()) {
                assert_eq!(a.stream_meta(), b.stream_meta(), "{}", a.scenario.name);
            }
        }
        assert!(ws.pooled_slots() > 0, "slots must be parked between runs");
        assert!(ws.pooled_log_buffers() > 0, "log buffers must be recycled");
    }

    #[test]
    fn report_preserves_submission_order_and_names() {
        let report = FleetRunner::new(4).run(small_batch());
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.index, i);
        }
        assert!(report.result("lpl_ch17_seed1").is_some());
        assert_eq!(
            report.result("lpl_ch26_seed2").map(|r| r.index),
            Some(3),
            "name index must point at the right submission slot"
        );
        assert!(report.result("nope").is_none());
        let table = report.summary_table();
        assert!(table.contains("lpl_ch26_seed2"), "table:\n{table}");
        let json = report.summary_json();
        assert!(json.contains("\"scenario\":\"lpl_ch26_seed2\""), "{json}");
    }

    #[test]
    fn more_threads_than_scenarios_is_fine() {
        let d = SimDuration::from_secs(1);
        let report = FleetRunner::new(16).run(vec![Scenario::idle(d)]);
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.threads, 1, "workers are clamped to the batch size");
    }

    #[test]
    fn empty_batch_yields_empty_report() {
        let report = FleetRunner::host_parallel().run(Vec::new());
        assert!(report.results.is_empty());
        let digest = report.digest();
        assert_eq!(digest, FleetRunner::sequential().run(Vec::new()).digest());
        assert_eq!(report.peak_entries_held(), 0);
    }
}
