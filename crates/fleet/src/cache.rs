//! The content-addressed on-disk result cache.
//!
//! Each entry maps a scenario's canonical spec digest
//! ([`crate::Scenario::spec_digest`]) to its `ScenarioRecord`
//! — the O(1) residue a [`crate::ScenarioResult`] can be rebuilt from without
//! re-running the simulation.  The layout under the cache directory is one
//! file per entry:
//!
//! ```text
//! .quanto-cache/
//!   00f3ab12cd4507e9.json    ← {"version":1,"spec":"00f3ab12cd4507e9","record":{…}}
//! ```
//!
//! Writes are crash-safe: the entry is written to a `.tmp-<pid>-<key>` file
//! in the same directory and atomically renamed into place, so a reader can
//! never observe a half-written entry under its final name.  Reads are
//! *total*: a missing, truncated, unparsable, wrong-version or
//! wrong-content entry is a **miss** (and recomputed), never a crash and
//! never a wrong digest — the `version` and `spec` fields self-invalidate
//! stale formats and hash collisions with earlier layouts.
//!
//! Only the zero-materialization retention mode ([`crate::Retention::Stream`])
//! consults the cache: the batch modes exist to fold the legacy pinned
//! digest from raw entry bytes, which no summary record can reproduce.
//!
//! # Example
//!
//! ```
//! use hw_model::SimDuration;
//! use quanto_fleet::{ResultCache, Scenario};
//!
//! let dir = std::env::temp_dir().join(format!("quanto-cache-doc-{}", std::process::id()));
//! let cache = ResultCache::open(&dir).unwrap();
//! // A cold cache misses; the schedulers then simulate and write back.
//! let scenario = Scenario::idle(SimDuration::from_secs(1));
//! assert!(cache.probe(0, &scenario).is_none());
//! assert_eq!(cache.stats().misses, 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::record::ScenarioRecord;
use crate::report::ScenarioResult;
use crate::scenario::Scenario;
use crate::wire::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Version stamp written into every cache entry.  Entries carrying any
/// other value decode as misses, so bumping this (when the record layout
/// changes) invalidates every existing cache without touching the files.
pub const CACHE_FORMAT_VERSION: u64 = 1;

/// Hit/miss/write counters of one cache handle, mirrored into the
/// `cache.hits` / `cache.misses` / `cache.writes` obs counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from disk.
    pub hits: u64,
    /// Lookups that fell through to simulation (absent or invalid entries).
    pub misses: u64,
    /// Entries written (freshly simulated cells, cached for next time).
    pub writes: u64,
}

/// A handle on one cache directory.  Thread-safe: lookups and stores only
/// touch the filesystem plus atomic counters, so scoped worker threads
/// share one handle by reference.
#[derive(Debug)]
pub struct ResultCache {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) the cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ResultCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Counters accumulated by this handle since it was opened.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Reads and validates the raw entry document for a spec digest; no
    /// counting, total on any kind of damage.
    fn read_record(&self, key: u64) -> Option<ScenarioRecord> {
        std::fs::read_to_string(self.entry_path(key))
            .ok()
            .as_deref()
            .and_then(Value::parse)
            .and_then(|v| decode_entry(&v, key))
    }

    /// Looks the scenario up by content address and rebuilds its result at
    /// submission index `index` (with [`ScenarioResult::cache_hit`] set).
    /// Any failure along the way — no file, unreadable, unparsable, wrong
    /// version, wrong spec echo, structurally invalid record, or a record
    /// that does not describe this scenario — is a counted **miss**, so the
    /// caller simply simulates.  This is the probe the sweep schedulers
    /// (the [`crate::dist`] coordinator and the `quanto-serve` daemon) run
    /// for every cell before queueing work: a hit never enters the queue.
    pub fn probe(&self, index: usize, scenario: &Scenario) -> Option<ScenarioResult> {
        self.load_result(index, scenario)
    }

    /// [`ResultCache::probe`], under the crate-internal name the runner and
    /// coordinator predate the public seam with.
    pub(crate) fn load_result(&self, index: usize, scenario: &Scenario) -> Option<ScenarioResult> {
        let result = self
            .read_record(scenario.spec_digest())
            .and_then(|record| ScenarioResult::from_record(index, scenario.clone(), &record, true));
        match result {
            Some(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                quanto_obs::counter_add("cache.hits", 1);
                Some(result)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                quanto_obs::counter_add("cache.misses", 1);
                None
            }
        }
    }

    /// Stores a freshly-computed record under the scenario's content
    /// address: tmp file in the same directory, then atomic rename.
    /// Best-effort — a full disk or read-only directory costs the *next*
    /// run its warm start, not this run its result — but `false` is
    /// reported so callers can surface it.
    pub(crate) fn store_record(&self, scenario: &Scenario, record: &ScenarioRecord) -> bool {
        let key = scenario.spec_digest();
        let mut body = String::with_capacity(256);
        body.push_str(&format!(
            "{{\"version\":{CACHE_FORMAT_VERSION},\"spec\":\"{key:016x}\",\"record\":"
        ));
        body.push_str(&record.encode());
        body.push_str("}\n");
        let tmp = self
            .dir
            .join(format!(".tmp-{}-{key:016x}", std::process::id()));
        let written = std::fs::write(&tmp, &body)
            .and_then(|()| std::fs::rename(&tmp, self.entry_path(key)))
            .is_ok();
        if written {
            self.writes.fetch_add(1, Ordering::Relaxed);
            quanto_obs::counter_add("cache.writes", 1);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
        written
    }
}

/// Decodes one entry document, validating the version stamp and the spec
/// echo before trusting the record.
fn decode_entry(value: &Value, key: u64) -> Option<ScenarioRecord> {
    if value.get_u64("version")? != CACHE_FORMAT_VERSION {
        return None;
    }
    if value.get_str("spec")? != format!("{key:016x}") {
        return None;
    }
    ScenarioRecord::from_value(value.get("record")?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::SimDuration;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("quanto-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_record() -> ScenarioRecord {
        use crate::record::{StreamRecord, SummaryRecord};
        ScenarioRecord {
            summaries: vec![SummaryRecord {
                node: 1,
                log_entries: 5,
                log_dropped: 0,
                average_power_bits: (2.5f64).to_bits(),
                total_energy_bits: (5.0f64).to_bits(),
                radio_duty_bits: 0,
                packets_sent: 0,
                packets_received: 0,
                false_wakeups: 0,
                regression_error_bits: None,
                cpu_segments: 2,
            }],
            stream: vec![StreamRecord {
                node: 1,
                entries: 5,
                entry_digest: 99,
                final_time_us: 1_000_000,
                final_icount: 17,
                log_dropped: 0,
                radio_stats: [0; 6],
                ground_truth_bits: (5.0f64).to_bits(),
            }],
            medium: None,
        }
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cache = ResultCache::open(&dir).expect("open");
        let scenario = Scenario::idle(SimDuration::from_secs(1));
        assert!(
            cache.load_result(0, &scenario).is_none(),
            "cold cache misses"
        );
        assert!(cache.store_record(&scenario, &sample_record()));
        let hit = cache.load_result(7, &scenario).expect("warm cache hits");
        assert!(hit.cache_hit());
        assert_eq!(hit.index, 7);
        assert_eq!(hit.to_record(), sample_record());
        // A different spec does not alias.
        assert!(cache
            .load_result(0, &Scenario::idle(SimDuration::from_secs(2)))
            .is_none());
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                writes: 1
            }
        );
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn corrupt_truncated_and_stale_entries_are_misses() {
        let dir = tmp_dir("corrupt");
        let cache = ResultCache::open(&dir).expect("open");
        let scenario = Scenario::idle(SimDuration::from_secs(1));
        assert!(cache.store_record(&scenario, &sample_record()));
        let path = cache.entry_path(scenario.spec_digest());
        let good = std::fs::read_to_string(&path).expect("entry exists");

        // Truncated mid-document.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(cache.load_result(0, &scenario).is_none());
        // Outright garbage.
        std::fs::write(&path, b"\x00\xffnot json at all").unwrap();
        assert!(cache.load_result(0, &scenario).is_none());
        // A future format version self-invalidates.
        std::fs::write(&path, good.replace("\"version\":1", "\"version\":999")).unwrap();
        assert!(cache.load_result(0, &scenario).is_none());
        // A spec-echo mismatch (entry landed under the wrong name).
        let other = Scenario::idle(SimDuration::from_secs(3));
        std::fs::copy(&path, cache.entry_path(other.spec_digest())).unwrap();
        std::fs::write(&path, &good).unwrap();
        assert!(cache.load_result(0, &other).is_none());
        // A structurally-valid record for the *wrong* scenario (two nodes
        // expected, one recorded) is also a miss.
        let bounce = Scenario::bounce(SimDuration::from_secs(1));
        assert!(cache.store_record(&bounce, &sample_record()));
        assert!(cache.load_result(0, &bounce).is_none());
        // The intact entry still hits — misses never poison the cache.
        let hit = cache.load_result(0, &scenario).expect("intact entry hits");
        assert_eq!(hit.to_record(), sample_record());
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    #[test]
    fn writes_are_atomic_no_tmp_left_behind() {
        let dir = tmp_dir("atomic");
        let cache = ResultCache::open(&dir).expect("open");
        let scenario = Scenario::blink(SimDuration::from_secs(1));
        assert!(cache.store_record(&scenario, &sample_record()));
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir readable")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must be renamed away");
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }
}
