//! Per-scenario results and the merged fleet report.
//!
//! Since the in-run streaming refactor the default execution path is
//! *zero-materialization*: every node gets a [`quanto_core::LogSink`] that
//! drives the incremental analysis builders (`TimeUnwrapper` →
//! `IntervalBuilder`, plus a `SegmentBuilder` over the CPU device) and a
//! [`StreamDigest`] *while the simulation runs*, so a scenario's
//! [`NodeRunOutput::log`] is never built at all.  What survives per node is
//! O(1): the summary, the entry count and the FNV digest over the entry
//! stream ([`NodeStreamMeta`]).
//!
//! Two digests exist because the legacy *pinned* digest folds each node's
//! entry count **before** its entry bytes — and FNV-1a is not seekable, so
//! that byte order cannot be reproduced from a stream whose length is only
//! known at the end.  [`crate::FleetRunner`] retention modes pick the path:
//!
//! * [`crate::Retention::Stream`] (default) — sinks attached, logs never
//!   materialized, [`FleetReport::digest`] only;
//! * [`crate::Retention::Batch`] — logs materialized per scenario and
//!   dropped at merge (the pre-refactor default path), which additionally
//!   yields the pinned [`FleetReport::pinned_digest`];
//! * [`crate::Retention::Raw`] — everything retained for re-analysis.
//!
//! Both digests are folded in submission order during the merge, so each is
//! identical at any thread count; the streamed entry digests are proven
//! byte-identical to the materialized logs by the digest-pin tests.

use crate::cache::CacheStats;
use crate::record::{CountersRecord, ScenarioRecord, StreamRecord, SummaryRecord};
use crate::runner::Retention;
use crate::scenario::Scenario;
use analysis::{pct, PowerInterval, SegmentBuilder};
use analysis::{regress, IntervalBuilder, ObservationPool, RegressionOptions, TextTable};
use hw_model::catalog::radio_rx_state;
use hw_model::{Catalog, Energy, Power, SimDuration, SimTime, SinkId};
use net_sim::DeliveryCounters;
use os_sim::drivers::RadioStats;
use os_sim::NodeRunOutput;
use quanto_apps::ExperimentContext;
use quanto_core::{LogEncoding, LogEntry, LogSink, NodeId, Stamp, StreamDigest};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// The analysis-pipeline summary of one node of one scenario.
#[derive(Debug, Clone)]
pub struct NodeSummary {
    /// Which node.
    pub node: NodeId,
    /// Surviving Quanto log entries.
    pub log_entries: usize,
    /// Entries the logger dropped.
    pub log_dropped: u64,
    /// Average metered power over the run.
    pub average_power: Power,
    /// Total metered energy over the run.
    pub total_energy: Energy,
    /// Fraction of time the radio RX path was in LISTEN.
    pub radio_duty_cycle: f64,
    /// Packets fully transmitted.
    pub packets_sent: u64,
    /// Packets fully received.
    pub packets_received: u64,
    /// LPL wake-ups that detected energy but received nothing.
    pub false_wakeups: u64,
    /// Relative error of the per-state power regression, when the run
    /// exercised enough states for it to be solvable.
    pub regression_error: Option<f64>,
    /// Closed CPU activity segments (streamed through the incremental
    /// `SegmentBuilder` on the zero-materialization path) — how often the
    /// CPU's attributed activity changed over the run.
    pub cpu_segments: u64,
}

/// The O(1)-per-node residue of a scenario's log stream: enough to prove
/// byte-identity of two executions (equal counts and equal FNV digests over
/// the encoded entries mean equal streams) and to fold the report digest,
/// without retaining a single entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeStreamMeta {
    /// Which node.
    pub node: NodeId,
    /// Surviving entries that flowed through the node's sink (or sat in its
    /// materialized log, on the batch paths).
    pub entries: u64,
    /// FNV-1a digest over the encoded bytes of every surviving entry, in
    /// log order (see [`quanto_core::StreamDigest`]).
    pub entry_digest: u64,
    /// The end-of-run (time, iCount) stamp.
    pub final_stamp: Stamp,
    /// Entries the logger dropped.
    pub log_dropped: u64,
    /// The node's radio counters.
    pub radio_stats: RadioStats,
    /// Ground-truth total energy over the run.
    pub ground_truth_total: Energy,
}

/// Why a raw-output lookup on a [`ScenarioResult`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawAccessError {
    /// The runner summarized and dropped the raw outputs (the default).
    /// Build the runner with [`crate::FleetRunner::retain_raw`] to keep them.
    NotRetained {
        /// The scenario whose raw outputs were requested.
        scenario: String,
    },
    /// The scenario never ran a node with this id.
    UnknownNode {
        /// The scenario whose raw outputs were requested.
        scenario: String,
        /// The id that was asked for.
        node: NodeId,
        /// The ids the scenario did run.
        known: Vec<NodeId>,
    },
}

impl fmt::Display for RawAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawAccessError::NotRetained { scenario } => write!(
                f,
                "raw outputs of scenario {scenario:?} were summarized and dropped; \
                 build the runner with FleetRunner::retain_raw() to keep them"
            ),
            RawAccessError::UnknownNode {
                scenario,
                node,
                known,
            } => write!(
                f,
                "scenario {scenario:?} ran no node {node}; it ran {known:?}"
            ),
        }
    }
}

impl std::error::Error for RawAccessError {}

/// Why a delivery-counter lookup on a [`ScenarioResult`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterAccessError {
    /// The scenario whose counters were requested.
    pub scenario: String,
    /// The medium kind that ran it.
    pub medium: &'static str,
}

impl fmt::Display for CounterAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the {:?} medium of scenario {:?} does not track delivery counters; \
             run the scenario under a geometric medium (unit_disk, path_loss or \
             mobility) to get delivery/loss/capture counts",
            self.medium, self.scenario
        )
    }
}

impl std::error::Error for CounterAccessError {}

/// The raw per-node data of one executed scenario, kept only when the runner
/// retains it.
#[derive(Debug)]
pub struct RawScenarioOutputs {
    /// Raw per-node outputs, in node insertion order.
    pub outputs: Vec<(NodeId, NodeRunOutput)>,
    /// Per-node analysis contexts, in the same order.
    pub contexts: Vec<(NodeId, ExperimentContext)>,
}

/// One executed scenario: the analysis summary, plus the raw outputs while
/// they are retained.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Position of the scenario in the submitted batch (reports are always
    /// ordered by it, whatever thread ran what).
    pub index: usize,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Per-node summaries, in node insertion order.
    pub summaries: Vec<NodeSummary>,
    /// The medium kind the scenario ran under (`"ideal"`, `"unit_disk"`, …).
    pub medium_kind: &'static str,
    /// The medium's delivery counters; `None` when the medium does not track
    /// them (the ideal medium) — read through
    /// [`ScenarioResult::medium_counters`].
    medium_counters: Option<DeliveryCounters>,
    /// Per-node stream residues (entry counts, stream digests, end-of-run
    /// stamps and stats) — present in every retention mode.
    stream: Vec<NodeStreamMeta>,
    /// Raw outputs; `None` on the zero-materialization path, and `None`
    /// once the merge has summarized-and-dropped them on the batch path.
    raw: Option<RawScenarioOutputs>,
    /// Whether this result was rebuilt from the result cache instead of
    /// simulated ([`ScenarioResult::from_record`]).
    cache_hit: bool,
}

/// The live per-node analysis state a streaming scenario's sink drives:
/// everything is folded chunk-by-chunk as the logger drains, so memory is
/// bounded by the builders' *open* state, never by the log length.
///
/// Pooled by [`crate::workspace::SimWorkspace`]: between scenarios
/// [`LiveNode::reset`] returns the builders to boot state while keeping
/// every allocation (per-sink state vectors, segment buffers, the encode
/// scratch), so the steady-state sweep path builds no per-node state.
pub(crate) struct LiveNode {
    catalog: Arc<Catalog>,
    radio_rx: SinkId,
    energy_per_count: Energy,
    digest: StreamDigest,
    builder: IntervalBuilder,
    segments: SegmentBuilder,
    stats: IntervalStats,
    cpu_segments: u64,
    /// Log-drain chunks this sink consumed (a plain count the obs layer
    /// reads after the run; never branches on the hot path).
    chunks: u64,
    /// Reusable encode buffer for the chunked digest fold — warm after the
    /// first full chunk, so folding allocates nothing at steady state.
    scratch: Vec<u8>,
}

impl LiveNode {
    /// Fresh analysis state for one node (first use of a workspace slot).
    fn new(
        catalog: Arc<Catalog>,
        radio_rx: SinkId,
        energy_per_count: Energy,
        cpu_dev: quanto_core::DeviceId,
        encoding: LogEncoding,
    ) -> Self {
        LiveNode {
            radio_rx,
            energy_per_count,
            digest: StreamDigest::with_encoding(encoding),
            builder: IntervalBuilder::new(&catalog),
            segments: SegmentBuilder::new(cpu_dev, false),
            stats: IntervalStats::new(),
            cpu_segments: 0,
            chunks: 0,
            scratch: Vec::new(),
            catalog,
        }
    }

    /// Returns the slot to the state [`LiveNode::new`] would build for the
    /// given node, keeping every allocation.  Behaviour-identical to a fresh
    /// slot: the builders' reset seams restore boot state exactly, and the
    /// digest/stats are plain `Copy` re-initializations.
    fn reset(
        &mut self,
        catalog: Arc<Catalog>,
        radio_rx: SinkId,
        energy_per_count: Energy,
        cpu_dev: quanto_core::DeviceId,
        encoding: LogEncoding,
    ) {
        self.radio_rx = radio_rx;
        self.energy_per_count = energy_per_count;
        self.digest = StreamDigest::with_encoding(encoding);
        self.builder.reset(&catalog);
        self.segments.reset_for(cpu_dev);
        self.stats.reset();
        self.cpu_segments = 0;
        self.chunks = 0;
        self.catalog = catalog;
    }

    /// Consumes one chunk: entry digest, power intervals, CPU segments.
    fn accept(&mut self, chunk: &[LogEntry]) {
        self.chunks += 1;
        self.digest.fold_chunk(chunk, &mut self.scratch);
        self.builder.push_chunk(chunk);
        for iv in self.builder.drain_completed() {
            self.stats.absorb(&iv, self.radio_rx, self.energy_per_count);
        }
        self.segments.push_chunk(chunk);
        self.cpu_segments += self.segments.drain_completed().count() as u64;
    }

    /// Closes both builders at the end-of-run stamp.
    fn close(&mut self, final_stamp: Stamp) {
        self.builder.flush(Some(final_stamp));
        for iv in self.builder.drain_completed() {
            self.stats.absorb(&iv, self.radio_rx, self.energy_per_count);
        }
        self.segments.flush(Some(final_stamp));
        self.cpu_segments += self.segments.drain_completed().count() as u64;
    }
}

impl ScenarioResult {
    /// Builds, boots, runs and analyzes one scenario on the *materializing*
    /// path: each node's full log is collected, summarized through the
    /// incremental builders, and retained on the result (the merge decides
    /// whether to keep or drop it).  This is the path that can fold the
    /// pinned pre-refactor digest; the fleet default is
    /// [`ScenarioResult::execute_streaming`].
    pub fn execute(index: usize, scenario: Scenario) -> ScenarioResult {
        let kind = scenario.app.kind();
        let _scenario_span = quanto_obs::span_with("scenario", &scenario.name);
        let build_span = quanto_obs::span_with("build", kind);
        let mut net = scenario.build();
        drop(build_span);
        let run_span = quanto_obs::span_with("run", kind);
        let end = SimTime::ZERO + scenario.duration;
        net.run_until(end);
        drop(run_span);
        let _analyze_span = quanto_obs::span_with("analyze", kind);
        let contexts: Vec<(NodeId, ExperimentContext)> = scenario
            .node_ids()
            .into_iter()
            .map(|id| {
                let kernel = net.node(id).expect("scenario node exists").kernel();
                (id, ExperimentContext::from_kernel(kernel))
            })
            .collect();
        let medium_counters = net.medium_counters();
        let outputs = net.finish(end);
        flush_obs_metrics(&net);
        // Tear the simulation down while the analyze span is still open —
        // the implicit end-of-function drop would land between spans and
        // show up as unattributed busy time in the profile.
        drop(net);
        let encoding = scenario.log_encoding();
        let mut summaries = Vec::with_capacity(outputs.len());
        let mut stream = Vec::with_capacity(outputs.len());
        for (id, out) in &outputs {
            let (_, ctx) = contexts
                .iter()
                .find(|(cid, _)| cid == id)
                .expect("context captured for every node");
            summaries.push(summarize(*id, out, ctx));
            stream.push(stream_meta_from_raw(*id, out, encoding));
        }
        let medium_kind = scenario.medium.kind();
        ScenarioResult {
            index,
            scenario,
            summaries,
            medium_kind,
            medium_counters,
            stream,
            raw: Some(RawScenarioOutputs { outputs, contexts }),
            cache_hit: false,
        }
    }

    /// Builds, boots, runs and analyzes one scenario on the
    /// *zero-materialization* path: every node's logger streams its drains
    /// through a sink that drives the entry digest, the interval builder and
    /// the CPU segment builder during the run, the oscilloscope probe is
    /// detached, and no [`NodeRunOutput::log`] is ever built.  Summaries are
    /// bit-identical to [`ScenarioResult::execute`] (the builders are
    /// chunking-independent); raw access is unavailable by construction.
    pub fn execute_streaming(index: usize, scenario: Scenario) -> ScenarioResult {
        let mut ws = crate::workspace::SimWorkspace::new();
        ScenarioResult::execute_streaming_in(index, scenario, &mut ws)
    }

    /// [`ScenarioResult::execute_streaming`] through a pooled
    /// [`crate::workspace::SimWorkspace`]: the simulation is built from the
    /// workspace's recycled allocations (engine containers, per-node log
    /// buffers, the spatial-index grid) and its per-node analysis slots are
    /// reset-and-reused instead of rebuilt.  Behaviour-identical to a fresh
    /// execution — every reset seam restores boot state exactly, which the
    /// digest pins prove — so the only observable difference is allocator
    /// traffic.
    pub fn execute_streaming_in(
        index: usize,
        scenario: Scenario,
        ws: &mut crate::workspace::SimWorkspace,
    ) -> ScenarioResult {
        let kind = scenario.app.kind();
        let _scenario_span = quanto_obs::span_with("scenario", &scenario.name);
        let build_span = quanto_obs::span_with("build", kind);
        let mut net = scenario.build_in(&mut ws.net);
        net.set_trace_recording(false);
        let node_ids = scenario.node_ids();
        let encoding = scenario.log_encoding();
        let mut live: Vec<(NodeId, Rc<RefCell<LiveNode>>)> = Vec::with_capacity(node_ids.len());
        let mut reuses = 0u64;
        let mut rebuilds = 0u64;
        for id in node_ids {
            let kernel = net.node(id).expect("scenario node exists").kernel();
            let catalog = kernel.catalog().clone();
            let (cpu_dev, ..) = kernel.device_ids();
            let radio_rx = kernel.sink_ids().radio_rx;
            let energy_per_count = kernel.config().icount.nominal_energy_per_pulse;
            // A pooled slot is reusable only once its previous sink closure
            // is gone (strong count back to 1); anything else — e.g. a slot
            // checked out when a build panicked mid-scenario — is discarded.
            let node = match ws.slots.pop() {
                Some(slot) if Rc::strong_count(&slot) == 1 => {
                    slot.borrow_mut()
                        .reset(catalog, radio_rx, energy_per_count, cpu_dev, encoding);
                    reuses += 1;
                    slot
                }
                _ => {
                    rebuilds += 1;
                    Rc::new(RefCell::new(LiveNode::new(
                        catalog,
                        radio_rx,
                        energy_per_count,
                        cpu_dev,
                        encoding,
                    )))
                }
            };
            let tap = node.clone();
            net.set_node_log_sink(
                id,
                Box::new(move |chunk: &[LogEntry]| tap.borrow_mut().accept(chunk)),
            );
            live.push((id, node));
        }
        quanto_obs::counter_add("workspace.reuses", reuses);
        quanto_obs::counter_add("workspace.rebuilds", rebuilds);
        drop(build_span);
        let run_span = quanto_obs::span_with("run", kind);
        let end = SimTime::ZERO + scenario.duration;
        net.run_until(end);
        drop(run_span);
        let _analyze_span = quanto_obs::span_with("analyze", kind);
        let medium_counters = net.medium_counters();
        // `finish` drains each logger's tail through its sink; the outputs
        // come back with empty logs and tiny traces.
        let outputs = net.finish(end);
        flush_obs_metrics(&net);
        // Tear the simulation down (sinks included) while the analyze span
        // is still open, for the same attribution reason as in `execute` —
        // except the allocations land in the workspace instead of the
        // allocator, ready for the next scenario.
        net.reset_into(&mut ws.net);
        quanto_obs::counter_add("alloc.log_buffers_pooled", ws.net.log_buffers() as u64);
        let mut summaries = Vec::with_capacity(outputs.len());
        let mut stream = Vec::with_capacity(outputs.len());
        for ((id, out), (live_id, node)) in outputs.iter().zip(live.iter()) {
            debug_assert_eq!(id, live_id, "outputs follow node insertion order");
            debug_assert!(out.log.is_empty(), "sink mode must not materialize logs");
            let mut node = node.borrow_mut();
            node.close(out.final_stamp);
            quanto_obs::counter_add("stream.chunks", node.chunks);
            quanto_obs::counter_add("stream.entries", node.digest.entries());
            let regression_error = regress(
                &node.stats.pool.observations(node.energy_per_count),
                &node.catalog,
                RegressionOptions::default(),
            )
            .ok()
            .map(|r| r.relative_error);
            summaries.push(NodeSummary {
                node: *id,
                log_entries: node.digest.entries() as usize,
                log_dropped: out.log_dropped,
                average_power: node.stats.average_power(node.energy_per_count),
                total_energy: node.stats.energy,
                radio_duty_cycle: node.stats.radio_duty_cycle(),
                packets_sent: out.radio_stats.packets_sent,
                packets_received: out.radio_stats.packets_received,
                false_wakeups: out.radio_stats.false_wakeups,
                regression_error,
                cpu_segments: node.cpu_segments,
            });
            stream.push(NodeStreamMeta {
                node: *id,
                entries: node.digest.entries(),
                entry_digest: node.digest.digest(),
                final_stamp: out.final_stamp,
                log_dropped: out.log_dropped,
                radio_stats: out.radio_stats,
                ground_truth_total: out.ground_truth.total,
            });
        }
        // Hand every slot back for the next scenario through this workspace
        // (the sinks died with the net, so each is reusable again).
        for (_, node) in live {
            ws.slots.push(node);
        }
        let medium_kind = scenario.medium.kind();
        ScenarioResult {
            index,
            scenario,
            summaries,
            medium_kind,
            medium_counters,
            stream,
            raw: None,
            cache_hit: false,
        }
    }

    /// Executes under the given retention mode:
    /// [`Retention::Stream`] takes the zero-materialization path, the batch
    /// modes materialize (the merge decides what survives).
    pub fn execute_with(index: usize, scenario: Scenario, retention: Retention) -> ScenarioResult {
        match retention {
            Retention::Stream => ScenarioResult::execute_streaming(index, scenario),
            Retention::Batch | Retention::Raw => ScenarioResult::execute(index, scenario),
        }
    }

    /// [`ScenarioResult::execute_with`] through a pooled workspace: the
    /// streaming path reuses the workspace's allocations, the batch paths
    /// (which must materialize fresh logs anyway) are unchanged.
    pub fn execute_with_in(
        index: usize,
        scenario: Scenario,
        retention: Retention,
        ws: &mut crate::workspace::SimWorkspace,
    ) -> ScenarioResult {
        match retention {
            Retention::Stream => ScenarioResult::execute_streaming_in(index, scenario, ws),
            Retention::Batch | Retention::Raw => ScenarioResult::execute(index, scenario),
        }
    }

    /// The per-node stream residues (entry counts, entry digests, stamps) —
    /// available in every retention mode, and byte-comparable across them.
    pub fn stream_meta(&self) -> &[NodeStreamMeta] {
        &self.stream
    }

    /// Whether this result was rebuilt from the result cache rather than
    /// simulated.
    pub fn cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// The serializable residue of this result: everything
    /// [`ScenarioResult::fold_stream_digest`] folds and the reports render,
    /// with floats as bit patterns.  Raw outputs are *not* captured — a
    /// record can only rebuild a stream-retention result.
    pub(crate) fn to_record(&self) -> ScenarioRecord {
        ScenarioRecord {
            summaries: self
                .summaries
                .iter()
                .map(|s| SummaryRecord {
                    node: s.node.as_u32(),
                    log_entries: s.log_entries as u64,
                    log_dropped: s.log_dropped,
                    average_power_bits: s.average_power.as_micro_watts().to_bits(),
                    total_energy_bits: s.total_energy.as_micro_joules().to_bits(),
                    radio_duty_bits: s.radio_duty_cycle.to_bits(),
                    packets_sent: s.packets_sent,
                    packets_received: s.packets_received,
                    false_wakeups: s.false_wakeups,
                    regression_error_bits: s.regression_error.map(f64::to_bits),
                    cpu_segments: s.cpu_segments,
                })
                .collect(),
            stream: self
                .stream
                .iter()
                .map(|m| StreamRecord {
                    node: m.node.as_u32(),
                    entries: m.entries,
                    entry_digest: m.entry_digest,
                    final_time_us: m.final_stamp.time.as_micros(),
                    final_icount: m.final_stamp.icount,
                    log_dropped: m.log_dropped,
                    radio_stats: [
                        m.radio_stats.packets_sent,
                        m.radio_stats.packets_received,
                        m.radio_stats.clean_wakeups,
                        m.radio_stats.false_wakeups,
                        m.radio_stats.rx_wakeups,
                        m.radio_stats.busy_backoffs,
                    ],
                    ground_truth_bits: m.ground_truth_total.as_micro_joules().to_bits(),
                })
                .collect(),
            medium: self.medium_counters.as_ref().map(|c| CountersRecord {
                delivered: c.delivered,
                lost_out_of_range: c.lost_out_of_range,
                lost_below_sensitivity: c.lost_below_sensitivity,
                lost_captured: c.lost_captured,
                candidates_examined: c.candidates_examined,
                pruned_by_cutoff: c.pruned_by_cutoff,
            }),
        }
    }

    /// Rebuilds a result from a record without running anything, restoring
    /// every float from its bit pattern so the digest fold is byte-identical
    /// to the original execution.  Returns `None` when the record does not
    /// actually describe `scenario` — its node-id sets must match the
    /// scenario's, and it must carry delivery counters exactly when the
    /// scenario's medium tracks them — which downgrades a stale or aliased
    /// cache entry to a miss instead of corrupting the report.
    pub(crate) fn from_record(
        index: usize,
        scenario: Scenario,
        record: &ScenarioRecord,
        cache_hit: bool,
    ) -> Option<ScenarioResult> {
        let node_ids = scenario.node_ids();
        let ids_match = |nodes: &[u32]| {
            nodes.len() == node_ids.len()
                && nodes
                    .iter()
                    .zip(&node_ids)
                    .all(|(raw, id)| NodeId(*raw) == *id)
        };
        let summary_ids: Vec<u32> = record.summaries.iter().map(|s| s.node).collect();
        let stream_ids: Vec<u32> = record.stream.iter().map(|m| m.node).collect();
        if !ids_match(&summary_ids) || !ids_match(&stream_ids) {
            return None;
        }
        let medium_kind = scenario.medium.kind();
        if record.medium.is_some() != (medium_kind != "ideal") {
            return None;
        }
        let summaries = record
            .summaries
            .iter()
            .map(|s| {
                Some(NodeSummary {
                    node: NodeId(s.node),
                    log_entries: usize::try_from(s.log_entries).ok()?,
                    log_dropped: s.log_dropped,
                    average_power: Power::from_micro_watts(f64::from_bits(s.average_power_bits)),
                    total_energy: Energy::from_micro_joules(f64::from_bits(s.total_energy_bits)),
                    radio_duty_cycle: f64::from_bits(s.radio_duty_bits),
                    packets_sent: s.packets_sent,
                    packets_received: s.packets_received,
                    false_wakeups: s.false_wakeups,
                    regression_error: s.regression_error_bits.map(f64::from_bits),
                    cpu_segments: s.cpu_segments,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let stream = record
            .stream
            .iter()
            .map(|m| NodeStreamMeta {
                node: NodeId(m.node),
                entries: m.entries,
                entry_digest: m.entry_digest,
                final_stamp: Stamp::new(SimTime::from_micros(m.final_time_us), m.final_icount),
                log_dropped: m.log_dropped,
                radio_stats: RadioStats {
                    packets_sent: m.radio_stats[0],
                    packets_received: m.radio_stats[1],
                    clean_wakeups: m.radio_stats[2],
                    false_wakeups: m.radio_stats[3],
                    rx_wakeups: m.radio_stats[4],
                    busy_backoffs: m.radio_stats[5],
                },
                ground_truth_total: Energy::from_micro_joules(f64::from_bits(m.ground_truth_bits)),
            })
            .collect();
        let medium_counters = record.medium.as_ref().map(|c| DeliveryCounters {
            delivered: c.delivered,
            lost_out_of_range: c.lost_out_of_range,
            lost_below_sensitivity: c.lost_below_sensitivity,
            lost_captured: c.lost_captured,
            candidates_examined: c.candidates_examined,
            pruned_by_cutoff: c.pruned_by_cutoff,
        });
        Some(ScenarioResult {
            index,
            scenario,
            summaries,
            medium_kind,
            medium_counters,
            stream,
            raw: None,
            cache_hit,
        })
    }

    /// The medium's delivery/loss/capture counters, or a descriptive error
    /// when the scenario's medium does not track them (the ideal medium).
    pub fn medium_counters(&self) -> Result<&DeliveryCounters, CounterAccessError> {
        self.medium_counters
            .as_ref()
            .ok_or_else(|| CounterAccessError {
                scenario: self.scenario.name.clone(),
                medium: self.medium_kind,
            })
    }

    /// Whether the scenario's medium tracked delivery counters.
    pub fn has_medium_counters(&self) -> bool {
        self.medium_counters.is_some()
    }

    /// The raw per-node data, while retained.
    pub fn raw(&self) -> Option<&RawScenarioOutputs> {
        self.raw.as_ref()
    }

    /// Whether the raw outputs are still retained.
    pub fn has_raw(&self) -> bool {
        self.raw.is_some()
    }

    /// Raw log entries currently held by this result (zero on the
    /// zero-materialization path — nothing was ever held).
    pub(crate) fn log_entries_held(&self) -> u64 {
        self.raw
            .as_ref()
            .map(|raw| raw.outputs.iter().map(|(_, o)| o.log.len() as u64).sum())
            .unwrap_or(0)
    }

    /// Total surviving log entries this scenario produced, whether they were
    /// materialized or streamed.
    pub(crate) fn total_entries(&self) -> u64 {
        self.stream.iter().map(|m| m.entries).sum()
    }

    /// Releases the raw outputs, returning how many log entries that freed.
    pub(crate) fn drop_raw(&mut self) -> u64 {
        let held = self.log_entries_held();
        self.raw = None;
        held
    }

    /// The raw output of one node.
    pub fn output(&self, id: NodeId) -> Result<&NodeRunOutput, RawAccessError> {
        let raw = self
            .raw
            .as_ref()
            .ok_or_else(|| RawAccessError::NotRetained {
                scenario: self.scenario.name.clone(),
            })?;
        raw.outputs
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, o)| o)
            .ok_or_else(|| RawAccessError::UnknownNode {
                scenario: self.scenario.name.clone(),
                node: id,
                known: raw.outputs.iter().map(|(n, _)| *n).collect(),
            })
    }

    /// The analysis context of one node.
    pub fn context(&self, id: NodeId) -> Result<&ExperimentContext, RawAccessError> {
        let raw = self
            .raw
            .as_ref()
            .ok_or_else(|| RawAccessError::NotRetained {
                scenario: self.scenario.name.clone(),
            })?;
        raw.contexts
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, c)| c)
            .ok_or_else(|| RawAccessError::UnknownNode {
                scenario: self.scenario.name.clone(),
                node: id,
                known: raw.contexts.iter().map(|(n, _)| *n).collect(),
            })
    }

    /// The summary of one node, if it ran in this scenario.  Always
    /// available — summaries survive the raw drop.
    pub fn summary(&self, id: NodeId) -> Option<&NodeSummary> {
        self.summaries.iter().find(|s| s.node == id)
    }

    /// Decomposes a single-node result into its owned parts
    /// `(node, output, context)` — the shape the `quanto-apps` analyzers
    /// take.
    ///
    /// # Panics
    ///
    /// Panics if the scenario ran more than one node, or if the raw outputs
    /// were not retained (build the runner with
    /// [`crate::FleetRunner::retain_raw`]).
    pub fn into_single_node_parts(self) -> (NodeId, NodeRunOutput, ExperimentContext) {
        let name = self.scenario.name;
        let mut raw = self.raw.unwrap_or_else(|| {
            panic!(
                "into_single_node_parts on scenario {name:?} whose raw outputs were \
                 dropped; build the runner with FleetRunner::retain_raw()"
            )
        });
        assert_eq!(
            raw.outputs.len(),
            1,
            "into_single_node_parts on {}-node scenario {name:?}",
            raw.outputs.len(),
        );
        let (id, output) = raw.outputs.remove(0);
        let (_, context) = raw.contexts.remove(0);
        (id, output, context)
    }

    /// Folds this result into an FNV-1a digest: every surviving log entry's
    /// encoded bytes, the final stamps, drop counts and radio statistics.
    ///
    /// # Panics
    ///
    /// Panics if the raw outputs are gone — the merge folds every result
    /// *before* dropping them.
    pub(crate) fn fold_digest(&self, h: &mut Fnv) {
        let raw = self
            .raw
            .as_ref()
            .expect("digest is folded before raw outputs are dropped");
        let encoding = self.scenario.log_encoding();
        h.write(self.scenario.name.as_bytes());
        h.write(&(self.index as u64).to_le_bytes());
        // Whole-log chunked fold: encode every entry into one scratch buffer
        // and hash it in a single pass.  FNV-1a folds byte by byte, so the
        // concatenation hashes identically to the historical entry-at-a-time
        // writes — the pinned digests prove it.
        let mut bytes = Vec::new();
        for (id, out) in &raw.outputs {
            fold_node_id(h, *id);
            h.write(&(out.log.len() as u64).to_le_bytes());
            bytes.clear();
            for entry in &out.log {
                encoding.encode_entry(entry, &mut bytes);
            }
            h.write(&bytes);
            h.write(&out.final_stamp.time.as_micros().to_le_bytes());
            h.write(&out.final_stamp.icount.to_le_bytes());
            h.write(&out.log_dropped.to_le_bytes());
            h.write(&out.radio_stats.packets_sent.to_le_bytes());
            h.write(&out.radio_stats.packets_received.to_le_bytes());
            h.write(&out.radio_stats.false_wakeups.to_le_bytes());
            h.write(
                &out.ground_truth
                    .total
                    .as_micro_joules()
                    .to_bits()
                    .to_le_bytes(),
            );
        }
        for s in &self.summaries {
            h.write(&s.average_power.as_micro_watts().to_bits().to_le_bytes());
            h.write(&s.total_energy.as_micro_joules().to_bits().to_le_bytes());
            h.write(&s.radio_duty_cycle.to_bits().to_le_bytes());
        }
        // Only counter-tracking mediums fold their counts: the ideal medium
        // contributes nothing, keeping pre-medium-subsystem digests pinned.
        if let Some(c) = &self.medium_counters {
            h.write(self.medium_kind.as_bytes());
            h.write(&c.delivered.to_le_bytes());
            h.write(&c.lost_out_of_range.to_le_bytes());
            h.write(&c.lost_below_sensitivity.to_le_bytes());
            h.write(&c.lost_captured.to_le_bytes());
        }
    }

    /// Folds this result into the *stream* digest: the same shape as
    /// [`ScenarioResult::fold_digest`], with each node's raw entry bytes
    /// replaced by its `(count, entry digest)` residue — which is computable
    /// without ever materializing the log, and catches any byte-level
    /// divergence in the entry stream all the same.
    pub(crate) fn fold_stream_digest(&self, h: &mut Fnv) {
        h.write(self.scenario.name.as_bytes());
        h.write(&(self.index as u64).to_le_bytes());
        for m in &self.stream {
            fold_node_id(h, m.node);
            h.write(&m.entries.to_le_bytes());
            h.write(&m.entry_digest.to_le_bytes());
            h.write(&m.final_stamp.time.as_micros().to_le_bytes());
            h.write(&m.final_stamp.icount.to_le_bytes());
            h.write(&m.log_dropped.to_le_bytes());
            h.write(&m.radio_stats.packets_sent.to_le_bytes());
            h.write(&m.radio_stats.packets_received.to_le_bytes());
            h.write(&m.radio_stats.false_wakeups.to_le_bytes());
            h.write(
                &m.ground_truth_total
                    .as_micro_joules()
                    .to_bits()
                    .to_le_bytes(),
            );
        }
        for s in &self.summaries {
            h.write(&s.average_power.as_micro_watts().to_bits().to_le_bytes());
            h.write(&s.total_energy.as_micro_joules().to_bits().to_le_bytes());
            h.write(&s.radio_duty_cycle.to_bits().to_le_bytes());
            h.write(&s.cpu_segments.to_le_bytes());
        }
        if let Some(c) = &self.medium_counters {
            h.write(self.medium_kind.as_bytes());
            h.write(&c.delivered.to_le_bytes());
            h.write(&c.lost_out_of_range.to_le_bytes());
            h.write(&c.lost_below_sensitivity.to_le_bytes());
            h.write(&c.lost_captured.to_le_bytes());
        }
    }
}

/// Folds a finished scenario's engine and medium effort counters into the
/// calling thread's obs registry.  The counters themselves are plain
/// unconditional increments inside the simulators (no obs branching on any
/// hot path); this read-out is the only obs-gated code, so an obs-off run
/// takes exactly the same simulation path as an obs-on run.
fn flush_obs_metrics(net: &net_sim::NetSim) {
    if !quanto_obs::enabled() {
        return;
    }
    let s = net.engine().stats();
    quanto_obs::counter_add("engine.events_dispatched", s.events_dispatched);
    quanto_obs::counter_add("engine.heap_pushes", s.heap_pushes);
    quanto_obs::counter_add("engine.heap_pops", s.heap_pops);
    quanto_obs::counter_add("engine.stale_pops", s.stale_pops);
    quanto_obs::counter_add("engine.dedup_hits", s.dedup_hits);
    if let Some(c) = net.medium_counters() {
        quanto_obs::counter_add("medium.candidates_examined", c.candidates_examined);
        quanto_obs::counter_add("medium.pruned_by_cutoff", c.pruned_by_cutoff);
    }
    if let Some(e) = net.medium_effort() {
        quanto_obs::counter_add("medium.fades_hashed", e.fades_hashed);
        quanto_obs::counter_add("medium.cca_early_outs", e.cca_early_outs);
    }
}

/// Folds one node id into a digest.  Ids in the v1 range keep their
/// historical single byte, so every pinned digest holds; wider ids write the
/// `0xFF` escape byte (never a plain id — v1 caps at 254) followed by the
/// full little-endian id.
fn fold_node_id(h: &mut Fnv, id: NodeId) {
    if id.fits_v1() {
        h.write(&[id.as_u32() as u8]);
    } else {
        h.write(&[0xFF]);
        h.write(&id.as_u32().to_le_bytes());
    }
}

/// The stream residue of one node, recomputed from its materialized log —
/// the batch-path equivalent of what the sink accumulates live.  Chunking
/// independence of [`StreamDigest`] makes the two byte-comparable.
fn stream_meta_from_raw(
    node: NodeId,
    out: &NodeRunOutput,
    encoding: LogEncoding,
) -> NodeStreamMeta {
    let mut digest = StreamDigest::with_encoding(encoding);
    digest.accept(&out.log);
    NodeStreamMeta {
        node,
        entries: digest.entries(),
        entry_digest: digest.digest(),
        final_stamp: out.final_stamp,
        log_dropped: out.log_dropped,
        radio_stats: out.radio_stats,
        ground_truth_total: out.ground_truth.total,
    }
}

/// How many log entries the summarizer hands the interval builder at a time.
/// Any value yields identical results (equivalence is property-tested); this
/// one keeps the per-chunk working set around one RAM buffer's worth.
const SUMMARY_CHUNK: usize = 1024;

/// Streaming accumulators over completed power intervals: every functional
/// the summary needs, folded interval-by-interval with *exactly* the
/// floating-point operation order of the batch `analysis` helpers (the
/// digest folds these floats, so bit-equality matters).
struct IntervalStats {
    counts: u64,
    time: SimDuration,
    duty_active_us: u64,
    duty_total_us: u64,
    energy: Energy,
    pool: ObservationPool,
}

impl IntervalStats {
    fn new() -> Self {
        IntervalStats {
            counts: 0,
            time: SimDuration::ZERO,
            duty_active_us: 0,
            duty_total_us: 0,
            energy: Energy::ZERO,
            pool: ObservationPool::new(),
        }
    }

    /// Zeroes every accumulator and empties the observation pool — the
    /// workspace-reset counterpart of [`IntervalStats::new`].
    fn reset(&mut self) {
        self.counts = 0;
        self.time = SimDuration::ZERO;
        self.duty_active_us = 0;
        self.duty_total_us = 0;
        self.energy = Energy::ZERO;
        self.pool.clear();
    }

    fn absorb(&mut self, iv: &PowerInterval, radio_rx: SinkId, energy_per_count: Energy) {
        self.counts += iv.counts as u64;
        self.time += iv.duration();
        let d = iv.duration().as_micros();
        self.duty_total_us += d;
        if iv
            .states
            .get(radio_rx.as_usize())
            .map(|s| *s == radio_rx_state::LISTEN)
            .unwrap_or(false)
        {
            self.duty_active_us += d;
        }
        self.energy += energy_per_count * iv.counts as f64;
        self.pool.add(iv);
    }

    fn average_power(&self, energy_per_count: Energy) -> Power {
        if self.time.is_zero() {
            Power::ZERO
        } else {
            (energy_per_count * self.counts as f64) / self.time
        }
    }

    fn radio_duty_cycle(&self) -> f64 {
        if self.duty_total_us == 0 {
            0.0
        } else {
            self.duty_active_us as f64 / self.duty_total_us as f64
        }
    }
}

/// Runs the shared analysis pipeline over one node's raw outputs, streaming
/// the log through the incremental builders chunk by chunk — the same
/// per-chunk fold the live sink performs, so summaries are bit-identical
/// across the materializing and streaming paths.
fn summarize(node: NodeId, out: &NodeRunOutput, ctx: &ExperimentContext) -> NodeSummary {
    let radio_rx = ctx.sinks.radio_rx;
    let mut builder = IntervalBuilder::new(&ctx.catalog);
    let mut stats = IntervalStats::new();
    let mut segments = SegmentBuilder::new(ctx.cpu_dev, false);
    let mut cpu_segments = 0u64;
    for chunk in out.log.chunks(SUMMARY_CHUNK) {
        builder.push_chunk(chunk);
        for iv in builder.drain_completed() {
            stats.absorb(&iv, radio_rx, ctx.energy_per_count);
        }
        segments.push_chunk(chunk);
        cpu_segments += segments.drain_completed().count() as u64;
    }
    for iv in builder.finish(Some(out.final_stamp)) {
        stats.absorb(&iv, radio_rx, ctx.energy_per_count);
    }
    segments.flush(Some(out.final_stamp));
    cpu_segments += segments.drain_completed().count() as u64;
    let regression_error = regress(
        &stats.pool.observations(ctx.energy_per_count),
        &ctx.catalog,
        RegressionOptions::default(),
    )
    .ok()
    .map(|r| r.relative_error);
    NodeSummary {
        node,
        log_entries: out.log.len(),
        log_dropped: out.log_dropped,
        average_power: stats.average_power(ctx.energy_per_count),
        total_energy: stats.energy,
        radio_duty_cycle: stats.radio_duty_cycle(),
        packets_sent: out.radio_stats.packets_sent,
        packets_received: out.radio_stats.packets_received,
        false_wakeups: out.radio_stats.false_wakeups,
        regression_error,
        cpu_segments,
    }
}

/// The merged, deterministically-ordered outcome of a scenario batch.
#[derive(Debug)]
pub struct FleetReport {
    /// One result per submitted scenario, in submission order.
    pub results: Vec<ScenarioResult>,
    /// How many worker threads executed the batch.
    pub threads: usize,
    /// Host wall-clock time the batch took.
    pub wall_clock: std::time::Duration,
    /// The stream digest, folded in submission order during the merge.
    digest: u64,
    /// The legacy pinned digest (folds raw entry bytes), when the retention
    /// mode materialized the logs.
    pinned_digest: Option<u64>,
    /// Scenario name → index into `results`, built at merge time.
    by_name: HashMap<String, usize>,
    /// High-water mark of raw log entries held at once during the run.
    peak_entries_held: u64,
    /// Total raw log entries across every scenario of the batch.
    total_log_entries: u64,
    /// Result-cache traffic for the batch; `None` when no cache was in
    /// play.
    cache: Option<CacheStats>,
}

impl FleetReport {
    /// Looks a result up by scenario name (O(1) — indexed at merge time).
    pub fn result(&self, name: &str) -> Option<&ScenarioResult> {
        self.by_name.get(name).map(|&i| &self.results[i])
    }

    /// Consumes the report, returning the results in submission order.
    pub fn into_results(self) -> Vec<ScenarioResult> {
        self.results
    }

    /// The batch's determinism digest: an FNV-1a fold, in submission order,
    /// of every scenario's per-node stream residues (entry counts and entry
    /// digests), stamps, summaries and medium counters — and nothing
    /// host-dependent (thread count and wall clock are excluded), so a batch
    /// run with 1 thread and with N threads must produce identical digests.
    /// Available in every retention mode: the zero-materialization path
    /// folds it from what the sinks saw, the batch paths from the
    /// materialized logs, and byte-identical entry streams give identical
    /// digests either way.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The legacy *pinned* digest — the exact byte layout of the
    /// pre-streaming batch pipeline, which folds each node's entry count
    /// followed by its raw entry bytes.  Only computable when the retention
    /// mode materialized the logs ([`Retention::Batch`] or
    /// [`Retention::Raw`]); `None` on the zero-materialization path, whose
    /// equivalence is instead proven through [`FleetReport::digest`] and the
    /// per-node stream residues.
    pub fn pinned_digest(&self) -> Option<u64> {
        self.pinned_digest
    }

    /// Recomputes the pinned digest from the retained raw outputs; `None`
    /// when any scenario's raw outputs were dropped.  Exists so tests can
    /// prove the merge-time fold equals the whole-batch computation.
    pub fn recompute_digest(&self) -> Option<u64> {
        if self.results.iter().any(|r| !r.has_raw()) {
            return None;
        }
        let mut h = Fnv::new();
        h.write(&(self.results.len() as u64).to_le_bytes());
        for r in &self.results {
            r.fold_digest(&mut h);
        }
        Some(h.finish())
    }

    /// High-water mark of raw log entries held at once during the run:
    /// completed-but-unmerged results plus merged results whose raw outputs
    /// were retained.  On the default zero-materialization path this is
    /// *zero* — no entry is ever held — which is exactly what the smoke
    /// retention gate asserts.  [`Retention::Batch`] stays bounded by the
    /// out-of-order completion window (≈ the thread count), and
    /// [`Retention::Raw`] peaks at the whole batch.
    pub fn peak_entries_held(&self) -> u64 {
        self.peak_entries_held
    }

    /// Total surviving log entries produced across the whole batch, whether
    /// they streamed through sinks or were materialized.
    pub fn total_log_entries(&self) -> u64 {
        self.total_log_entries
    }

    /// Result-cache traffic for the batch (`None` when no cache was in
    /// play).  `hits` of them skipped simulation entirely; on a fully warm
    /// re-run `misses` is zero.
    pub fn cache_stats(&self) -> Option<CacheStats> {
        self.cache
    }

    /// Stamps the report with its result-cache traffic (set by the sweep
    /// drivers that own the cache handle).
    pub fn set_cache_stats(&mut self, stats: CacheStats) {
        self.cache = Some(stats);
    }

    /// Renders the per-scenario summary table the sweep binaries print.
    pub fn summary_table(&self) -> String {
        let mut t = TextTable::new(vec![
            "#",
            "Scenario",
            "Medium",
            "Node",
            "Entries",
            "Avg power (mW)",
            "Energy (mJ)",
            "RX duty",
            "Sent",
            "Rcvd",
            "False wk",
            "Dlvd/Lost",
        ])
        .with_title(format!(
            "Fleet report — {} scenarios on {} thread(s) in {:.1?}",
            self.results.len(),
            self.threads,
            self.wall_clock
        ));
        for r in &self.results {
            let delivery = match &r.medium_counters {
                Some(c) => format!("{}/{}", c.delivered, c.lost()),
                None => "-".to_string(),
            };
            for s in &r.summaries {
                t.row(vec![
                    r.index.to_string(),
                    r.scenario.name.clone(),
                    r.medium_kind.to_string(),
                    s.node.to_string(),
                    s.log_entries.to_string(),
                    format!("{:.3}", s.average_power.as_milli_watts()),
                    format!("{:.2}", s.total_energy.as_milli_joules()),
                    pct(s.radio_duty_cycle),
                    s.packets_sent.to_string(),
                    s.packets_received.to_string(),
                    s.false_wakeups.to_string(),
                    delivery.clone(),
                ]);
            }
        }
        t.render()
    }

    /// The summary table as machine-readable JSON (one object with a
    /// `results` array; scenario order matches submission order).
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"scenarios\":{},", self.results.len()));
        out.push_str(&format!("\"threads\":{},", self.threads));
        out.push_str(&format!(
            "\"wall_clock_ms\":{},",
            self.wall_clock.as_secs_f64() * 1e3
        ));
        out.push_str(&format!("\"digest\":\"{:#018x}\",", self.digest));
        match self.pinned_digest {
            Some(d) => out.push_str(&format!("\"pinned_digest\":\"{d:#018x}\",")),
            None => out.push_str("\"pinned_digest\":null,"),
        }
        out.push_str(&format!(
            "\"total_log_entries\":{},",
            self.total_log_entries
        ));
        out.push_str(&format!(
            "\"peak_entries_held\":{},",
            self.peak_entries_held
        ));
        match &self.cache {
            Some(c) => out.push_str(&format!(
                "\"cache\":{{\"hits\":{},\"misses\":{},\"writes\":{}}},",
                c.hits, c.misses, c.writes
            )),
            None => out.push_str("\"cache\":null,"),
        }
        out.push_str("\"results\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&scenario_json(
                r.index,
                &r.scenario.name,
                r.medium_kind,
                r.medium_counters.as_ref(),
                &r.summaries,
                r.cache_hit,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// JSON for one scenario's summaries — shared by [`FleetReport::summary_json`]
/// and the runner's progress events.  `counters` is `null` for mediums that
/// do not track delivery.
pub(crate) fn scenario_json(
    index: usize,
    name: &str,
    medium_kind: &str,
    counters: Option<&DeliveryCounters>,
    summaries: &[NodeSummary],
    cache_hit: bool,
) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"index\":{index},"));
    out.push_str(&format!("\"scenario\":\"{}\",", json_escape(name)));
    out.push_str(&format!("\"medium\":\"{}\",", json_escape(medium_kind)));
    out.push_str(&format!("\"cache_hit\":{cache_hit},"));
    match counters {
        Some(c) => out.push_str(&format!(
            "\"delivery\":{{\"delivered\":{},\"lost_out_of_range\":{},\
             \"lost_below_sensitivity\":{},\"lost_captured\":{},\
             \"candidates_examined\":{},\"pruned_by_cutoff\":{}}},",
            c.delivered,
            c.lost_out_of_range,
            c.lost_below_sensitivity,
            c.lost_captured,
            c.candidates_examined,
            c.pruned_by_cutoff
        )),
        None => out.push_str("\"delivery\":null,"),
    }
    out.push_str("\"nodes\":[");
    for (i, s) in summaries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&node_summary_json(s));
    }
    out.push_str("]}");
    out
}

fn node_summary_json(s: &NodeSummary) -> String {
    let regression = s
        .regression_error
        .map(|e| format!("{e}"))
        .unwrap_or_else(|| "null".to_string());
    format!(
        "{{\"node\":{},\"log_entries\":{},\"log_dropped\":{},\"avg_power_mw\":{},\
         \"energy_mj\":{},\"radio_duty\":{},\"packets_sent\":{},\"packets_received\":{},\
         \"false_wakeups\":{},\"cpu_segments\":{},\"regression_error\":{}}}",
        s.node.as_u32(),
        s.log_entries,
        s.log_dropped,
        s.average_power.as_milli_watts(),
        s.total_energy.as_milli_joules(),
        s.radio_duty_cycle,
        s.packets_sent,
        s.packets_received,
        s.false_wakeups,
        s.cpu_segments,
        regression,
    )
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Accumulates merged results in submission order, folding the digest(s)
/// and (in [`Retention::Batch`]) dropping raw outputs as each scenario
/// lands.
///
/// This is *the* determinism seam of the sweep subsystem: every execution
/// topology — the in-process [`crate::FleetRunner`], the multi-process
/// [`crate::dist`] coordinator, and the `quanto-serve` daemon — folds its
/// results through one of these, in submission order, so
/// [`FleetReport::digest`] is byte-identical however the scenarios were
/// scheduled.  Feed it with [`ReportAccumulator::absorb`] strictly in
/// submission-index order (a reorder buffer is the caller's job) and close
/// it with [`ReportAccumulator::finish`].
pub struct ReportAccumulator {
    retention: Retention,
    /// The stream digest — folded in every mode.
    hasher: Fnv,
    /// The legacy pinned digest — folded only when logs are materialized.
    pinned: Option<Fnv>,
    results: Vec<ScenarioResult>,
    by_name: HashMap<String, usize>,
    total_log_entries: u64,
}

impl ReportAccumulator {
    /// Starts a report over `expected` scenarios.
    pub fn new(expected: usize, retention: Retention) -> Self {
        let mut hasher = Fnv::new();
        hasher.write(&(expected as u64).to_le_bytes());
        let pinned = match retention {
            Retention::Stream => None,
            Retention::Batch | Retention::Raw => {
                let mut h = Fnv::new();
                h.write(&(expected as u64).to_le_bytes());
                Some(h)
            }
        };
        ReportAccumulator {
            retention,
            hasher,
            pinned,
            results: Vec::with_capacity(expected),
            by_name: HashMap::with_capacity(expected),
            total_log_entries: 0,
        }
    }

    /// Merges the next result in submission order.  Returns how many raw log
    /// entries were released (zero when retaining or streaming).
    pub fn absorb(&mut self, mut result: ScenarioResult) -> u64 {
        debug_assert_eq!(result.index, self.results.len(), "merge order violated");
        result.fold_stream_digest(&mut self.hasher);
        if let Some(pinned) = self.pinned.as_mut() {
            result.fold_digest(pinned);
        }
        self.total_log_entries += result.total_entries();
        let released = match self.retention {
            Retention::Stream | Retention::Raw => 0,
            Retention::Batch => result.drop_raw(),
        };
        // First submission wins on duplicate names, matching the linear
        // scan's find() semantics.
        self.by_name
            .entry(result.scenario.name.clone())
            .or_insert(self.results.len());
        self.results.push(result);
        released
    }

    /// Finalizes the report.  `threads` and `wall_clock` are display
    /// metadata only — neither folds into the digest.
    pub fn finish(
        self,
        threads: usize,
        wall_clock: std::time::Duration,
        peak_entries_held: u64,
    ) -> FleetReport {
        FleetReport {
            results: self.results,
            threads,
            wall_clock,
            digest: self.hasher.finish(),
            pinned_digest: self.pinned.map(|h| h.finish()),
            by_name: self.by_name,
            peak_entries_held,
            total_log_entries: self.total_log_entries,
            cache: None,
        }
    }
}

/// Minimal FNV-1a 64-bit hasher (no std `Hasher` ceremony needed).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::{
        average_power, cumulative_energy_series, power_intervals, regress_intervals,
        state_duty_cycle,
    };
    use hw_model::SimDuration;

    /// The streaming summarizer must reproduce the batch pipeline bit for
    /// bit — the digest folds these floats.
    #[test]
    fn streaming_summary_is_bit_identical_to_batch_pipeline() {
        let result = ScenarioResult::execute(0, Scenario::lpl(17, 0.18, SimDuration::from_secs(4)));
        let raw = result.raw().expect("execute retains raw");
        for ((id, out), (_, ctx)) in raw.outputs.iter().zip(raw.contexts.iter()) {
            let streamed = result.summary(*id).expect("summary exists");
            // The pre-refactor batch computation, verbatim.
            let intervals = power_intervals(&out.log, &ctx.catalog, Some(out.final_stamp));
            let avg = average_power(&intervals, ctx.energy_per_count);
            let total_energy = cumulative_energy_series(&intervals, ctx.energy_per_count)
                .last()
                .map(|(_, e)| *e)
                .unwrap_or(Energy::ZERO);
            let duty = state_duty_cycle(&intervals, ctx.sinks.radio_rx, |s| {
                s == radio_rx_state::LISTEN
            });
            let regression_error = regress_intervals(
                &intervals,
                &ctx.catalog,
                ctx.energy_per_count,
                RegressionOptions::default(),
            )
            .ok()
            .map(|r| r.relative_error);
            assert_eq!(
                streamed.average_power.as_micro_watts().to_bits(),
                avg.as_micro_watts().to_bits()
            );
            assert_eq!(
                streamed.total_energy.as_micro_joules().to_bits(),
                total_energy.as_micro_joules().to_bits()
            );
            assert_eq!(streamed.radio_duty_cycle.to_bits(), duty.to_bits());
            assert_eq!(
                streamed.regression_error.map(f64::to_bits),
                regression_error.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn raw_access_errors_are_descriptive() {
        let mut result = ScenarioResult::execute(0, Scenario::idle(SimDuration::from_secs(1)));
        // Unknown node while raw is retained.
        let err = result.output(NodeId(99)).unwrap_err();
        assert!(matches!(err, RawAccessError::UnknownNode { .. }));
        assert!(err.to_string().contains("no node 99"), "{err}");
        assert!(result.output(NodeId(1)).is_ok());
        assert!(result.context(NodeId(1)).is_ok());
        // After the drop, lookups explain how to retain.
        result.drop_raw();
        let err = result.output(NodeId(1)).unwrap_err();
        assert!(matches!(err, RawAccessError::NotRetained { .. }));
        assert!(err.to_string().contains("retain_raw"), "{err}");
        // Summaries survive.
        assert!(result.summary(NodeId(1)).is_some());
    }

    #[test]
    fn summary_json_is_well_formed_enough() {
        let result = ScenarioResult::execute(0, Scenario::idle(SimDuration::from_secs(1)));
        let json = scenario_json(
            result.index,
            &result.scenario.name,
            result.medium_kind,
            None,
            &result.summaries,
            false,
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scenario\":\"idle_1s\""));
        assert!(json.contains("\"cache_hit\":false"));
        assert!(json.contains("\"medium\":\"ideal\""));
        assert!(json.contains("\"delivery\":null"));
        assert!(json.contains("\"node\":1"));
        // Balanced braces and brackets (a cheap structural check without a
        // JSON parser in the tree).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close} in {json}");
        }
    }

    #[test]
    fn medium_counter_access_is_fallible_and_descriptive() {
        use crate::scenario::MediumSpec;
        let d = SimDuration::from_secs(2);
        // The ideal medium tracks nothing: a descriptive error, not a panic.
        let ideal = ScenarioResult::execute(0, Scenario::bounce(d));
        assert!(!ideal.has_medium_counters());
        let err = ideal.medium_counters().unwrap_err();
        assert_eq!(err.medium, "ideal");
        let msg = err.to_string();
        assert!(msg.contains("does not track delivery counters"), "{msg}");
        assert!(msg.contains(&ideal.scenario.name), "{msg}");
        // A geometric medium answers.
        let disk = ScenarioResult::execute(
            0,
            Scenario::bounce(d).with_medium(MediumSpec::UnitDisk {
                range_m: 100.0,
                positions: vec![(1, 0.0, 0.0), (4, 5.0, 0.0)],
            }),
        );
        let c = disk.medium_counters().expect("unit disk tracks counters");
        assert!(c.delivered > 0, "bounce packets must flow in range");
    }

    /// A result rebuilt from its own record must fold the exact same bytes
    /// into the stream digest — this is the bit-exactness the cache and the
    /// shard protocol both stand on.
    #[test]
    fn record_round_trip_preserves_the_stream_digest_fold() {
        use crate::scenario::MediumSpec;
        let d = SimDuration::from_secs(2);
        for scenario in [
            Scenario::lpl(17, 0.18, d),
            Scenario::bounce(d).with_medium(MediumSpec::UnitDisk {
                range_m: 100.0,
                positions: vec![(1, 0.0, 0.0), (4, 5.0, 0.0)],
            }),
        ] {
            let original = ScenarioResult::execute_streaming(3, scenario.clone());
            let record = original.to_record();
            let rebuilt = ScenarioResult::from_record(3, scenario, &record, true)
                .expect("own record matches own scenario");
            assert!(rebuilt.cache_hit());
            assert!(!original.cache_hit());
            let mut a = Fnv::new();
            original.fold_stream_digest(&mut a);
            let mut b = Fnv::new();
            rebuilt.fold_stream_digest(&mut b);
            assert_eq!(a.finish(), b.finish(), "fold must be byte-identical");
            assert_eq!(rebuilt.stream_meta(), original.stream_meta());
        }
    }

    /// A record that does not describe the scenario it is paired with must
    /// be rejected, not folded.
    #[test]
    fn from_record_rejects_mismatched_scenarios() {
        let d = SimDuration::from_secs(1);
        let idle = ScenarioResult::execute_streaming(0, Scenario::idle(d));
        let record = idle.to_record();
        // Bounce runs nodes {1, 4}; an idle record has only node 1.
        assert!(ScenarioResult::from_record(0, Scenario::bounce(d), &record, true).is_none());
        // A unit-disk scenario expects delivery counters; idle has none.
        use crate::scenario::MediumSpec;
        let disk = Scenario::idle(d).with_medium(MediumSpec::UnitDisk {
            range_m: 1.0,
            positions: vec![],
        });
        assert!(ScenarioResult::from_record(0, disk, &record, true).is_none());
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
    }
}
