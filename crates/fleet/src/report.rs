//! Per-scenario results and the merged fleet report.

use crate::scenario::Scenario;
use analysis::{
    average_power, cumulative_energy_series, pct, power_intervals, regress_intervals,
    state_duty_cycle, RegressionOptions, TextTable,
};
use hw_model::catalog::radio_rx_state;
use hw_model::{Energy, Power, SimTime};
use os_sim::NodeRunOutput;
use quanto_apps::ExperimentContext;
use quanto_core::NodeId;

/// The analysis-pipeline summary of one node of one scenario.
#[derive(Debug, Clone)]
pub struct NodeSummary {
    /// Which node.
    pub node: NodeId,
    /// Surviving Quanto log entries.
    pub log_entries: usize,
    /// Entries the logger dropped.
    pub log_dropped: u64,
    /// Average metered power over the run.
    pub average_power: Power,
    /// Total metered energy over the run.
    pub total_energy: Energy,
    /// Fraction of time the radio RX path was in LISTEN.
    pub radio_duty_cycle: f64,
    /// Packets fully transmitted.
    pub packets_sent: u64,
    /// Packets fully received.
    pub packets_received: u64,
    /// LPL wake-ups that detected energy but received nothing.
    pub false_wakeups: u64,
    /// Relative error of the per-state power regression, when the run
    /// exercised enough states for it to be solvable.
    pub regression_error: Option<f64>,
}

/// One executed scenario: raw outputs plus the analysis summary.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Position of the scenario in the submitted batch (reports are always
    /// ordered by it, whatever thread ran what).
    pub index: usize,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Raw per-node outputs, in node insertion order.
    pub outputs: Vec<(NodeId, NodeRunOutput)>,
    /// Per-node analysis contexts, in the same order.
    pub contexts: Vec<(NodeId, ExperimentContext)>,
    /// Per-node summaries, in the same order.
    pub summaries: Vec<NodeSummary>,
}

impl ScenarioResult {
    /// Builds, boots, runs and analyzes one scenario.  Self-contained so the
    /// fleet runner can execute it on any worker thread.
    pub fn execute(index: usize, scenario: Scenario) -> ScenarioResult {
        let mut net = scenario.build();
        let end = SimTime::ZERO + scenario.duration;
        net.run_until(end);
        let contexts: Vec<(NodeId, ExperimentContext)> = scenario
            .node_ids()
            .into_iter()
            .map(|id| {
                let kernel = net.node(id).expect("scenario node exists").kernel();
                (id, ExperimentContext::from_kernel(kernel))
            })
            .collect();
        let outputs = net.finish(end);
        let summaries = outputs
            .iter()
            .map(|(id, out)| {
                let (_, ctx) = contexts
                    .iter()
                    .find(|(cid, _)| cid == id)
                    .expect("context captured for every node");
                summarize(*id, out, ctx)
            })
            .collect();
        ScenarioResult {
            index,
            scenario,
            outputs,
            contexts,
            summaries,
        }
    }

    /// The raw output of one node.
    pub fn output(&self, id: NodeId) -> &NodeRunOutput {
        &self
            .outputs
            .iter()
            .find(|(n, _)| *n == id)
            .expect("node ran in this scenario")
            .1
    }

    /// The analysis context of one node.
    pub fn context(&self, id: NodeId) -> &ExperimentContext {
        &self
            .contexts
            .iter()
            .find(|(n, _)| *n == id)
            .expect("node ran in this scenario")
            .1
    }

    /// Decomposes a single-node result into its owned parts
    /// `(node, output, context)` — the shape the `quanto-apps` analyzers
    /// take.
    ///
    /// # Panics
    ///
    /// Panics if the scenario ran more than one node.
    pub fn into_single_node_parts(mut self) -> (NodeId, NodeRunOutput, ExperimentContext) {
        assert_eq!(
            self.outputs.len(),
            1,
            "into_single_node_parts on a {}-node scenario",
            self.outputs.len()
        );
        let (id, output) = self.outputs.remove(0);
        let (_, context) = self.contexts.remove(0);
        (id, output, context)
    }

    /// Folds this result into an FNV-1a digest: every surviving log entry's
    /// encoded bytes, the final stamps, drop counts and radio statistics.
    fn fold_digest(&self, h: &mut Fnv) {
        h.write(self.scenario.name.as_bytes());
        h.write(&(self.index as u64).to_le_bytes());
        for (id, out) in &self.outputs {
            h.write(&[id.as_u8()]);
            h.write(&(out.log.len() as u64).to_le_bytes());
            for entry in &out.log {
                h.write(&entry.encode());
            }
            h.write(&out.final_stamp.time.as_micros().to_le_bytes());
            h.write(&out.final_stamp.icount.to_le_bytes());
            h.write(&out.log_dropped.to_le_bytes());
            h.write(&out.radio_stats.packets_sent.to_le_bytes());
            h.write(&out.radio_stats.packets_received.to_le_bytes());
            h.write(&out.radio_stats.false_wakeups.to_le_bytes());
            h.write(
                &out.ground_truth
                    .total
                    .as_micro_joules()
                    .to_bits()
                    .to_le_bytes(),
            );
        }
        for s in &self.summaries {
            h.write(&s.average_power.as_micro_watts().to_bits().to_le_bytes());
            h.write(&s.total_energy.as_micro_joules().to_bits().to_le_bytes());
            h.write(&s.radio_duty_cycle.to_bits().to_le_bytes());
        }
    }
}

/// Runs the shared analysis pipeline over one node's raw outputs.
fn summarize(node: NodeId, out: &NodeRunOutput, ctx: &ExperimentContext) -> NodeSummary {
    let intervals = power_intervals(&out.log, &ctx.catalog, Some(out.final_stamp));
    let avg = average_power(&intervals, ctx.energy_per_count);
    let total_energy = cumulative_energy_series(&intervals, ctx.energy_per_count)
        .last()
        .map(|(_, e)| *e)
        .unwrap_or(Energy::ZERO);
    let radio_duty_cycle = state_duty_cycle(&intervals, ctx.sinks.radio_rx, |s| {
        s == radio_rx_state::LISTEN
    });
    let regression_error = regress_intervals(
        &intervals,
        &ctx.catalog,
        ctx.energy_per_count,
        RegressionOptions::default(),
    )
    .ok()
    .map(|r| r.relative_error);
    NodeSummary {
        node,
        log_entries: out.log.len(),
        log_dropped: out.log_dropped,
        average_power: avg,
        total_energy,
        radio_duty_cycle,
        packets_sent: out.radio_stats.packets_sent,
        packets_received: out.radio_stats.packets_received,
        false_wakeups: out.radio_stats.false_wakeups,
        regression_error,
    }
}

/// The merged, deterministically-ordered outcome of a scenario batch.
#[derive(Debug)]
pub struct FleetReport {
    /// One result per submitted scenario, in submission order.
    pub results: Vec<ScenarioResult>,
    /// How many worker threads executed the batch.
    pub threads: usize,
    /// Host wall-clock time the batch took.
    pub wall_clock: std::time::Duration,
}

impl FleetReport {
    /// Looks a result up by scenario name.
    pub fn result(&self, name: &str) -> Option<&ScenarioResult> {
        self.results.iter().find(|r| r.scenario.name == name)
    }

    /// Consumes the report, returning the results in submission order.
    pub fn into_results(self) -> Vec<ScenarioResult> {
        self.results
    }

    /// An FNV-1a digest over every scenario's logs, stamps and summaries —
    /// and nothing host-dependent (thread count and wall clock are
    /// excluded), so a batch run with 1 thread and with N threads must
    /// produce identical digests.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(&(self.results.len() as u64).to_le_bytes());
        for r in &self.results {
            r.fold_digest(&mut h);
        }
        h.finish()
    }

    /// Renders the per-scenario summary table the sweep binaries print.
    pub fn summary_table(&self) -> String {
        let mut t = TextTable::new(vec![
            "#",
            "Scenario",
            "Node",
            "Entries",
            "Avg power (mW)",
            "Energy (mJ)",
            "RX duty",
            "Sent",
            "Rcvd",
            "False wk",
        ])
        .with_title(format!(
            "Fleet report — {} scenarios on {} thread(s) in {:.1?}",
            self.results.len(),
            self.threads,
            self.wall_clock
        ));
        for r in &self.results {
            for s in &r.summaries {
                t.row(vec![
                    r.index.to_string(),
                    r.scenario.name.clone(),
                    s.node.to_string(),
                    s.log_entries.to_string(),
                    format!("{:.3}", s.average_power.as_milli_watts()),
                    format!("{:.2}", s.total_energy.as_milli_joules()),
                    pct(s.radio_duty_cycle),
                    s.packets_sent.to_string(),
                    s.packets_received.to_string(),
                    s.false_wakeups.to_string(),
                ]);
            }
        }
        t.render()
    }
}

/// Minimal FNV-1a 64-bit hasher (no std `Hasher` ceremony needed).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}
