//! Per-scenario results and the merged fleet report.
//!
//! Since the streaming refactor the report is *summaries-first*: every
//! scenario is summarized through the incremental analysis builders as it
//! finishes, and the raw [`NodeRunOutput`]s are dropped at merge time unless
//! the runner was built with [`crate::FleetRunner::retain_raw`].  The digest
//! is folded in submission order during the merge, so it is byte-identical
//! to the old whole-batch computation at any thread count — with or without
//! raw retention.

use crate::scenario::Scenario;
use analysis::{pct, PowerInterval};
use analysis::{regress, IntervalBuilder, ObservationPool, RegressionOptions, TextTable};
use hw_model::catalog::radio_rx_state;
use hw_model::{Energy, Power, SimDuration, SimTime, SinkId};
use net_sim::DeliveryCounters;
use os_sim::NodeRunOutput;
use quanto_apps::ExperimentContext;
use quanto_core::NodeId;
use std::collections::HashMap;
use std::fmt;

/// The analysis-pipeline summary of one node of one scenario.
#[derive(Debug, Clone)]
pub struct NodeSummary {
    /// Which node.
    pub node: NodeId,
    /// Surviving Quanto log entries.
    pub log_entries: usize,
    /// Entries the logger dropped.
    pub log_dropped: u64,
    /// Average metered power over the run.
    pub average_power: Power,
    /// Total metered energy over the run.
    pub total_energy: Energy,
    /// Fraction of time the radio RX path was in LISTEN.
    pub radio_duty_cycle: f64,
    /// Packets fully transmitted.
    pub packets_sent: u64,
    /// Packets fully received.
    pub packets_received: u64,
    /// LPL wake-ups that detected energy but received nothing.
    pub false_wakeups: u64,
    /// Relative error of the per-state power regression, when the run
    /// exercised enough states for it to be solvable.
    pub regression_error: Option<f64>,
}

/// Why a raw-output lookup on a [`ScenarioResult`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawAccessError {
    /// The runner summarized and dropped the raw outputs (the default).
    /// Build the runner with [`crate::FleetRunner::retain_raw`] to keep them.
    NotRetained {
        /// The scenario whose raw outputs were requested.
        scenario: String,
    },
    /// The scenario never ran a node with this id.
    UnknownNode {
        /// The scenario whose raw outputs were requested.
        scenario: String,
        /// The id that was asked for.
        node: NodeId,
        /// The ids the scenario did run.
        known: Vec<NodeId>,
    },
}

impl fmt::Display for RawAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RawAccessError::NotRetained { scenario } => write!(
                f,
                "raw outputs of scenario {scenario:?} were summarized and dropped; \
                 build the runner with FleetRunner::retain_raw() to keep them"
            ),
            RawAccessError::UnknownNode {
                scenario,
                node,
                known,
            } => write!(
                f,
                "scenario {scenario:?} ran no node {node}; it ran {known:?}"
            ),
        }
    }
}

impl std::error::Error for RawAccessError {}

/// Why a delivery-counter lookup on a [`ScenarioResult`] failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterAccessError {
    /// The scenario whose counters were requested.
    pub scenario: String,
    /// The medium kind that ran it.
    pub medium: &'static str,
}

impl fmt::Display for CounterAccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "the {:?} medium of scenario {:?} does not track delivery counters; \
             run the scenario under a geometric medium (unit_disk, path_loss or \
             mobility) to get delivery/loss/capture counts",
            self.medium, self.scenario
        )
    }
}

impl std::error::Error for CounterAccessError {}

/// The raw per-node data of one executed scenario, kept only when the runner
/// retains it.
#[derive(Debug)]
pub struct RawScenarioOutputs {
    /// Raw per-node outputs, in node insertion order.
    pub outputs: Vec<(NodeId, NodeRunOutput)>,
    /// Per-node analysis contexts, in the same order.
    pub contexts: Vec<(NodeId, ExperimentContext)>,
}

/// One executed scenario: the analysis summary, plus the raw outputs while
/// they are retained.
#[derive(Debug)]
pub struct ScenarioResult {
    /// Position of the scenario in the submitted batch (reports are always
    /// ordered by it, whatever thread ran what).
    pub index: usize,
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Per-node summaries, in node insertion order.
    pub summaries: Vec<NodeSummary>,
    /// The medium kind the scenario ran under (`"ideal"`, `"unit_disk"`, …).
    pub medium_kind: &'static str,
    /// The medium's delivery counters; `None` when the medium does not track
    /// them (the ideal medium) — read through
    /// [`ScenarioResult::medium_counters`].
    medium_counters: Option<DeliveryCounters>,
    /// Raw outputs; `None` once the merge has summarized-and-dropped them.
    raw: Option<RawScenarioOutputs>,
}

impl ScenarioResult {
    /// Builds, boots, runs and analyzes one scenario.  Self-contained so the
    /// fleet runner can execute it on any worker thread.  The summaries are
    /// computed by feeding the log through the incremental interval builder
    /// in chunks — the streaming path is the *only* path.
    pub fn execute(index: usize, scenario: Scenario) -> ScenarioResult {
        let mut net = scenario.build();
        let end = SimTime::ZERO + scenario.duration;
        net.run_until(end);
        let contexts: Vec<(NodeId, ExperimentContext)> = scenario
            .node_ids()
            .into_iter()
            .map(|id| {
                let kernel = net.node(id).expect("scenario node exists").kernel();
                (id, ExperimentContext::from_kernel(kernel))
            })
            .collect();
        let medium_counters = net.medium_counters();
        let outputs = net.finish(end);
        let summaries = outputs
            .iter()
            .map(|(id, out)| {
                let (_, ctx) = contexts
                    .iter()
                    .find(|(cid, _)| cid == id)
                    .expect("context captured for every node");
                summarize(*id, out, ctx)
            })
            .collect();
        let medium_kind = scenario.medium.kind();
        ScenarioResult {
            index,
            scenario,
            summaries,
            medium_kind,
            medium_counters,
            raw: Some(RawScenarioOutputs { outputs, contexts }),
        }
    }

    /// The medium's delivery/loss/capture counters, or a descriptive error
    /// when the scenario's medium does not track them (the ideal medium).
    pub fn medium_counters(&self) -> Result<&DeliveryCounters, CounterAccessError> {
        self.medium_counters
            .as_ref()
            .ok_or_else(|| CounterAccessError {
                scenario: self.scenario.name.clone(),
                medium: self.medium_kind,
            })
    }

    /// Whether the scenario's medium tracked delivery counters.
    pub fn has_medium_counters(&self) -> bool {
        self.medium_counters.is_some()
    }

    /// The raw per-node data, while retained.
    pub fn raw(&self) -> Option<&RawScenarioOutputs> {
        self.raw.as_ref()
    }

    /// Whether the raw outputs are still retained.
    pub fn has_raw(&self) -> bool {
        self.raw.is_some()
    }

    /// Raw log entries currently held by this result.
    pub(crate) fn log_entries_held(&self) -> u64 {
        self.raw
            .as_ref()
            .map(|raw| raw.outputs.iter().map(|(_, o)| o.log.len() as u64).sum())
            .unwrap_or(0)
    }

    /// Releases the raw outputs, returning how many log entries that freed.
    pub(crate) fn drop_raw(&mut self) -> u64 {
        let held = self.log_entries_held();
        self.raw = None;
        held
    }

    /// The raw output of one node.
    pub fn output(&self, id: NodeId) -> Result<&NodeRunOutput, RawAccessError> {
        let raw = self
            .raw
            .as_ref()
            .ok_or_else(|| RawAccessError::NotRetained {
                scenario: self.scenario.name.clone(),
            })?;
        raw.outputs
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, o)| o)
            .ok_or_else(|| RawAccessError::UnknownNode {
                scenario: self.scenario.name.clone(),
                node: id,
                known: raw.outputs.iter().map(|(n, _)| *n).collect(),
            })
    }

    /// The analysis context of one node.
    pub fn context(&self, id: NodeId) -> Result<&ExperimentContext, RawAccessError> {
        let raw = self
            .raw
            .as_ref()
            .ok_or_else(|| RawAccessError::NotRetained {
                scenario: self.scenario.name.clone(),
            })?;
        raw.contexts
            .iter()
            .find(|(n, _)| *n == id)
            .map(|(_, c)| c)
            .ok_or_else(|| RawAccessError::UnknownNode {
                scenario: self.scenario.name.clone(),
                node: id,
                known: raw.contexts.iter().map(|(n, _)| *n).collect(),
            })
    }

    /// The summary of one node, if it ran in this scenario.  Always
    /// available — summaries survive the raw drop.
    pub fn summary(&self, id: NodeId) -> Option<&NodeSummary> {
        self.summaries.iter().find(|s| s.node == id)
    }

    /// Decomposes a single-node result into its owned parts
    /// `(node, output, context)` — the shape the `quanto-apps` analyzers
    /// take.
    ///
    /// # Panics
    ///
    /// Panics if the scenario ran more than one node, or if the raw outputs
    /// were not retained (build the runner with
    /// [`crate::FleetRunner::retain_raw`]).
    pub fn into_single_node_parts(self) -> (NodeId, NodeRunOutput, ExperimentContext) {
        let name = self.scenario.name;
        let mut raw = self.raw.unwrap_or_else(|| {
            panic!(
                "into_single_node_parts on scenario {name:?} whose raw outputs were \
                 dropped; build the runner with FleetRunner::retain_raw()"
            )
        });
        assert_eq!(
            raw.outputs.len(),
            1,
            "into_single_node_parts on {}-node scenario {name:?}",
            raw.outputs.len(),
        );
        let (id, output) = raw.outputs.remove(0);
        let (_, context) = raw.contexts.remove(0);
        (id, output, context)
    }

    /// Folds this result into an FNV-1a digest: every surviving log entry's
    /// encoded bytes, the final stamps, drop counts and radio statistics.
    ///
    /// # Panics
    ///
    /// Panics if the raw outputs are gone — the merge folds every result
    /// *before* dropping them.
    pub(crate) fn fold_digest(&self, h: &mut Fnv) {
        let raw = self
            .raw
            .as_ref()
            .expect("digest is folded before raw outputs are dropped");
        h.write(self.scenario.name.as_bytes());
        h.write(&(self.index as u64).to_le_bytes());
        for (id, out) in &raw.outputs {
            h.write(&[id.as_u8()]);
            h.write(&(out.log.len() as u64).to_le_bytes());
            for entry in &out.log {
                h.write(&entry.encode());
            }
            h.write(&out.final_stamp.time.as_micros().to_le_bytes());
            h.write(&out.final_stamp.icount.to_le_bytes());
            h.write(&out.log_dropped.to_le_bytes());
            h.write(&out.radio_stats.packets_sent.to_le_bytes());
            h.write(&out.radio_stats.packets_received.to_le_bytes());
            h.write(&out.radio_stats.false_wakeups.to_le_bytes());
            h.write(
                &out.ground_truth
                    .total
                    .as_micro_joules()
                    .to_bits()
                    .to_le_bytes(),
            );
        }
        for s in &self.summaries {
            h.write(&s.average_power.as_micro_watts().to_bits().to_le_bytes());
            h.write(&s.total_energy.as_micro_joules().to_bits().to_le_bytes());
            h.write(&s.radio_duty_cycle.to_bits().to_le_bytes());
        }
        // Only counter-tracking mediums fold their counts: the ideal medium
        // contributes nothing, keeping pre-medium-subsystem digests pinned.
        if let Some(c) = &self.medium_counters {
            h.write(self.medium_kind.as_bytes());
            h.write(&c.delivered.to_le_bytes());
            h.write(&c.lost_out_of_range.to_le_bytes());
            h.write(&c.lost_below_sensitivity.to_le_bytes());
            h.write(&c.lost_captured.to_le_bytes());
        }
    }
}

/// How many log entries the summarizer hands the interval builder at a time.
/// Any value yields identical results (equivalence is property-tested); this
/// one keeps the per-chunk working set around one RAM buffer's worth.
const SUMMARY_CHUNK: usize = 1024;

/// Streaming accumulators over completed power intervals: every functional
/// the summary needs, folded interval-by-interval with *exactly* the
/// floating-point operation order of the batch `analysis` helpers (the
/// digest folds these floats, so bit-equality matters).
struct IntervalStats {
    counts: u64,
    time: SimDuration,
    duty_active_us: u64,
    duty_total_us: u64,
    energy: Energy,
    pool: ObservationPool,
}

impl IntervalStats {
    fn new() -> Self {
        IntervalStats {
            counts: 0,
            time: SimDuration::ZERO,
            duty_active_us: 0,
            duty_total_us: 0,
            energy: Energy::ZERO,
            pool: ObservationPool::new(),
        }
    }

    fn absorb(&mut self, iv: &PowerInterval, radio_rx: SinkId, energy_per_count: Energy) {
        self.counts += iv.counts as u64;
        self.time += iv.duration();
        let d = iv.duration().as_micros();
        self.duty_total_us += d;
        if iv
            .states
            .get(radio_rx.as_usize())
            .map(|s| *s == radio_rx_state::LISTEN)
            .unwrap_or(false)
        {
            self.duty_active_us += d;
        }
        self.energy += energy_per_count * iv.counts as f64;
        self.pool.add(iv);
    }

    fn average_power(&self, energy_per_count: Energy) -> Power {
        if self.time.is_zero() {
            Power::ZERO
        } else {
            (energy_per_count * self.counts as f64) / self.time
        }
    }

    fn radio_duty_cycle(&self) -> f64 {
        if self.duty_total_us == 0 {
            0.0
        } else {
            self.duty_active_us as f64 / self.duty_total_us as f64
        }
    }
}

/// Runs the shared analysis pipeline over one node's raw outputs, streaming
/// the log through the incremental interval builder chunk by chunk.
fn summarize(node: NodeId, out: &NodeRunOutput, ctx: &ExperimentContext) -> NodeSummary {
    let radio_rx = ctx.sinks.radio_rx;
    let mut builder = IntervalBuilder::new(&ctx.catalog);
    let mut stats = IntervalStats::new();
    for chunk in out.log.chunks(SUMMARY_CHUNK) {
        builder.push_chunk(chunk);
        for iv in builder.drain_completed() {
            stats.absorb(&iv, radio_rx, ctx.energy_per_count);
        }
    }
    for iv in builder.finish(Some(out.final_stamp)) {
        stats.absorb(&iv, radio_rx, ctx.energy_per_count);
    }
    let regression_error = regress(
        &stats.pool.observations(ctx.energy_per_count),
        &ctx.catalog,
        RegressionOptions::default(),
    )
    .ok()
    .map(|r| r.relative_error);
    NodeSummary {
        node,
        log_entries: out.log.len(),
        log_dropped: out.log_dropped,
        average_power: stats.average_power(ctx.energy_per_count),
        total_energy: stats.energy,
        radio_duty_cycle: stats.radio_duty_cycle(),
        packets_sent: out.radio_stats.packets_sent,
        packets_received: out.radio_stats.packets_received,
        false_wakeups: out.radio_stats.false_wakeups,
        regression_error,
    }
}

/// The merged, deterministically-ordered outcome of a scenario batch.
#[derive(Debug)]
pub struct FleetReport {
    /// One result per submitted scenario, in submission order.
    pub results: Vec<ScenarioResult>,
    /// How many worker threads executed the batch.
    pub threads: usize,
    /// Host wall-clock time the batch took.
    pub wall_clock: std::time::Duration,
    /// The digest, folded in submission order during the merge.
    digest: u64,
    /// Scenario name → index into `results`, built at merge time.
    by_name: HashMap<String, usize>,
    /// High-water mark of raw log entries held at once during the run.
    peak_entries_held: u64,
    /// Total raw log entries across every scenario of the batch.
    total_log_entries: u64,
}

impl FleetReport {
    /// Looks a result up by scenario name (O(1) — indexed at merge time).
    pub fn result(&self, name: &str) -> Option<&ScenarioResult> {
        self.by_name.get(name).map(|&i| &self.results[i])
    }

    /// Consumes the report, returning the results in submission order.
    pub fn into_results(self) -> Vec<ScenarioResult> {
        self.results
    }

    /// An FNV-1a digest over every scenario's logs, stamps and summaries —
    /// and nothing host-dependent (thread count and wall clock are
    /// excluded), so a batch run with 1 thread and with N threads must
    /// produce identical digests.  The digest is folded in submission order
    /// as scenarios merge, *before* raw outputs are dropped, so it is
    /// available (and identical) whether or not the runner retained them.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Recomputes the digest from the retained raw outputs; `None` when any
    /// scenario's raw outputs were dropped.  Exists so tests can prove the
    /// streamed fold equals the batch computation.
    pub fn recompute_digest(&self) -> Option<u64> {
        if self.results.iter().any(|r| !r.has_raw()) {
            return None;
        }
        let mut h = Fnv::new();
        h.write(&(self.results.len() as u64).to_le_bytes());
        for r in &self.results {
            r.fold_digest(&mut h);
        }
        Some(h.finish())
    }

    /// High-water mark of raw log entries held at once during the run:
    /// completed-but-unmerged results plus merged results whose raw outputs
    /// were retained.  Without [`crate::FleetRunner::retain_raw`] this stays
    /// bounded by the out-of-order completion window (≈ the thread count),
    /// not by the batch size — the number the smoke gate asserts on.
    pub fn peak_entries_held(&self) -> u64 {
        self.peak_entries_held
    }

    /// Total raw log entries produced across the whole batch.
    pub fn total_log_entries(&self) -> u64 {
        self.total_log_entries
    }

    /// Renders the per-scenario summary table the sweep binaries print.
    pub fn summary_table(&self) -> String {
        let mut t = TextTable::new(vec![
            "#",
            "Scenario",
            "Medium",
            "Node",
            "Entries",
            "Avg power (mW)",
            "Energy (mJ)",
            "RX duty",
            "Sent",
            "Rcvd",
            "False wk",
            "Dlvd/Lost",
        ])
        .with_title(format!(
            "Fleet report — {} scenarios on {} thread(s) in {:.1?}",
            self.results.len(),
            self.threads,
            self.wall_clock
        ));
        for r in &self.results {
            let delivery = match &r.medium_counters {
                Some(c) => format!("{}/{}", c.delivered, c.lost()),
                None => "-".to_string(),
            };
            for s in &r.summaries {
                t.row(vec![
                    r.index.to_string(),
                    r.scenario.name.clone(),
                    r.medium_kind.to_string(),
                    s.node.to_string(),
                    s.log_entries.to_string(),
                    format!("{:.3}", s.average_power.as_milli_watts()),
                    format!("{:.2}", s.total_energy.as_milli_joules()),
                    pct(s.radio_duty_cycle),
                    s.packets_sent.to_string(),
                    s.packets_received.to_string(),
                    s.false_wakeups.to_string(),
                    delivery.clone(),
                ]);
            }
        }
        t.render()
    }

    /// The summary table as machine-readable JSON (one object with a
    /// `results` array; scenario order matches submission order).
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"scenarios\":{},", self.results.len()));
        out.push_str(&format!("\"threads\":{},", self.threads));
        out.push_str(&format!(
            "\"wall_clock_ms\":{},",
            self.wall_clock.as_secs_f64() * 1e3
        ));
        out.push_str(&format!("\"digest\":\"{:#018x}\",", self.digest));
        out.push_str(&format!(
            "\"total_log_entries\":{},",
            self.total_log_entries
        ));
        out.push_str(&format!(
            "\"peak_entries_held\":{},",
            self.peak_entries_held
        ));
        out.push_str("\"results\":[");
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&scenario_json(
                r.index,
                &r.scenario.name,
                r.medium_kind,
                r.medium_counters.as_ref(),
                &r.summaries,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// JSON for one scenario's summaries — shared by [`FleetReport::summary_json`]
/// and the runner's progress events.  `counters` is `null` for mediums that
/// do not track delivery.
pub(crate) fn scenario_json(
    index: usize,
    name: &str,
    medium_kind: &str,
    counters: Option<&DeliveryCounters>,
    summaries: &[NodeSummary],
) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"index\":{index},"));
    out.push_str(&format!("\"scenario\":\"{}\",", json_escape(name)));
    out.push_str(&format!("\"medium\":\"{}\",", json_escape(medium_kind)));
    match counters {
        Some(c) => out.push_str(&format!(
            "\"delivery\":{{\"delivered\":{},\"lost_out_of_range\":{},\
             \"lost_below_sensitivity\":{},\"lost_captured\":{}}},",
            c.delivered, c.lost_out_of_range, c.lost_below_sensitivity, c.lost_captured
        )),
        None => out.push_str("\"delivery\":null,"),
    }
    out.push_str("\"nodes\":[");
    for (i, s) in summaries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&node_summary_json(s));
    }
    out.push_str("]}");
    out
}

fn node_summary_json(s: &NodeSummary) -> String {
    let regression = s
        .regression_error
        .map(|e| format!("{e}"))
        .unwrap_or_else(|| "null".to_string());
    format!(
        "{{\"node\":{},\"log_entries\":{},\"log_dropped\":{},\"avg_power_mw\":{},\
         \"energy_mj\":{},\"radio_duty\":{},\"packets_sent\":{},\"packets_received\":{},\
         \"false_wakeups\":{},\"regression_error\":{}}}",
        s.node.as_u8(),
        s.log_entries,
        s.log_dropped,
        s.average_power.as_milli_watts(),
        s.total_energy.as_milli_joules(),
        s.radio_duty_cycle,
        s.packets_sent,
        s.packets_received,
        s.false_wakeups,
        regression,
    )
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Accumulates merged results in submission order, folding the digest and
/// (by default) dropping raw outputs as each scenario lands.  Owned by the
/// runner's merge loop.
pub(crate) struct ReportAccumulator {
    retain_raw: bool,
    hasher: Fnv,
    results: Vec<ScenarioResult>,
    by_name: HashMap<String, usize>,
    total_log_entries: u64,
}

impl ReportAccumulator {
    /// Starts a report over `expected` scenarios.
    pub(crate) fn new(expected: usize, retain_raw: bool) -> Self {
        let mut hasher = Fnv::new();
        hasher.write(&(expected as u64).to_le_bytes());
        ReportAccumulator {
            retain_raw,
            hasher,
            results: Vec::with_capacity(expected),
            by_name: HashMap::with_capacity(expected),
            total_log_entries: 0,
        }
    }

    /// Merges the next result in submission order.  Returns how many raw log
    /// entries were released (zero when retaining).
    pub(crate) fn absorb(&mut self, mut result: ScenarioResult) -> u64 {
        debug_assert_eq!(result.index, self.results.len(), "merge order violated");
        result.fold_digest(&mut self.hasher);
        self.total_log_entries += result.log_entries_held();
        let released = if self.retain_raw {
            0
        } else {
            result.drop_raw()
        };
        // First submission wins on duplicate names, matching the linear
        // scan's find() semantics.
        self.by_name
            .entry(result.scenario.name.clone())
            .or_insert(self.results.len());
        self.results.push(result);
        released
    }

    /// Finalizes the report.
    pub(crate) fn finish(
        self,
        threads: usize,
        wall_clock: std::time::Duration,
        peak_entries_held: u64,
    ) -> FleetReport {
        FleetReport {
            results: self.results,
            threads,
            wall_clock,
            digest: self.hasher.finish(),
            by_name: self.by_name,
            peak_entries_held,
            total_log_entries: self.total_log_entries,
        }
    }
}

/// Minimal FNV-1a 64-bit hasher (no std `Hasher` ceremony needed).
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for b in bytes {
            self.0 ^= *b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::{
        average_power, cumulative_energy_series, power_intervals, regress_intervals,
        state_duty_cycle,
    };
    use hw_model::SimDuration;

    /// The streaming summarizer must reproduce the batch pipeline bit for
    /// bit — the digest folds these floats.
    #[test]
    fn streaming_summary_is_bit_identical_to_batch_pipeline() {
        let result = ScenarioResult::execute(0, Scenario::lpl(17, 0.18, SimDuration::from_secs(4)));
        let raw = result.raw().expect("execute retains raw");
        for ((id, out), (_, ctx)) in raw.outputs.iter().zip(raw.contexts.iter()) {
            let streamed = result.summary(*id).expect("summary exists");
            // The pre-refactor batch computation, verbatim.
            let intervals = power_intervals(&out.log, &ctx.catalog, Some(out.final_stamp));
            let avg = average_power(&intervals, ctx.energy_per_count);
            let total_energy = cumulative_energy_series(&intervals, ctx.energy_per_count)
                .last()
                .map(|(_, e)| *e)
                .unwrap_or(Energy::ZERO);
            let duty = state_duty_cycle(&intervals, ctx.sinks.radio_rx, |s| {
                s == radio_rx_state::LISTEN
            });
            let regression_error = regress_intervals(
                &intervals,
                &ctx.catalog,
                ctx.energy_per_count,
                RegressionOptions::default(),
            )
            .ok()
            .map(|r| r.relative_error);
            assert_eq!(
                streamed.average_power.as_micro_watts().to_bits(),
                avg.as_micro_watts().to_bits()
            );
            assert_eq!(
                streamed.total_energy.as_micro_joules().to_bits(),
                total_energy.as_micro_joules().to_bits()
            );
            assert_eq!(streamed.radio_duty_cycle.to_bits(), duty.to_bits());
            assert_eq!(
                streamed.regression_error.map(f64::to_bits),
                regression_error.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn raw_access_errors_are_descriptive() {
        let mut result = ScenarioResult::execute(0, Scenario::idle(SimDuration::from_secs(1)));
        // Unknown node while raw is retained.
        let err = result.output(NodeId(99)).unwrap_err();
        assert!(matches!(err, RawAccessError::UnknownNode { .. }));
        assert!(err.to_string().contains("no node 99"), "{err}");
        assert!(result.output(NodeId(1)).is_ok());
        assert!(result.context(NodeId(1)).is_ok());
        // After the drop, lookups explain how to retain.
        result.drop_raw();
        let err = result.output(NodeId(1)).unwrap_err();
        assert!(matches!(err, RawAccessError::NotRetained { .. }));
        assert!(err.to_string().contains("retain_raw"), "{err}");
        // Summaries survive.
        assert!(result.summary(NodeId(1)).is_some());
    }

    #[test]
    fn summary_json_is_well_formed_enough() {
        let result = ScenarioResult::execute(0, Scenario::idle(SimDuration::from_secs(1)));
        let json = scenario_json(
            result.index,
            &result.scenario.name,
            result.medium_kind,
            None,
            &result.summaries,
        );
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"scenario\":\"idle_1s\""));
        assert!(json.contains("\"medium\":\"ideal\""));
        assert!(json.contains("\"delivery\":null"));
        assert!(json.contains("\"node\":1"));
        // Balanced braces and brackets (a cheap structural check without a
        // JSON parser in the tree).
        for (open, close) in [('{', '}'), ('[', ']')] {
            let opens = json.matches(open).count();
            let closes = json.matches(close).count();
            assert_eq!(opens, closes, "unbalanced {open}{close} in {json}");
        }
    }

    #[test]
    fn medium_counter_access_is_fallible_and_descriptive() {
        use crate::scenario::MediumSpec;
        let d = SimDuration::from_secs(2);
        // The ideal medium tracks nothing: a descriptive error, not a panic.
        let ideal = ScenarioResult::execute(0, Scenario::bounce(d));
        assert!(!ideal.has_medium_counters());
        let err = ideal.medium_counters().unwrap_err();
        assert_eq!(err.medium, "ideal");
        let msg = err.to_string();
        assert!(msg.contains("does not track delivery counters"), "{msg}");
        assert!(msg.contains(&ideal.scenario.name), "{msg}");
        // A geometric medium answers.
        let disk = ScenarioResult::execute(
            0,
            Scenario::bounce(d).with_medium(MediumSpec::UnitDisk {
                range_m: 100.0,
                positions: vec![(1, 0.0, 0.0), (4, 5.0, 0.0)],
            }),
        );
        let c = disk.medium_counters().expect("unit disk tracks counters");
        assert!(c.delivered > 0, "bounce packets must flow in range");
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\ny");
    }
}
