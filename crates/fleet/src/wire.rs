//! A minimal JSON reader for every Quanto wire format.
//!
//! The work-queue protocol ([`crate::dist`]), the on-disk cache
//! ([`crate::cache`]) and the `quanto-serve` client protocol all speak
//! single-line JSON documents that this workspace also *writes* (see
//! `docs/PROTOCOL.md` for the contracts), so the reader only has to cover
//! the subset the writers emit:
//! objects, arrays, strings (with the standard escapes), unsigned decimal
//! integers, booleans and `null`.  Floats never appear on the wire — every
//! `f64` travels as its IEEE-754 bit pattern in a `u64`, because digests
//! fold those exact bits and a decimal round-trip could perturb them.
//!
//! Anything outside that subset — signed numbers, fractions, exponents,
//! trailing garbage, truncated input — is a parse failure, which callers
//! treat as "corrupt": a cache miss, or a dead shard connection.  Never a
//! panic, and never a silently-wrong value.

use std::fmt::Write as _;

/// One parsed JSON value from the wire subset.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned decimal integer (the only number form the writers emit).
    UInt(u64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Parses one complete document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Option<Value> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return None;
        }
        Some(value)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as a `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// This value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `get(key)` then [`Value::as_u64`].
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key)?.as_u64()
    }

    /// `get(key)` then [`Value::as_str`].
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key)?.as_str()
    }

    /// `get(key)`, where `null` (or absence is NOT forgiven — the field must
    /// be present) maps to `None` inside `Some`: `Some(None)` for an
    /// explicit `null`, `Some(Some(n))` for a number, `None` for anything
    /// else or a missing field.
    pub fn get_opt_u64(&self, key: &str) -> Option<Option<u64>> {
        match self.get(key)? {
            Value::Null => Some(None),
            Value::UInt(n) => Some(Some(*n)),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Option<()> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Some(())
    } else {
        None
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos)? {
        b'{' => parse_obj(bytes, pos),
        b'[' => parse_arr(bytes, pos),
        b'"' => Some(Value::Str(parse_string(bytes, pos)?)),
        b'0'..=b'9' => parse_uint(bytes, pos),
        b't' => parse_lit(bytes, pos, b"true", Value::Bool(true)),
        b'f' => parse_lit(bytes, pos, b"false", Value::Bool(false)),
        b'n' => parse_lit(bytes, pos, b"null", Value::Null),
        _ => None,
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Value) -> Option<Value> {
    if bytes.len() - *pos >= lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Some(value)
    } else {
        None
    }
}

fn parse_uint(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    // A fraction or exponent would silently truncate; the writers never
    // emit them, so their appearance means corruption.
    if matches!(bytes.get(*pos), Some(b'.' | b'e' | b'E')) {
        return None;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()?
        .parse::<u64>()
        .ok()
        .map(Value::UInt)
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Option<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos)? {
            b'"' => {
                *pos += 1;
                return Some(out);
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos)? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes.get(*pos + 1..*pos + 5)?;
                        let code = u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        *pos += 4;
                    }
                    _ => return None,
                }
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let rest = std::str::from_utf8(&bytes[*pos..]).ok()?;
                let c = rest.chars().next()?;
                if (c as u32) < 0x20 {
                    return None;
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Some(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b']' => {
                *pos += 1;
                return Some(Value::Arr(items));
            }
            _ => return None,
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Option<Value> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Some(Value::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos)? {
            b',' => *pos += 1,
            b'}' => {
                *pos += 1;
                return Some(Value::Obj(fields));
            }
            _ => return None,
        }
    }
}

/// Appends `value` as a JSON string literal (quotes included) to `out`.
pub fn push_json_str(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_writer_subset() {
        let v = Value::parse(
            "{\"t\":\"job\",\"n\":18446744073709551615,\"ok\":true,\"none\":null,\
             \"arr\":[1,2,3],\"s\":\"a\\nb\\\"c\\u0041\"}",
        )
        .expect("parses");
        assert_eq!(v.get_str("t"), Some("job"));
        assert_eq!(v.get_u64("n"), Some(u64::MAX));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("none"), Some(&Value::Null));
        assert_eq!(v.get_opt_u64("none"), Some(None));
        assert_eq!(v.get_opt_u64("n"), Some(Some(u64::MAX)));
        assert_eq!(
            v.get("arr").and_then(Value::as_arr).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(v.get_str("s"), Some("a\nb\"cA"));
    }

    #[test]
    fn corruption_is_a_parse_failure_not_a_panic() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{\"a\":-1}",
            "{\"a\":1.5}",
            "{\"a\":1e9}",
            "{\"a\":18446744073709551616}",
            "nullish",
            "{\"a\"\u{0}:1}",
        ] {
            assert_eq!(Value::parse(bad), None, "{bad:?} must fail to parse");
        }
    }

    #[test]
    fn escape_writer_matches_reader() {
        let mut out = String::new();
        push_json_str(&mut out, "line1\nline2\t\"q\" \\ \u{1}");
        let parsed = Value::parse(&out).expect("escaped string parses");
        assert_eq!(parsed.as_str(), Some("line1\nline2\t\"q\" \\ \u{1}"));
    }
}
