//! `quanto-fleet`: the parallel scenario-sweep subsystem.
//!
//! The paper's evaluation is a grid of scenarios — LPL on channel 17 versus
//! 26 under 802.11 interference, Blink calibration and profiling runs, the
//! Bounce ping-pong — which the figure/table binaries used to execute
//! strictly back-to-back on one thread.  This crate makes the grid itself a
//! first-class object:
//!
//! * [`Scenario`] — a declarative, plain-data spec (app kind, topology,
//!   channel, seed, duration) from which a ready-to-run simulation is built;
//! * [`GridSpec`] — a plain-data sweep-grid description (axes of seeds ×
//!   channels × mediums × durations crossed with app specs), parseable from
//!   a simple config file, that expands to a scenario batch;
//! * [`FleetRunner`] — shards an arbitrary batch of scenarios across worker
//!   threads (each worker drives its own independent `os_sim::Engine`),
//!   streams completions through a merge loop that folds the digest(s), and
//!   emits per-scenario [`FleetProgress`] events mid-sweep.  The default
//!   [`Retention::Stream`] mode feeds every node's log through a
//!   [`quanto_core::LogSink`] → incremental-builder chain *during* the run,
//!   so raw logs are never materialized (opt into [`Retention::Batch`] for
//!   the legacy pinned digest, or [`FleetRunner::retain_raw`] for raw
//!   re-analysis);
//! * [`FleetReport`] — the merged, submission-ordered results, fed through
//!   the `analysis` crate's *incremental* interval builders (duty cycle,
//!   energy, regression) and digested for bit-reproducibility checks;
//! * [`scenarios`] — the paper's experiment grids expressed as scenario
//!   batches, plus adapters back into the `quanto-apps` result types.
//!
//! # Example
//!
//! ```
//! use hw_model::SimDuration;
//! use quanto_fleet::{scenarios, FleetRunner, Scenario};
//!
//! // A seed × channel LPL grid, sharded across 4 worker threads.
//! let mut grid = scenarios::lpl_grid(&[1, 2], &[17, 26], 0.18, SimDuration::from_secs(2));
//! grid.push(Scenario::blink(SimDuration::from_secs(2)));
//! let report = FleetRunner::new(4).run(grid);
//! assert_eq!(report.results.len(), 5);
//! // Same batch, one thread: bit-identical results.
//! let mut again = scenarios::lpl_grid(&[1, 2], &[17, 26], 0.18, SimDuration::from_secs(2));
//! again.push(Scenario::blink(SimDuration::from_secs(2)));
//! assert_eq!(FleetRunner::sequential().run(again).digest(), report.digest());
//! ```

pub mod cache;
pub mod dist;
pub mod grid;
mod record;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod wire;
pub mod workspace;

pub use grid::{GridError, GridSpec};

pub use cache::{CacheStats, ResultCache, CACHE_FORMAT_VERSION};
pub use dist::{Coordinator, DistError, DistOptions, GridOverrides};
pub use net_sim::DeliveryCounters;
pub use report::{
    CounterAccessError, FleetReport, NodeStreamMeta, NodeSummary, RawAccessError,
    RawScenarioOutputs, ReportAccumulator, ScenarioResult,
};
pub use runner::{execute_or_cached, execute_or_cached_in, FleetProgress, FleetRunner, Retention};
pub use scenario::{
    AppSpec, GeometrySpec, MediumSpec, PathLossSpec, Scenario, TopologySpec, TraceSpec,
    SPEC_DIGEST_VERSION,
};
pub use workspace::SimWorkspace;

/// The paper's experiment grids as scenario batches, and adapters from
/// scenario results back into the `quanto-apps` result types.
pub mod scenarios {
    use crate::report::ScenarioResult;
    use crate::scenario::{GeometrySpec, MediumSpec, PathLossSpec, Scenario};
    use hw_model::SimDuration;
    use quanto_apps::{analyze_lpl, blink_run_from_parts, BlinkRun, LplRun};

    /// Figure 13's two-channel comparison as a scenario batch: channel 17
    /// (under the access point) and channel 26 (clear), both with the
    /// paper's 18 % interference duty.  Byte-compatible with the sequential
    /// `quanto_apps::run_lpl_comparison`.
    pub fn lpl_comparison(duration: SimDuration) -> Vec<Scenario> {
        vec![
            Scenario::lpl(17, 0.18, duration),
            Scenario::lpl(26, 0.18, duration),
        ]
    }

    /// A seed × channel LPL grid — the sweep that did not exist when the
    /// comparison binaries ran one scenario at a time.
    pub fn lpl_grid(
        seeds: &[u64],
        channels: &[u8],
        interference_duty: f64,
        duration: SimDuration,
    ) -> Vec<Scenario> {
        let mut grid = Vec::with_capacity(seeds.len() * channels.len());
        for seed in seeds {
            for channel in channels {
                grid.push(
                    Scenario::lpl(*channel, interference_duty, duration)
                        .with_seed(*seed)
                        .named(format!("lpl_ch{channel}_seed{seed}")),
                );
            }
        }
        grid
    }

    /// The medium axis: the same two-node Bounce exchange through every
    /// medium kind.  `ideal` hears everything; `unit_disk` places the nodes
    /// 8 m apart inside a 10 m disk; `path_loss` puts them 10 m apart under
    /// the default log-distance model (≈ −70 dBm, comfortably above the
    /// floor, shadowing fades individual frames); `mobility` walks node 4
    /// out of the disk at the midpoint of the run and back, so deliveries
    /// stop and resume mid-scenario.
    pub fn medium_grid(duration: SimDuration) -> Vec<Scenario> {
        let us = duration.as_micros();
        vec![
            Scenario::bounce(duration).named("bounce_medium_ideal"),
            Scenario::bounce(duration)
                .with_medium(MediumSpec::UnitDisk {
                    range_m: 10.0,
                    positions: vec![(1, 0.0, 0.0), (4, 8.0, 0.0)],
                })
                .named("bounce_medium_unit_disk"),
            Scenario::bounce(duration)
                .with_medium(MediumSpec::PathLoss {
                    model: PathLossSpec::default(),
                    positions: vec![(1, 0.0, 0.0), (4, 10.0, 0.0)],
                })
                .named("bounce_medium_path_loss"),
            Scenario::bounce(duration)
                .with_medium(MediumSpec::Mobility {
                    base: GeometrySpec::UnitDisk { range_m: 10.0 },
                    positions: vec![(1, 0.0, 0.0)],
                    traces: vec![(4, vec![(0, 5.0, 0.0), (us / 2, 30.0, 0.0), (us, 5.0, 0.0)])],
                })
                .named("bounce_medium_mobility"),
        ]
    }

    /// The multi-node path-loss stress profile: `pairs` Bounce exchanges on
    /// one channel, pairs spaced 30 m apart along a line with 5 m between
    /// partners.  Partners hear each other loudly; neighboring pairs sit
    /// near the sensitivity floor, close enough to collide but too far to
    /// carrier-sense reliably — the hidden-terminal regime the capture rule
    /// exists for.
    pub fn path_loss_stress(pairs: u16, seed: u64, duration: SimDuration) -> Scenario {
        let mut positions = Vec::with_capacity(2 * pairs as usize);
        for k in 0..pairs as u32 {
            let x = 30.0 * k as f64;
            positions.push((2 * k + 1, x, 0.0));
            positions.push((2 * k + 2, x + 5.0, 0.0));
        }
        Scenario::bounce_pairs(pairs, duration)
            .with_medium(MediumSpec::PathLoss {
                model: PathLossSpec::default(),
                positions,
            })
            .with_seed(seed)
            .named(format!("path_loss_stress_{}n_seed{seed}", 2 * pairs as u32))
    }

    /// Converts a finished LPL scenario into the `quanto-apps` [`LplRun`]
    /// (duty cycle, wake-up classification, cumulative energy) the Figure 13
    /// and 14 harnesses consume.  Needs raw outputs — run the batch with
    /// [`crate::FleetRunner::retain_raw`].
    pub fn into_lpl_run(result: ScenarioResult) -> LplRun {
        let channel = result.scenario.channel;
        let (_, output, context) = result.into_single_node_parts();
        analyze_lpl(channel, output, context)
    }

    /// Converts a finished Blink scenario into the `quanto-apps`
    /// [`BlinkRun`] the calibration and Table 3 profiling consume.  Needs
    /// raw outputs — run the batch with [`crate::FleetRunner::retain_raw`].
    pub fn into_blink_run(result: ScenarioResult) -> BlinkRun {
        let (id, output, context) = result.into_single_node_parts();
        blink_run_from_parts(id, output, context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::SimDuration;

    /// The fleet path must reproduce the legacy sequential drivers exactly:
    /// same scenario, same seeds, same logs.
    #[test]
    fn fleet_lpl_comparison_matches_sequential_driver() {
        let duration = SimDuration::from_secs(4);
        let report = FleetRunner::new(2)
            .retain_raw()
            .run(scenarios::lpl_comparison(duration));
        let mut results = report.into_results();
        let ch17_fleet = scenarios::into_lpl_run(results.remove(0));
        let ch26_fleet = scenarios::into_lpl_run(results.remove(0));
        let ch17_seq = quanto_apps::run_lpl_experiment(17, duration, 0.18);
        let ch26_seq = quanto_apps::run_lpl_experiment(26, duration, 0.18);
        assert_eq!(ch17_fleet.output.log, ch17_seq.output.log);
        assert_eq!(ch26_fleet.output.log, ch26_seq.output.log);
        assert_eq!(ch17_fleet.wakeups, ch17_seq.wakeups);
        assert_eq!(ch17_fleet.false_positives, ch17_seq.false_positives);
        assert!(ch17_fleet.duty_cycle >= ch26_fleet.duty_cycle);
    }

    /// The fleet path must also reproduce the Blink profile experiment.
    #[test]
    fn fleet_blink_scenario_feeds_the_profile_pipeline() {
        let duration = SimDuration::from_secs(16);
        let report = FleetRunner::sequential()
            .retain_raw()
            .run(vec![Scenario::blink(duration)]);
        let run = scenarios::into_blink_run(report.into_results().remove(0));
        let profile = quanto_apps::blink_profile_from_run(run);
        assert!(profile.log_entries > 100);
        assert!(profile.reconstruction_error < 0.05);
    }

    /// Seeds must be a real axis: different seeds change an interfered LPL
    /// run, identical seeds reproduce it.
    #[test]
    fn seeds_are_a_real_sweep_axis() {
        let d = SimDuration::from_secs(4);
        let batch = |seed| vec![Scenario::lpl(17, 0.18, d).with_seed(seed)];
        let a = FleetRunner::sequential().run(batch(1)).digest();
        let a2 = FleetRunner::sequential().run(batch(1)).digest();
        let b = FleetRunner::sequential().run(batch(2)).digest();
        assert_eq!(a, a2, "same seed must reproduce");
        assert_ne!(a, b, "different seeds must differ");
    }
}
