//! End-to-end contracts of the fleet-of-fleets layer (`quanto_fleet::dist`)
//! and the result cache, pinned against the same digest constants as
//! `digest_pin.rs`:
//!
//! * sharded sweeps fold the byte-identical stream digest at any shard
//!   count × thread count;
//! * a warm cache answers the whole sweep with zero simulations (the
//!   coordinator never serves a chunk) and the digest still matches;
//! * a shard dying mid-sweep only requeues its chunk — a surviving shard
//!   finishes the sweep with the same digest;
//! * losing *every* shard is a prompt `ShardsDied` error, not a hang.
//!
//! Shards here are in-process threads driving [`dist::run_shard`] over real
//! loopback TCP — the identical code path `fleet_sweep --shard ADDR` runs,
//! minus the process spawn (which `crates/bench/tests/fleet_sweep_cli.rs`
//! covers).

use quanto_fleet::{dist, Coordinator, DistError, DistOptions, GridOverrides};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

/// `digest_pin.rs`'s `pin_batch()` as grid text, with its recorded stream
/// digest — the constant every execution topology below must reproduce.
const PIN_BATCH_STREAM_DIGEST: u64 = 0xf73f_b2e3_9f24_1280;
const PIN_BATCH_GRID: &str = "
[grid]
name = pin_batch
seconds = 2

[cell.lpl]
app = lpl
interference = 0.18
seeds = 1..2
channels = 17, 26
name = lpl_ch{channel}_seed{seed}

[cell.blink]
app = blink

[cell.bounce]
app = bounce

[cell.idle]
app = idle
seconds = 1
";
const PIN_BATCH_LEN: usize = 7;

fn options(shards: u32, threads: usize, cache_dir: Option<PathBuf>) -> DistOptions {
    DistOptions {
        shards,
        threads,
        cache_dir,
    }
}

/// Binds a coordinator, drives it with `shards` in-thread `run_shard`
/// workers, and returns (digest, progress events).
fn run_sharded(
    shards: u32,
    threads: usize,
    cache_dir: Option<PathBuf>,
) -> (u64, Vec<quanto_fleet::FleetProgress>) {
    let coordinator = Coordinator::bind(
        PIN_BATCH_GRID,
        GridOverrides::default(),
        &options(shards, threads, cache_dir),
    )
    .expect("bind");
    assert_eq!(coordinator.total(), PIN_BATCH_LEN);
    let addr = coordinator.addr().expect("addr").to_string();
    let workers: Vec<_> = (0..shards)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || dist::run_shard(&addr))
        })
        .collect();
    let mut events = Vec::new();
    let report = coordinator
        .run(|p| events.push(p))
        .expect("sweep completes");
    for worker in workers {
        worker.join().expect("shard thread").expect("shard ok");
    }
    (report.digest(), events)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quanto-dist-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The tentpole invariance: 2 and 4 shard processes' worth of workers, on 1
/// and 4 threads each, all fold the exact stream digest the in-process
/// pin recorded — sharding is invisible in the output bytes.
#[test]
fn sharded_sweeps_reproduce_the_stream_digest_pin() {
    for shards in [2u32, 4] {
        for threads in [1usize, 4] {
            let (digest, events) = run_sharded(shards, threads, None);
            assert_eq!(
                digest, PIN_BATCH_STREAM_DIGEST,
                "digest drifted at {shards} shards × {threads} threads"
            );
            assert_eq!(events.len(), PIN_BATCH_LEN);
            for (i, p) in events.iter().enumerate() {
                assert_eq!(p.index, i, "submission order preserved");
                assert_eq!(p.completed, i + 1);
                assert!(p.shard.is_some(), "every cell names its executing shard");
                assert!(!p.cache_hit, "no cache configured");
            }
        }
    }
}

/// The cache contract across processes-worth of topology: a cold sharded
/// sweep populates the cache (every cell a miss + write), and the warm
/// re-run merges entirely from the bind-time probe — zero chunks served,
/// zero shards needed, zero simulations run — with the identical digest.
#[test]
fn warm_cache_sweep_runs_zero_simulations_and_keeps_the_digest() {
    let dir = tmp_dir("warm");

    let (digest, events) = run_sharded(2, 2, Some(dir.clone()));
    assert_eq!(digest, PIN_BATCH_STREAM_DIGEST);
    assert!(events.iter().all(|p| !p.cache_hit), "cold run simulates");

    // Warm: the bind-time probe answers everything, so `pending()` is zero
    // and the run completes without a single shard existing.
    let coordinator = Coordinator::bind(
        PIN_BATCH_GRID,
        GridOverrides::default(),
        &options(2, 2, Some(dir.clone())),
    )
    .expect("bind warm");
    assert_eq!(coordinator.pending(), 0, "warm probe answers every cell");
    let mut events = Vec::new();
    let report = coordinator.run(|p| events.push(p)).expect("warm run");
    assert_eq!(
        report.digest(),
        PIN_BATCH_STREAM_DIGEST,
        "warm digest byte-identical"
    );
    assert_eq!(events.len(), PIN_BATCH_LEN);
    assert!(
        events.iter().all(|p| p.cache_hit),
        "warm run hits everywhere"
    );
    assert!(report.results.iter().all(|r| r.cache_hit()));
    let stats = report.cache_stats().expect("cached run is stamped");
    assert_eq!(
        (stats.hits, stats.misses, stats.writes),
        (PIN_BATCH_LEN as u64, 0, 0)
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A hand-rolled broken shard: completes the handshake, claims one chunk,
/// then drops the connection without returning a result.
fn claim_a_chunk_and_die(addr: &str) {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writer.write_all(b"{\"t\":\"hello\"}\n").expect("hello");
    let mut job = String::new();
    reader.read_line(&mut job).expect("job");
    // Echo the expected count back without bothering to parse the grid.
    let expected: usize = job
        .split("\"expected\":")
        .nth(1)
        .and_then(|tail| tail.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("job carries expected count");
    writer
        .write_all(format!("{{\"t\":\"ready\",\"count\":{expected}}}\n").as_bytes())
        .expect("ready");
    writer.write_all(b"{\"t\":\"next\"}\n").expect("next");
    let mut chunk = String::new();
    reader.read_line(&mut chunk).expect("chunk");
    assert!(chunk.contains("\"indices\""), "got a chunk: {chunk}");
    // …and die with the chunk unreturned.
}

/// Fault tolerance: a shard that dies holding a chunk costs nothing but a
/// requeue — the surviving shard drains the queue and the digest is still
/// byte-identical to the pin.
#[test]
fn dying_shard_requeues_its_chunk_and_the_sweep_completes() {
    let coordinator = Coordinator::bind(
        PIN_BATCH_GRID,
        GridOverrides::default(),
        &options(2, 1, None),
    )
    .expect("bind");
    let addr = coordinator.addr().expect("addr").to_string();
    let shards = std::thread::spawn(move || {
        claim_a_chunk_and_die(&addr);
        dist::run_shard(&addr)
    });
    let mut merged = 0usize;
    let report = coordinator
        .run(|_| merged += 1)
        .expect("sweep survives the death");
    shards.join().expect("shard thread").expect("survivor ok");
    assert_eq!(merged, PIN_BATCH_LEN, "every scenario merged exactly once");
    assert_eq!(report.digest(), PIN_BATCH_STREAM_DIGEST);
}

/// Losing every shard with work still queued must fail promptly with
/// `ShardsDied` — not block forever waiting for a chunk nobody will serve.
#[test]
fn losing_every_shard_is_an_error_not_a_hang() {
    let coordinator = Coordinator::bind(
        PIN_BATCH_GRID,
        GridOverrides::default(),
        &options(1, 1, None),
    )
    .expect("bind");
    let addr = coordinator.addr().expect("addr").to_string();
    let killer = std::thread::spawn(move || claim_a_chunk_and_die(&addr));
    let started = std::time::Instant::now();
    let outcome = coordinator.run(|_| {});
    killer.join().expect("killer thread");
    match outcome {
        Err(DistError::ShardsDied { merged, total }) => {
            assert_eq!(total, PIN_BATCH_LEN);
            assert!(merged < total);
        }
        other => panic!("expected ShardsDied, got {other:?}"),
    }
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "death detection must be prompt"
    );
}
