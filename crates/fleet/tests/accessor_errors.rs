//! The fallible-accessor contract: raw-output and delivery-counter lookups
//! fail with *descriptive* errors (never panics), in every retention mode,
//! and the machine-readable report stays well-formed when the data a field
//! would describe was never tracked.

use hw_model::SimDuration;
use quanto_core::NodeId;
use quanto_fleet::{FleetRunner, MediumSpec, RawAccessError, Retention, Scenario, ScenarioResult};

fn bounce(d: u64) -> Scenario {
    Scenario::bounce(SimDuration::from_secs(d))
}

#[test]
fn not_retained_error_names_the_scenario_and_the_fix() {
    // The zero-materialization path never has raw outputs.
    let streamed = ScenarioResult::execute_with(0, bounce(1), Retention::Stream);
    assert!(!streamed.has_raw());
    let err = streamed.output(NodeId(1)).unwrap_err();
    assert!(matches!(err, RawAccessError::NotRetained { .. }));
    let msg = err.to_string();
    assert!(msg.contains("bounce_1s"), "{msg}");
    assert!(msg.contains("retain_raw"), "{msg}");
    assert_eq!(streamed.context(NodeId(1)).unwrap_err().to_string(), msg);
    // Summaries and stream residues survive regardless.
    assert!(streamed.summary(NodeId(1)).is_some());
    assert_eq!(streamed.stream_meta().len(), 2);
}

#[test]
fn unknown_node_error_lists_the_nodes_that_ran() {
    let result = ScenarioResult::execute_with(0, bounce(1), Retention::Raw);
    let err = result.output(NodeId(9)).unwrap_err();
    let RawAccessError::UnknownNode {
        scenario,
        node,
        known,
    } = &err
    else {
        panic!("expected UnknownNode, got {err:?}");
    };
    assert_eq!(scenario, "bounce_1s");
    assert_eq!(*node, NodeId(9));
    assert_eq!(known, &[NodeId(1), NodeId(4)]);
    let msg = err.to_string();
    assert!(msg.contains("no node 9"), "{msg}");
    assert!(msg.contains('4'), "{msg} should list the known ids");
}

#[test]
fn counter_error_names_the_medium_and_the_alternatives() {
    let ideal = ScenarioResult::execute_with(0, bounce(1), Retention::Stream);
    assert!(!ideal.has_medium_counters());
    let err = ideal.medium_counters().unwrap_err();
    assert_eq!(err.medium, "ideal");
    assert_eq!(err.scenario, "bounce_1s");
    let msg = err.to_string();
    assert!(msg.contains("does not track delivery counters"), "{msg}");
    for alternative in ["unit_disk", "path_loss", "mobility"] {
        assert!(
            msg.contains(alternative),
            "{msg} should suggest {alternative}"
        );
    }
    // A geometric medium answers on the same streaming path.
    let disk = ScenarioResult::execute_with(
        0,
        bounce(2).with_medium(MediumSpec::UnitDisk {
            range_m: 100.0,
            positions: vec![(1, 0.0, 0.0), (4, 5.0, 0.0)],
        }),
        Retention::Stream,
    );
    assert!(disk.medium_counters().unwrap().delivered > 0);
}

/// `summary_json` must stay structurally valid when counters are untracked:
/// `"delivery":null`, no pinned digest on the streaming path, balanced
/// braces and brackets throughout.
#[test]
fn summary_json_is_well_formed_without_counters() {
    let report =
        FleetRunner::sequential().run(vec![bounce(1), Scenario::idle(SimDuration::from_secs(1))]);
    let json = report.summary_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"delivery\":null"), "{json}");
    assert!(json.contains("\"pinned_digest\":null"), "{json}");
    assert!(json.contains("\"cpu_segments\":"), "{json}");
    for (open, close) in [('{', '}'), ('[', ']')] {
        assert_eq!(
            json.matches(open).count(),
            json.matches(close).count(),
            "unbalanced {open}{close} in {json}"
        );
    }
    // With a materializing mode the pinned digest appears as a hex string.
    let pinned = FleetRunner::sequential()
        .batch_digest()
        .run(vec![bounce(1)]);
    assert!(
        pinned.summary_json().contains("\"pinned_digest\":\"0x"),
        "{}",
        pinned.summary_json()
    );
}
