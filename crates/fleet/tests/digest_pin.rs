//! Pins the report digests of fixed scenario batches across refactors of
//! the analysis pipeline.
//!
//! Two families of pins, one proof chain:
//!
//! * The **pinned digests** ([`FleetReport::pinned_digest`]) were recorded
//!   on the pre-streaming batch pipeline (whole-log `power_intervals`, raw
//!   outputs retained to the end).  Every materializing retention mode must
//!   reproduce them byte for byte, at any thread count — they prove the
//!   merge-time fold and the incremental builders never drifted from the
//!   original whole-batch computation.
//! * The **stream digests** ([`FleetReport::digest`]) fold each node's
//!   in-run entry stream (count + FNV over the encoded bytes) instead of
//!   the raw bytes, which is what the zero-materialization path can
//!   compute.  The bridge test below proves, scenario by scenario and node
//!   by node, that the sink-fed path sees byte-identical entry streams to
//!   the materializing path — so the pinned constants transitively cover
//!   the streaming path too, and the stream constants pin it directly.

use hw_model::SimDuration;
use quanto_fleet::{scenarios, FleetRunner, GridSpec, MediumSpec, Scenario};

/// `pin_batch()` pinned digest recorded on the pre-refactor batch pipeline.
const PIN_BATCH_DIGEST: u64 = 0x766a_a912_dcd1_2f29;
/// Single 4-second LPL channel-17 scenario, same provenance.
const SINGLE_LPL_DIGEST: u64 = 0x297e_7546_08a5_134c;

/// `pin_batch()` stream digest, recorded on the zero-materialization path
/// whose entry streams the bridge test proves byte-identical to the batch
/// pipeline above.
const PIN_BATCH_STREAM_DIGEST: u64 = 0xf73f_b2e3_9f24_1280;
/// Single 4-second LPL channel-17 scenario, stream digest.
const SINGLE_LPL_STREAM_DIGEST: u64 = 0x1f37_3cb5_5ee7_ff3a;

fn pin_batch() -> Vec<Scenario> {
    let d = SimDuration::from_secs(2);
    let mut batch = scenarios::lpl_grid(&[1, 2], &[17, 26], 0.18, d);
    batch.push(Scenario::blink(d));
    batch.push(Scenario::bounce(d));
    batch.push(Scenario::idle(SimDuration::from_secs(1)));
    batch
}

/// The same batch as `pin_batch()`, but written as a grid config file — a
/// `GridSpec` must reproduce a hand-built grid scenario-for-scenario, and
/// therefore digest-for-digest.
const PIN_BATCH_GRID: &str = "
[grid]
name = pin_batch
seconds = 2

[cell.lpl]
app = lpl
interference = 0.18
seeds = 1..2
channels = 17, 26
name = lpl_ch{channel}_seed{seed}

[cell.blink]
app = blink

[cell.bounce]
app = bounce

[cell.idle]
app = idle
seconds = 1
";

#[test]
fn materializing_modes_reproduce_pre_refactor_digests() {
    for runner in [
        FleetRunner::sequential().batch_digest(),
        FleetRunner::new(4).batch_digest(),
        FleetRunner::sequential().retain_raw(),
        FleetRunner::new(4).retain_raw(),
    ] {
        let report = runner.run(pin_batch());
        assert_eq!(
            report.pinned_digest(),
            Some(PIN_BATCH_DIGEST),
            "pinned digest drifted from the pre-refactor batch pipeline \
             (threads {}, retention {:?})",
            runner.threads(),
            runner.retention(),
        );
        assert_eq!(
            report.digest(),
            PIN_BATCH_STREAM_DIGEST,
            "stream digest drifted (threads {}, retention {:?})",
            runner.threads(),
            runner.retention(),
        );
    }
}

#[test]
fn streaming_mode_reproduces_the_stream_digest_pin() {
    for runner in [FleetRunner::sequential(), FleetRunner::new(4)] {
        let report = runner.run(pin_batch());
        assert_eq!(
            report.digest(),
            PIN_BATCH_STREAM_DIGEST,
            "zero-materialization stream digest drifted (threads {})",
            runner.threads(),
        );
        assert_eq!(
            report.pinned_digest(),
            None,
            "stream mode holds no raw bytes"
        );
        assert_eq!(report.peak_entries_held(), 0);
    }
}

/// The bridge that extends the pre-refactor pins to the sink-fed path: for
/// every scenario and node, the zero-materialization run must report the
/// same entry count and the same FNV digest over the encoded entry bytes as
/// the materializing run — i.e. the sink saw exactly the bytes the
/// materialized log holds, in the same order.
#[test]
fn in_run_streaming_is_byte_identical_to_the_batch_pipeline() {
    let streamed = FleetRunner::new(4).run(pin_batch());
    let materialized = FleetRunner::new(4).batch_digest().run(pin_batch());
    assert_eq!(materialized.pinned_digest(), Some(PIN_BATCH_DIGEST));
    for (a, b) in streamed.results.iter().zip(materialized.results.iter()) {
        assert_eq!(
            a.stream_meta(),
            b.stream_meta(),
            "scenario {} entry streams diverged between the sink-fed and \
             materializing paths",
            a.scenario.name
        );
    }
    assert_eq!(streamed.digest(), materialized.digest());
}

#[test]
fn single_scenario_digests_are_pinned_too() {
    let batch = || vec![Scenario::lpl(17, 0.18, SimDuration::from_secs(4))];
    let report = FleetRunner::sequential().batch_digest().run(batch());
    assert_eq!(report.pinned_digest(), Some(SINGLE_LPL_DIGEST));
    assert_eq!(report.digest(), SINGLE_LPL_STREAM_DIGEST);
    let streamed = FleetRunner::sequential().run(batch());
    assert_eq!(streamed.digest(), SINGLE_LPL_STREAM_DIGEST);
}

/// The `Ideal` medium is the pre-medium-subsystem explicit-topology path:
/// spelling it out with `with_medium` must reproduce the pinned digests byte
/// for byte (same deliveries, same logs, no counter bytes folded).
#[test]
fn explicit_ideal_medium_reproduces_the_pinned_digests() {
    let batch: Vec<Scenario> = pin_batch()
        .into_iter()
        .map(|s| s.with_medium(MediumSpec::Ideal))
        .collect();
    let report = FleetRunner::new(4).batch_digest().run(batch);
    assert_eq!(
        report.pinned_digest(),
        Some(PIN_BATCH_DIGEST),
        "an explicit Ideal medium must be byte-identical to the topology path"
    );
    assert!(report
        .results
        .iter()
        .all(|r| r.medium_kind == "ideal" && !r.has_medium_counters()));
}

/// A config-file grid reproducing the pin batch yields byte-identical
/// digests — the `GridSpec` subsystem composes the same scenarios the
/// hand-written constructors built, down to the pinned pre-refactor bytes.
#[test]
fn grid_config_file_reproduces_the_pinned_digests() {
    let grid = GridSpec::parse(PIN_BATCH_GRID).expect("pin grid parses");
    let batch = grid.expand().expect("pin grid expands");
    assert_eq!(batch, pin_batch(), "grid must expand to the exact batch");
    let report = FleetRunner::new(4).batch_digest().run(batch);
    assert_eq!(report.pinned_digest(), Some(PIN_BATCH_DIGEST));
    assert_eq!(report.digest(), PIN_BATCH_STREAM_DIGEST);
}
