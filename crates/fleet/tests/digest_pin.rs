//! Pins the report digest of fixed scenario batches across refactors of the
//! analysis pipeline.  The constants below were recorded on the pre-streaming
//! batch pipeline (whole-log `power_intervals`, raw outputs retained to the
//! end); the streaming pipeline — incremental interval builders, digest
//! folded at merge time, raw outputs summarized-and-dropped — must reproduce
//! them byte for byte, at any thread count, with and without raw retention.

use hw_model::SimDuration;
use quanto_fleet::{scenarios, FleetRunner, MediumSpec, Scenario};

/// `pin_batch()` digest recorded on the pre-refactor batch pipeline.
const PIN_BATCH_DIGEST: u64 = 0x766a_a912_dcd1_2f29;
/// Single 4-second LPL channel-17 scenario, same provenance.
const SINGLE_LPL_DIGEST: u64 = 0x297e_7546_08a5_134c;

fn pin_batch() -> Vec<Scenario> {
    let d = SimDuration::from_secs(2);
    let mut batch = scenarios::lpl_grid(&[1, 2], &[17, 26], 0.18, d);
    batch.push(Scenario::blink(d));
    batch.push(Scenario::bounce(d));
    batch.push(Scenario::idle(SimDuration::from_secs(1)));
    batch
}

#[test]
fn streaming_pipeline_reproduces_pre_refactor_digests() {
    for runner in [
        FleetRunner::sequential(),
        FleetRunner::new(4),
        FleetRunner::sequential().retain_raw(),
        FleetRunner::new(4).retain_raw(),
    ] {
        let report = runner.run(pin_batch());
        assert_eq!(
            report.digest(),
            PIN_BATCH_DIGEST,
            "digest drifted from the pre-refactor batch pipeline \
             (threads {}, retain_raw {})",
            runner.threads(),
            runner.retains_raw(),
        );
    }
}

#[test]
fn single_scenario_digest_is_pinned_too() {
    let report =
        FleetRunner::sequential().run(vec![Scenario::lpl(17, 0.18, SimDuration::from_secs(4))]);
    assert_eq!(report.digest(), SINGLE_LPL_DIGEST);
}

/// The `Ideal` medium is the pre-medium-subsystem explicit-topology path:
/// spelling it out with `with_medium` must reproduce the pinned digests byte
/// for byte (same deliveries, same logs, no counter bytes folded).
#[test]
fn explicit_ideal_medium_reproduces_the_pinned_digests() {
    let batch: Vec<Scenario> = pin_batch()
        .into_iter()
        .map(|s| s.with_medium(MediumSpec::Ideal))
        .collect();
    let report = FleetRunner::new(4).run(batch);
    assert_eq!(
        report.digest(),
        PIN_BATCH_DIGEST,
        "an explicit Ideal medium must be byte-identical to the topology path"
    );
    assert!(report
        .results
        .iter()
        .all(|r| r.medium_kind == "ideal" && !r.has_medium_counters()));
}
