//! The non-perturbation contract of the `quanto-obs` layer: enabling
//! observability must not change a single simulated byte.  Every digest pin
//! from `digest_pin.rs` is re-asserted here with obs recording, and the
//! obs-on reports are compared stream-for-stream against obs-off runs of
//! the same batches — including the smoke grid's medium axis, so the
//! path-loss effort counters and the spatial index are covered too.
//!
//! One `#[test]` on purpose: the enabled flag is process-global, and this
//! integration binary owning exactly one test keeps the off-reference and
//! on-replay phases strictly ordered without any cross-test races.

use hw_model::SimDuration;
use quanto_fleet::{scenarios, FleetRunner, GridSpec, Scenario};

const PIN_BATCH_DIGEST: u64 = 0x766a_a912_dcd1_2f29;
const SINGLE_LPL_DIGEST: u64 = 0x297e_7546_08a5_134c;
const PIN_BATCH_STREAM_DIGEST: u64 = 0xf73f_b2e3_9f24_1280;
const SINGLE_LPL_STREAM_DIGEST: u64 = 0x1f37_3cb5_5ee7_ff3a;

fn pin_batch() -> Vec<Scenario> {
    let d = SimDuration::from_secs(2);
    let mut batch = scenarios::lpl_grid(&[1, 2], &[17, 26], 0.18, d);
    batch.push(Scenario::blink(d));
    batch.push(Scenario::bounce(d));
    batch.push(Scenario::idle(SimDuration::from_secs(1)));
    batch
}

/// The CI smoke grid with every cell cut to two simulated seconds: the same
/// scenario structure (all four medium kinds, the seed axes), test-sized.
fn smoke_batch() -> Vec<Scenario> {
    let mut grid =
        GridSpec::parse(include_str!("../../bench/grids/smoke.grid")).expect("smoke grid parses");
    grid.override_seconds(2.0);
    grid.expand().expect("smoke grid expands")
}

#[test]
fn observability_never_perturbs_a_digest() {
    // Phase 1: obs off (the default) — record the reference digests and
    // re-assert the pre-refactor pins.
    assert!(!quanto_obs::enabled(), "obs must start disabled");
    let off_pin = FleetRunner::new(4).batch_digest().run(pin_batch());
    assert_eq!(off_pin.pinned_digest(), Some(PIN_BATCH_DIGEST));
    assert_eq!(off_pin.digest(), PIN_BATCH_STREAM_DIGEST);
    let single = || vec![Scenario::lpl(17, 0.18, SimDuration::from_secs(4))];
    let off_single = FleetRunner::sequential().batch_digest().run(single());
    assert_eq!(off_single.pinned_digest(), Some(SINGLE_LPL_DIGEST));
    assert_eq!(off_single.digest(), SINGLE_LPL_STREAM_DIGEST);
    let off_smoke = FleetRunner::new(4).run(smoke_batch());
    assert_eq!(
        off_smoke.digest(),
        FleetRunner::sequential().run(smoke_batch()).digest(),
        "smoke grid must already be thread-count independent obs-off"
    );

    // Phase 2: the identical runs with every span and metric recording.
    quanto_obs::set_enabled(true);
    let on_pin = FleetRunner::new(4).batch_digest().run(pin_batch());
    let on_single = FleetRunner::sequential().batch_digest().run(single());
    let on_smoke = FleetRunner::new(4).run(smoke_batch());
    let on_smoke_seq = FleetRunner::sequential().run(smoke_batch());
    quanto_obs::set_enabled(false);
    let harvest = quanto_obs::harvest();

    assert_eq!(
        on_pin.pinned_digest(),
        Some(PIN_BATCH_DIGEST),
        "obs-on run drifted from the pinned batch digest"
    );
    assert_eq!(on_pin.digest(), PIN_BATCH_STREAM_DIGEST);
    assert_eq!(on_single.pinned_digest(), Some(SINGLE_LPL_DIGEST));
    assert_eq!(on_single.digest(), SINGLE_LPL_STREAM_DIGEST);
    assert_eq!(
        on_smoke.digest(),
        off_smoke.digest(),
        "obs-on smoke grid digest diverged from the obs-off reference"
    );
    assert_eq!(on_smoke_seq.digest(), off_smoke.digest());
    // Stronger than the folded digest: every scenario's entry stream
    // (count + FNV over encoded bytes) must match node-for-node.
    for (off, on) in off_smoke.results.iter().zip(on_smoke.results.iter()) {
        assert_eq!(
            off.stream_meta(),
            on.stream_meta(),
            "scenario {} entry stream changed under observation",
            off.scenario.name
        );
    }

    // Guard against vacuous success: the obs-on phase must actually have
    // recorded worker spans and engine counters.
    assert!(
        harvest
            .threads
            .iter()
            .any(|t| t.label.starts_with("worker-")),
        "no worker dumps harvested — instrumentation never ran"
    );
    assert!(
        harvest
            .merged
            .counter("engine.events_dispatched")
            .unwrap_or(0)
            > 0,
        "engine counters missing from the harvest"
    );
}
