//! The spatial medium index must be invisible at the fleet level: for every
//! scenario a sweep can express, the indexed run and the
//! `without_spatial_index()` brute-force run must produce byte-identical
//! digests, identical delivery counters and identical raw logs.  These are
//! the fleet-side teeth of the net-sim `spatial_equivalence` proptests.

use hw_model::SimDuration;
use quanto_fleet::{scenarios, FleetRunner, Scenario};

fn brute(batch: Vec<Scenario>) -> Vec<Scenario> {
    batch
        .into_iter()
        .map(|s| s.without_spatial_index())
        .collect()
}

/// Every medium kind in the standard grid — ideal, unit disk, path loss and
/// a mobility walk — digests identically with and without the index.
#[test]
fn spatial_index_is_invisible_across_the_medium_grid() {
    let d = SimDuration::from_secs(4);
    let runner = FleetRunner::sequential().retain_raw();
    let fast = runner.run(scenarios::medium_grid(d));
    let slow = runner.run(brute(scenarios::medium_grid(d)));
    assert_eq!(
        fast.digest(),
        slow.digest(),
        "the spatial index changed a medium-grid digest"
    );
    for (f, s) in fast.results.iter().zip(slow.results.iter()) {
        // Outcomes must match exactly; the effort fields differ by
        // construction (the brute scan examines all pairs, prunes none).
        assert_eq!(
            f.medium_counters().ok().map(|c| c.outcomes()),
            s.medium_counters().ok().map(|c| c.outcomes()),
            "{}: outcomes diverged between indexed and brute-force runs",
            f.scenario.name
        );
        let (raw_f, raw_s) = (f.raw().unwrap(), s.raw().unwrap());
        for ((id_f, out_f), (_, out_s)) in raw_f.outputs.iter().zip(raw_s.outputs.iter()) {
            assert_eq!(out_f.log, out_s.log, "node {id_f} logs diverged");
        }
    }
}

/// The hidden-terminal stress line (captures, sensitivity-floor fades) over
/// several shadowing seeds, on the parallel runner — order-of-execution and
/// the index must both be invisible.
#[test]
fn spatial_index_is_invisible_under_capture_and_shadowing() {
    let d = SimDuration::from_secs(2);
    let batch = || {
        (1u64..=4)
            .map(|seed| scenarios::path_loss_stress(6, seed, d))
            .collect::<Vec<_>>()
    };
    let fast = FleetRunner::new(4).run(batch());
    let slow = FleetRunner::new(4).run(brute(batch()));
    assert_eq!(
        fast.digest(),
        slow.digest(),
        "the spatial index changed a stress digest under capture"
    );
    for (f, s) in fast.results.iter().zip(slow.results.iter()) {
        let (cf, cs) = (f.medium_counters().unwrap(), s.medium_counters().unwrap());
        assert_eq!(
            cf.outcomes(),
            cs.outcomes(),
            "{}: outcomes diverged",
            f.scenario.name
        );
        assert!(cf.delivered > 0, "{}: nothing delivered", f.scenario.name);
        // The index must have actually worked on the stress geometry, and
        // its effort accounting must conserve attempts.
        assert!(cf.pruned_by_cutoff > 0 || cf.candidates_examined == cf.attempts());
        assert_eq!(cf.candidates_examined + cf.pruned_by_cutoff, cf.attempts());
        assert_eq!(cs.pruned_by_cutoff, 0, "brute runs must never prune");
    }
}

/// Beyond the old 254-node cap: a 600-node stress line runs entirely through
/// the widened ids and the spatial fast path, and still digests identically
/// to the brute-force scan.
#[test]
fn spatial_index_is_invisible_beyond_the_v1_node_cap() {
    let d = SimDuration::from_millis(1500);
    let s = || scenarios::path_loss_stress(300, 7, d);
    assert!(
        s().node_ids().len() > 254,
        "the scenario must cross the cap"
    );
    let fast = FleetRunner::sequential().run(vec![s()]);
    let slow = FleetRunner::sequential().run(vec![s().without_spatial_index()]);
    assert_eq!(
        fast.digest(),
        slow.digest(),
        "the spatial index changed a 600-node digest"
    );
    assert_eq!(
        fast.results[0].medium_counters().unwrap().outcomes(),
        slow.results[0].medium_counters().unwrap().outcomes()
    );
}
