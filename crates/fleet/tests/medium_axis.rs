//! The radio medium as a sweep axis: cross-medium equivalences, thread-count
//! independence, and the delivery-counter contract.

use hw_model::SimDuration;
use quanto_core::NodeId;
use quanto_fleet::{scenarios, FleetRunner, GeometrySpec, MediumSpec, PathLossSpec, Scenario};

/// A unit disk with infinite range must behave exactly like the full
/// topology: same deliveries, same logs, same stamps — however far apart the
/// nodes sit.
#[test]
fn unit_disk_with_infinite_range_equals_full_topology() {
    let d = SimDuration::from_secs(4);
    let ideal = Scenario::bounce(d);
    let disk = Scenario::bounce(d).with_medium(MediumSpec::UnitDisk {
        range_m: f64::INFINITY,
        positions: vec![(1, 0.0, 0.0), (4, 1.0e9, 0.0)],
    });
    let runner = FleetRunner::sequential().retain_raw();
    let a = runner.run(vec![ideal]);
    let b = runner.run(vec![disk]);
    let (ra, rb) = (&a.results[0], &b.results[0]);
    let (raw_a, raw_b) = (ra.raw().unwrap(), rb.raw().unwrap());
    for ((id_a, out_a), (id_b, out_b)) in raw_a.outputs.iter().zip(raw_b.outputs.iter()) {
        assert_eq!(id_a, id_b);
        assert_eq!(
            out_a.log, out_b.log,
            "node {id_a} diverged between ideal and infinite unit disk"
        );
        assert_eq!(out_a.final_stamp, out_b.final_stamp);
        assert_eq!(
            out_a.radio_stats.packets_received,
            out_b.radio_stats.packets_received
        );
    }
    // The disk *does* track counters (the digest differs only by them).
    assert!(rb.medium_counters().is_ok());
    assert!(ra.medium_counters().is_err());
}

/// A unit disk with zero range over distant nodes must behave like the empty
/// topology: nothing is ever delivered.
#[test]
fn unit_disk_out_of_range_equals_empty_topology() {
    let d = SimDuration::from_secs(2);
    let s = Scenario::bounce(d).with_medium(MediumSpec::UnitDisk {
        range_m: 1.0,
        positions: vec![(1, 0.0, 0.0), (4, 1000.0, 0.0)],
    });
    let report = FleetRunner::sequential().run(vec![s]);
    let r = &report.results[0];
    for s in &r.summaries {
        assert_eq!(s.packets_received, 0, "node {} heard a frame", s.node);
    }
    let c = r.medium_counters().expect("disk tracks counters");
    assert_eq!(c.delivered, 0);
    assert!(c.lost_out_of_range > 0, "attempts were made and lost");
}

/// Every medium kind must produce a thread-count-independent digest — the
/// per-emission loss RNG may not depend on execution order.
#[test]
fn medium_axis_digests_are_thread_count_independent() {
    let batch = || {
        let mut b = scenarios::medium_grid(SimDuration::from_secs(4));
        b.push(scenarios::path_loss_stress(3, 1, SimDuration::from_secs(2)));
        b
    };
    let sequential = FleetRunner::sequential().run(batch());
    let parallel = FleetRunner::new(4).run(batch());
    assert_eq!(sequential.digest(), parallel.digest());
    // The grid really covers all four kinds.
    let kinds: Vec<&str> = sequential.results.iter().map(|r| r.medium_kind).collect();
    for kind in ["ideal", "unit_disk", "path_loss", "mobility"] {
        assert!(kinds.contains(&kind), "medium grid is missing {kind}");
    }
}

/// Shadowing makes the path-loss medium's seed a real axis: different seeds
/// lose different frames; the same seed reproduces bit-for-bit.
#[test]
fn path_loss_seed_is_a_real_axis() {
    let d = SimDuration::from_secs(4);
    // 60 m apart: mean RSSI −93.3 dBm sits on the −94 dBm floor, so the
    // per-frame fade decides each delivery.
    let s = |seed| {
        vec![Scenario::bounce(d)
            .with_medium(MediumSpec::PathLoss {
                model: PathLossSpec::default(),
                positions: vec![(1, 0.0, 0.0), (4, 60.0, 0.0)],
            })
            .with_seed(seed)]
    };
    let a = FleetRunner::sequential().run(s(1));
    let a2 = FleetRunner::sequential().run(s(1));
    let b = FleetRunner::sequential().run(s(2));
    assert_eq!(a.digest(), a2.digest(), "same seed must reproduce");
    assert_ne!(
        a.digest(),
        b.digest(),
        "different seeds must fade differently"
    );
    // Isolate the shadowing RNG from the node RNGs: change only the
    // scenario seed (which feeds the medium) while `seed_nodes` stays false,
    // so a digest change can only come from the fades.
    let shadow_only = |seed| {
        let mut s = s(0).remove(0);
        s.seed = seed;
        s.seed_nodes = false;
        vec![s]
    };
    let sa = FleetRunner::sequential().run(shadow_only(1));
    let sb = FleetRunner::sequential().run(shadow_only(2));
    assert_ne!(
        sa.digest(),
        sb.digest(),
        "the scenario seed must reach the shadowing RNG even without seed_nodes"
    );
    let ca = a.results[0].medium_counters().unwrap();
    assert!(
        ca.lost_below_sensitivity > 0 && ca.delivered > 0,
        "at the sensitivity edge both outcomes must occur: {ca:?}"
    );
}

/// The mobility medium changes connectivity over time: a node that walks
/// away mid-run receives less than one that stays.
#[test]
fn mobility_trace_changes_connectivity_over_time() {
    let d = SimDuration::from_secs(8);
    let us = d.as_micros();
    let walker = |traces| {
        vec![Scenario::bounce(d).with_medium(MediumSpec::Mobility {
            base: GeometrySpec::UnitDisk { range_m: 10.0 },
            positions: vec![(1, 0.0, 0.0)],
            traces,
        })]
    };
    let stays = FleetRunner::sequential().run(walker(vec![(4, vec![(0, 5.0, 0.0)])]));
    let leaves =
        FleetRunner::sequential().run(walker(vec![(4, vec![(0, 5.0, 0.0), (us / 4, 500.0, 0.0)])]));
    let received = |report: &quanto_fleet::FleetReport| {
        report.results[0]
            .summary(NodeId(4))
            .expect("node 4 ran")
            .packets_received
    };
    assert!(
        received(&stays) > received(&leaves),
        "walking out of range must cost deliveries ({} vs {})",
        received(&stays),
        received(&leaves)
    );
    let c = leaves.results[0].medium_counters().unwrap();
    assert!(
        c.lost_out_of_range > 0,
        "the walk must strand frames: {c:?}"
    );
}

/// The stress profile exercises capture: with hidden-terminal pairs strung
/// along a line, some frames must be lost to stronger overlapping frames.
#[test]
fn path_loss_stress_profile_exercises_capture() {
    let report = FleetRunner::new(2).run(vec![scenarios::path_loss_stress(
        4,
        1,
        SimDuration::from_secs(4),
    )]);
    let c = report.results[0].medium_counters().unwrap();
    assert!(c.delivered > 0, "{c:?}");
    assert!(
        c.lost_captured > 0,
        "hidden terminals must collide somewhere: {c:?}"
    );
}
