//! Oscilloscope-style ground truth traces.
//!
//! The paper calibrates Quanto against a Tektronix oscilloscope measuring the
//! voltage across a shunt resistor (Section 4.1).  In the simulation the
//! analogous instrument is a [`CurrentTrace`]: a piecewise-constant record of
//! the platform's true aggregate current over time, built by the simulator as
//! power states change.  The [`Oscilloscope`] turns that step function into
//! dense, optionally noisy samples and computes windowed means — exactly the
//! quantities Table 2 and Figure 10 report.

use hw_model::{Current, Energy, NoiseModel, SimDuration, SimTime, Voltage};
use rand::rngs::StdRng;

/// One dense oscilloscope sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScopeSample {
    /// Sample timestamp.
    pub time: SimTime,
    /// Sampled aggregate current.
    pub current: Current,
}

/// A piecewise-constant record of true aggregate current over time.
///
/// Steps are appended in non-decreasing time order; the value of a step holds
/// until the next step (or until [`CurrentTrace::finish`]).
#[derive(Debug, Clone)]
pub struct CurrentTrace {
    steps: Vec<(SimTime, Current)>,
    end: Option<SimTime>,
    /// When false, [`CurrentTrace::push`] is a no-op: the probe is detached.
    /// The trace grows with every power-state change, so long headless runs
    /// (fleet sweeps that only need the Quanto log and the energy totals)
    /// switch it off to stay memory-bounded.
    enabled: bool,
}

impl Default for CurrentTrace {
    fn default() -> Self {
        CurrentTrace {
            steps: Vec::new(),
            end: None,
            enabled: true,
        }
    }
}

impl CurrentTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        CurrentTrace::default()
    }

    /// Attaches or detaches the probe.  While detached, steps offered to
    /// [`CurrentTrace::push`] are discarded (already-recorded steps are
    /// kept).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether the probe is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records that the aggregate current changed to `current` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous step.
    pub fn push(&mut self, time: SimTime, current: Current) {
        if !self.enabled {
            return;
        }
        if let Some((last, _)) = self.steps.last() {
            assert!(*last <= time, "trace steps must be time-ordered");
        }
        // Collapse consecutive steps at the same timestamp (the later write
        // wins), which happens when several sinks change state "at once".
        if let Some((last, value)) = self.steps.last_mut() {
            if *last == time {
                *value = current;
                return;
            }
        }
        self.steps.push((time, current));
    }

    /// Marks the end of the observation window.
    pub fn finish(&mut self, end: SimTime) {
        if let Some((last, _)) = self.steps.last() {
            assert!(*last <= end, "trace end before last step");
        }
        self.end = Some(end);
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns true if no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The end of the observation window (explicit, or the last step time).
    pub fn end_time(&self) -> SimTime {
        self.end
            .unwrap_or_else(|| self.steps.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO))
    }

    /// The raw steps, in time order.
    pub fn steps(&self) -> &[(SimTime, Current)] {
        &self.steps
    }

    /// The true current at an arbitrary time (the most recent step at or
    /// before `time`), or zero before the first step.
    pub fn current_at(&self, time: SimTime) -> Current {
        match self.steps.binary_search_by(|(t, _)| t.cmp(&time)) {
            Ok(i) => self.steps[i].1,
            Err(0) => Current::ZERO,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// The true mean current over `[start, end)`, by exact integration of the
    /// step function.
    ///
    /// Returns zero for an empty window.
    pub fn mean_current(&self, start: SimTime, end: SimTime) -> Current {
        if end <= start {
            return Current::ZERO;
        }
        let total_us = end.duration_since(start).as_micros() as f64;
        let mut weighted = 0.0;
        let mut cursor = start;
        while cursor < end {
            let i = self.current_at(cursor);
            // Find the next step strictly after `cursor`, capped at `end`.
            let next = self
                .steps
                .iter()
                .map(|(t, _)| *t)
                .find(|t| *t > cursor)
                .map(|t| t.min(end))
                .unwrap_or(end);
            let span = next.duration_since(cursor).as_micros() as f64;
            weighted += i.as_micro_amps() * span;
            cursor = next;
        }
        Current::from_micro_amps(weighted / total_us)
    }

    /// The exact energy delivered over `[start, end)` at a supply voltage.
    pub fn energy(&self, start: SimTime, end: SimTime, supply: Voltage) -> Energy {
        if end <= start {
            return Energy::ZERO;
        }
        (self.mean_current(start, end) * supply) * end.duration_since(start)
    }
}

/// Produces dense, noisy samples from a [`CurrentTrace`].
#[derive(Debug, Clone)]
pub struct Oscilloscope {
    sample_interval: SimDuration,
    noise: NoiseModel,
}

impl Oscilloscope {
    /// Creates an oscilloscope sampling every `sample_interval` with the
    /// given probe noise.
    ///
    /// # Panics
    ///
    /// Panics if the sample interval is zero.
    pub fn new(sample_interval: SimDuration, noise: NoiseModel) -> Self {
        assert!(
            !sample_interval.is_zero(),
            "sample interval must be positive"
        );
        Oscilloscope {
            sample_interval,
            noise,
        }
    }

    /// An ideal (noise-free) scope sampling every 10 µs.
    pub fn ideal() -> Self {
        Oscilloscope::new(SimDuration::from_micros(10), NoiseModel::IDEAL)
    }

    /// The configured sample interval.
    pub fn sample_interval(&self) -> SimDuration {
        self.sample_interval
    }

    /// Samples the trace densely over `[start, end)`.
    pub fn capture(&self, trace: &CurrentTrace, start: SimTime, end: SimTime) -> Vec<ScopeSample> {
        let mut rng: StdRng = self.noise.sample_rng();
        let mut out = Vec::new();
        let mut t = start;
        while t < end {
            let true_i = trace.current_at(t).as_micro_amps();
            let sampled = self.noise.perturb_sample(&mut rng, true_i);
            out.push(ScopeSample {
                time: t,
                current: Current::from_micro_amps(sampled),
            });
            t += self.sample_interval;
        }
        out
    }

    /// The mean of dense samples over a window — what "Mean (3.05 mA)" in
    /// Figure 10 is computed from.
    pub fn mean_of_samples(samples: &[ScopeSample]) -> Current {
        if samples.is_empty() {
            return Current::ZERO;
        }
        let sum: f64 = samples.iter().map(|s| s.current.as_micro_amps()).sum();
        Current::from_micro_amps(sum / samples.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_trace() -> CurrentTrace {
        let mut t = CurrentTrace::new();
        t.push(SimTime::from_millis(0), Current::from_milli_amps(1.0));
        t.push(SimTime::from_millis(10), Current::from_milli_amps(3.0));
        t.push(SimTime::from_millis(20), Current::from_milli_amps(0.5));
        t.finish(SimTime::from_millis(30));
        t
    }

    #[test]
    fn detached_probe_discards_steps_and_keeps_recorded_ones() {
        let mut t = CurrentTrace::new();
        assert!(t.is_enabled());
        t.push(SimTime::from_millis(0), Current::from_milli_amps(1.0));
        t.set_enabled(false);
        t.push(SimTime::from_millis(10), Current::from_milli_amps(3.0));
        t.push(SimTime::from_millis(20), Current::from_milli_amps(0.5));
        assert_eq!(t.len(), 1, "detached probe must not grow the trace");
        t.set_enabled(true);
        t.push(SimTime::from_millis(30), Current::from_milli_amps(2.0));
        assert_eq!(t.len(), 2);
        t.finish(SimTime::from_millis(40));
        assert_eq!(t.end_time(), SimTime::from_millis(40));
    }

    #[test]
    fn current_at_follows_steps() {
        let t = step_trace();
        assert_eq!(t.current_at(SimTime::from_micros(0)).as_milli_amps(), 1.0);
        assert_eq!(t.current_at(SimTime::from_millis(5)).as_milli_amps(), 1.0);
        assert_eq!(t.current_at(SimTime::from_millis(10)).as_milli_amps(), 3.0);
        assert_eq!(t.current_at(SimTime::from_millis(25)).as_milli_amps(), 0.5);
        // Before the first step the trace reads zero.
        let mut empty = CurrentTrace::new();
        empty.push(SimTime::from_millis(5), Current::from_milli_amps(1.0));
        assert_eq!(empty.current_at(SimTime::from_millis(1)), Current::ZERO);
    }

    #[test]
    fn mean_current_integrates_exactly() {
        let t = step_trace();
        // Over [0, 30 ms): 10 ms at 1 mA, 10 ms at 3 mA, 10 ms at 0.5 mA.
        let mean = t
            .mean_current(SimTime::ZERO, SimTime::from_millis(30))
            .as_milli_amps();
        assert!((mean - 1.5).abs() < 1e-9, "mean {mean}");
        // Over a window inside one step the mean equals that step.
        let inner = t
            .mean_current(SimTime::from_millis(12), SimTime::from_millis(18))
            .as_milli_amps();
        assert!((inner - 3.0).abs() < 1e-9);
        // An empty window is zero.
        assert_eq!(
            t.mean_current(SimTime::from_millis(5), SimTime::from_millis(5)),
            Current::ZERO
        );
    }

    #[test]
    fn energy_matches_mean_times_time() {
        let t = step_trace();
        let e = t
            .energy(
                SimTime::ZERO,
                SimTime::from_millis(30),
                Voltage::from_volts(3.0),
            )
            .as_micro_joules();
        // 1.5 mA * 3 V * 30 ms = 135 uJ.
        assert!((e - 135.0).abs() < 1e-9, "energy {e}");
    }

    #[test]
    fn same_timestamp_steps_collapse() {
        let mut t = CurrentTrace::new();
        t.push(SimTime::from_millis(1), Current::from_milli_amps(1.0));
        t.push(SimTime::from_millis(1), Current::from_milli_amps(2.0));
        assert_eq!(t.len(), 1);
        assert_eq!(t.current_at(SimTime::from_millis(1)).as_milli_amps(), 2.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_steps_rejected() {
        let mut t = CurrentTrace::new();
        t.push(SimTime::from_millis(10), Current::ZERO);
        t.push(SimTime::from_millis(5), Current::ZERO);
    }

    #[test]
    fn scope_capture_is_dense_and_noise_free_when_ideal() {
        let t = step_trace();
        let scope = Oscilloscope::ideal();
        let samples = scope.capture(&t, SimTime::ZERO, SimTime::from_millis(30));
        assert_eq!(samples.len(), 3000);
        let mean = Oscilloscope::mean_of_samples(&samples).as_milli_amps();
        assert!((mean - 1.5).abs() < 1e-6, "mean {mean}");
    }

    #[test]
    fn noisy_scope_mean_converges_to_truth() {
        let t = step_trace();
        let scope = Oscilloscope::new(
            SimDuration::from_micros(5),
            NoiseModel {
                state_bias: 0.0,
                sample_sigma: 0.05,
                seed: 9,
            },
        );
        let samples = scope.capture(&t, SimTime::ZERO, SimTime::from_millis(30));
        let mean = Oscilloscope::mean_of_samples(&samples).as_milli_amps();
        assert!((mean - 1.5).abs() < 0.02, "noisy mean {mean}");
    }
}
