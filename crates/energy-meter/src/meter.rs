//! The energy-meter abstraction the OS reads from.

use hw_model::Energy;

/// One reading of an energy meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeterReading {
    /// Raw cumulative counter value (pulses for iCount).  Wraps at `u32::MAX`
    /// just like the hardware counter does.
    pub counter: u32,
    /// How many CPU cycles the read itself consumed.
    pub read_cost_cycles: u32,
}

/// An aggregate energy meter.
///
/// The meter is *driven* by the simulator: the simulator tells it how much
/// ground-truth energy the platform has consumed so far, and the meter
/// answers what its counter register would read.  The OS side (the Quanto
/// tracker) only ever sees the counter value, mirroring the real hardware
/// where software cannot observe "true" energy, only iCount pulses.
pub trait EnergyMeter {
    /// Reads the meter's cumulative counter given the platform's true
    /// cumulative energy consumption.
    fn read(&mut self, true_cumulative: Energy) -> MeterReading;

    /// The nominal energy represented by one counter increment.
    fn energy_per_count(&self) -> Energy;

    /// CPU cycles consumed by one read (24 for iCount on the MSP430).
    fn read_cost_cycles(&self) -> u32;

    /// Converts a counter delta back into (nominal) energy, as the offline
    /// analysis does.
    fn counts_to_energy(&self, counts: u32) -> Energy {
        self.energy_per_count() * counts as f64
    }
}

/// A perfect meter with configurable resolution and zero read cost.
///
/// Useful in tests and ablations to separate estimation error caused by the
/// meter (quantization, gain error) from error caused by the regression.
#[derive(Debug, Clone)]
pub struct IdealMeter {
    resolution: Energy,
}

impl IdealMeter {
    /// Creates an ideal meter with the given resolution per count.
    ///
    /// # Panics
    ///
    /// Panics if the resolution is not strictly positive.
    pub fn new(resolution: Energy) -> Self {
        assert!(
            resolution.as_micro_joules() > 0.0,
            "meter resolution must be positive"
        );
        IdealMeter { resolution }
    }
}

impl Default for IdealMeter {
    /// 1 µJ per count, matching iCount's nominal resolution.
    fn default() -> Self {
        IdealMeter::new(Energy::from_micro_joules(1.0))
    }
}

impl EnergyMeter for IdealMeter {
    fn read(&mut self, true_cumulative: Energy) -> MeterReading {
        let counts = (true_cumulative.as_micro_joules() / self.resolution.as_micro_joules())
            .floor()
            .max(0.0);
        MeterReading {
            counter: (counts as u64 % (u32::MAX as u64 + 1)) as u32,
            read_cost_cycles: 0,
        }
    }

    fn energy_per_count(&self) -> Energy {
        self.resolution
    }

    fn read_cost_cycles(&self) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_meter_quantizes_downward() {
        let mut m = IdealMeter::default();
        assert_eq!(m.read(Energy::from_micro_joules(0.0)).counter, 0);
        assert_eq!(m.read(Energy::from_micro_joules(0.99)).counter, 0);
        assert_eq!(m.read(Energy::from_micro_joules(1.0)).counter, 1);
        assert_eq!(m.read(Energy::from_micro_joules(1234.56)).counter, 1234);
        assert_eq!(m.read_cost_cycles(), 0);
    }

    #[test]
    fn counts_to_energy_round_trips_nominally() {
        let m = IdealMeter::new(Energy::from_micro_joules(8.33));
        let e = m.counts_to_energy(100);
        assert!((e.as_micro_joules() - 833.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_resolution_rejected() {
        let _ = IdealMeter::new(Energy::ZERO);
    }
}
