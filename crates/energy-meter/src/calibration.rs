//! Simple linear fitting used by the calibration experiments.
//!
//! Section 4.1 verifies that the iCount switching frequency varies linearly
//! with current (`I_avg = 2.77 f_iC − 0.05`, R² = 0.99995).  The reproduction
//! needs the same one-dimensional least-squares fit with an R² quality
//! metric; the full multivariate regression lives in the `analysis` crate.

/// The result of a one-dimensional least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1.0 = perfect fit).
    pub r_squared: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits `y ≈ slope·x + intercept` by ordinary least squares.
///
/// Returns `None` when fewer than two points are supplied or when all `x`
/// values are identical (the slope would be undefined).
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinearFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let sum_x: f64 = points.iter().map(|(x, _)| x).sum();
    let sum_y: f64 = points.iter().map(|(_, y)| y).sum();
    let mean_x = sum_x / n;
    let mean_y = sum_y / n;
    let sxx: f64 = points.iter().map(|(x, _)| (x - mean_x).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points
        .iter()
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;

    let ss_tot: f64 = points.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|(x, y)| {
            let pred = slope * x + intercept;
            (y - pred).powi(2)
        })
        .sum();
    let r_squared = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(LinearFit {
        slope,
        intercept,
        r_squared,
        n: points.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovers_parameters() {
        let pts: Vec<(f64, f64)> = (0..10)
            .map(|i| (i as f64, 2.77 * i as f64 - 0.05))
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 2.77).abs() < 1e-12);
        assert!((fit.intercept + 0.05).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
        assert!((fit.predict(4.0) - (2.77 * 4.0 - 0.05)).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_has_high_but_imperfect_r2() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                // Deterministic pseudo-noise.
                let noise = ((i * 37 % 11) as f64 - 5.0) * 0.01;
                (x, 3.0 * x + 1.0 + noise)
            })
            .collect();
        let fit = linear_fit(&pts).unwrap();
        assert!((fit.slope - 3.0).abs() < 0.01);
        assert!(fit.r_squared > 0.999 && fit.r_squared < 1.0);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(linear_fit(&[]).is_none());
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0), (1.0, 4.0)]).is_none());
    }

    #[test]
    fn constant_y_gives_perfect_fit_with_zero_slope() {
        let pts = [(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)];
        let fit = linear_fit(&pts).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.intercept, 5.0);
        assert_eq!(fit.r_squared, 1.0);
    }
}
