//! The iCount switching-regulator energy meter.
//!
//! iCount observes that a pulse-frequency-modulated switching regulator emits
//! one pulse per (roughly) fixed quantum of delivered energy, so wiring the
//! regulator's switch node to a counter input turns the regulator into a free
//! energy meter.  On the HydroWatch platform at 3 V each pulse corresponds to
//! about 8.33 µJ and the paper measures `I_avg(mA) = 2.77 · f_iC(kHz) − 0.05`
//! with R² = 0.99995.
//!
//! The simulated meter reproduces the three externally-visible imperfections
//! that matter to Quanto:
//!
//! 1. **Quantization** — the counter only advances in whole pulses, so a read
//!    can under-report by up to one pulse of energy.
//! 2. **Gain error** — the true energy per pulse differs from the nominal
//!    value by a fixed, per-device factor (±15 % worst case in the paper).
//! 3. **Read cost** — reading the counter takes 24 CPU cycles.

use crate::meter::{EnergyMeter, MeterReading};
use hw_model::{Current, Energy, Voltage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of an [`ICountMeter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ICountConfig {
    /// Nominal energy per regulator pulse.  8.33 µJ at 3 V on HydroWatch.
    pub nominal_energy_per_pulse: Energy,
    /// Fixed relative gain error of this particular device, e.g. `0.03` means
    /// each pulse actually delivers 3 % more energy than nominal.  The paper
    /// bounds this at ±15 % over five orders of magnitude of current.
    pub gain_error: f64,
    /// CPU cycles consumed by one counter read (24 on the MSP430).
    pub read_cost_cycles: u32,
}

impl ICountConfig {
    /// The paper's HydroWatch configuration with a perfect gain.
    pub fn hydrowatch() -> Self {
        ICountConfig {
            nominal_energy_per_pulse: Energy::from_micro_joules(8.33),
            gain_error: 0.0,
            read_cost_cycles: 24,
        }
    }

    /// HydroWatch configuration with a device-specific gain error drawn
    /// uniformly from `[-max_error, +max_error]` using `seed`.
    pub fn hydrowatch_with_error(max_error: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let gain_error = if max_error == 0.0 {
            0.0
        } else {
            rng.gen_range(-max_error..=max_error)
        };
        ICountConfig {
            gain_error,
            ..ICountConfig::hydrowatch()
        }
    }

    /// The *true* energy per pulse for this device (nominal × (1 + gain)).
    pub fn true_energy_per_pulse(&self) -> Energy {
        self.nominal_energy_per_pulse * (1.0 + self.gain_error)
    }

    /// The switching frequency the regulator would exhibit at a given steady
    /// current draw and supply voltage: `f = I·V / E_pulse`.
    pub fn switching_frequency_hz(&self, current: Current, supply: Voltage) -> f64 {
        let power_uw = (current * supply).as_micro_watts();
        let pulse_uj = self.true_energy_per_pulse().as_micro_joules();
        power_uw / pulse_uj
    }
}

impl Default for ICountConfig {
    fn default() -> Self {
        ICountConfig::hydrowatch()
    }
}

/// The simulated iCount pulse counter.
#[derive(Debug, Clone)]
pub struct ICountMeter {
    config: ICountConfig,
}

impl ICountMeter {
    /// Creates a meter with the given configuration.
    pub fn new(config: ICountConfig) -> Self {
        assert!(
            config.nominal_energy_per_pulse.as_micro_joules() > 0.0,
            "energy per pulse must be positive"
        );
        assert!(
            config.gain_error > -1.0,
            "gain error must be greater than -100 %"
        );
        ICountMeter { config }
    }

    /// The meter's configuration.
    pub fn config(&self) -> &ICountConfig {
        &self.config
    }
}

impl Default for ICountMeter {
    fn default() -> Self {
        ICountMeter::new(ICountConfig::default())
    }
}

impl EnergyMeter for ICountMeter {
    fn read(&mut self, true_cumulative: Energy) -> MeterReading {
        let per_pulse = self.config.true_energy_per_pulse().as_micro_joules();
        let pulses = (true_cumulative.as_micro_joules() / per_pulse)
            .floor()
            .max(0.0) as u64;
        MeterReading {
            counter: (pulses % (u32::MAX as u64 + 1)) as u32,
            read_cost_cycles: self.config.read_cost_cycles,
        }
    }

    fn energy_per_count(&self) -> Energy {
        self.config.nominal_energy_per_pulse
    }

    fn read_cost_cycles(&self) -> u32 {
        self.config.read_cost_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pulses_accumulate_with_energy() {
        let mut m = ICountMeter::default();
        assert_eq!(m.read(Energy::from_micro_joules(0.0)).counter, 0);
        assert_eq!(m.read(Energy::from_micro_joules(8.0)).counter, 0);
        assert_eq!(m.read(Energy::from_micro_joules(8.33)).counter, 1);
        assert_eq!(m.read(Energy::from_micro_joules(83.3)).counter, 10);
        let big = m.read(Energy::from_milli_joules(521.23)).counter;
        // 521.23 mJ / 8.33 uJ = 62572.6... pulses.
        assert_eq!(big, 62_572);
    }

    #[test]
    fn read_reports_24_cycle_cost() {
        let mut m = ICountMeter::default();
        let r = m.read(Energy::from_micro_joules(100.0));
        assert_eq!(r.read_cost_cycles, 24);
        assert_eq!(m.read_cost_cycles(), 24);
    }

    #[test]
    fn gain_error_shifts_pulse_energy() {
        let cfg = ICountConfig {
            gain_error: 0.10,
            ..ICountConfig::hydrowatch()
        };
        let mut m = ICountMeter::new(cfg);
        // With +10 % gain error each pulse is really 9.163 uJ, so 91 uJ of
        // true energy is only 9 pulses.
        assert_eq!(m.read(Energy::from_micro_joules(91.0)).counter, 9);
        // The analysis side still converts with the nominal value.
        let nominal = m.counts_to_energy(9).as_micro_joules();
        assert!((nominal - 74.97).abs() < 1e-9);
    }

    #[test]
    fn device_error_is_bounded_and_deterministic() {
        let a = ICountConfig::hydrowatch_with_error(0.15, 42);
        let b = ICountConfig::hydrowatch_with_error(0.15, 42);
        assert_eq!(a, b);
        assert!(a.gain_error.abs() <= 0.15);
        let c = ICountConfig::hydrowatch_with_error(0.15, 43);
        assert_ne!(a.gain_error, c.gain_error);
        assert_eq!(ICountConfig::hydrowatch_with_error(0.0, 7).gain_error, 0.0);
    }

    #[test]
    fn switching_frequency_is_linear_in_current() {
        let cfg = ICountConfig::hydrowatch();
        let v = Voltage::from_volts(3.0);
        let f1 = cfg.switching_frequency_hz(Current::from_milli_amps(1.0), v);
        let f2 = cfg.switching_frequency_hz(Current::from_milli_amps(2.0), v);
        let f4 = cfg.switching_frequency_hz(Current::from_milli_amps(4.0), v);
        assert!((f2 / f1 - 2.0).abs() < 1e-9);
        assert!((f4 / f2 - 2.0).abs() < 1e-9);
        // 1 mA at 3 V = 3 mW = 3000 uW; 3000 / 8.33 = 360.1... pulses/s.
        assert!((f1 - 360.144).abs() < 0.01, "f1 = {f1}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_pulse_energy_rejected() {
        let _ = ICountMeter::new(ICountConfig {
            nominal_energy_per_pulse: Energy::ZERO,
            gain_error: 0.0,
            read_cost_cycles: 24,
        });
    }
}
