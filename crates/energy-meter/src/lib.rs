//! Simulated energy metering for the Quanto reproduction.
//!
//! The original system measures aggregate energy with *iCount*, a counter of
//! switching-regulator pulses: every pulse delivers a (nearly) fixed quantum
//! of energy to the platform, so counting pulses measures energy with about
//! 1 µJ resolution, a 24-cycle read latency and a worst-case gain error of
//! ±15 % (Dutta et al., IPSN 2008).  Reading the meter is as cheap as reading
//! a counter, which is what makes logging at every power-state change viable.
//!
//! This crate provides:
//!
//! * [`icount::ICountMeter`] — the pulse-counting meter, driven by the
//!   ground-truth energy integral of the simulated platform,
//! * [`meter::EnergyMeter`] — the trait the OS uses to read accumulated
//!   energy (so alternative meters, e.g. an ideal one, can be swapped in),
//! * [`oscilloscope::CurrentTrace`] and [`oscilloscope::Oscilloscope`] — the
//!   "bench instrument" ground truth used by the calibration experiments
//!   (Fig 10, Table 2), and
//! * [`calibration`] — simple linear fitting used to verify the linear
//!   relationship between mean current and switching frequency.

pub mod calibration;
pub mod icount;
pub mod meter;
pub mod oscilloscope;

pub use calibration::{linear_fit, LinearFit};
pub use icount::{ICountConfig, ICountMeter};
pub use meter::{EnergyMeter, IdealMeter, MeterReading};
pub use oscilloscope::{CurrentTrace, Oscilloscope, ScopeSample};
