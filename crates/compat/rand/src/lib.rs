//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of `rand`'s API it actually uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float ranges.  The generator is SplitMix64 — statistically solid for
//! simulation noise, deterministic for a given seed, and dependency-free.
//! It is *not* the ChaCha12 generator real `rand` uses, so absolute random
//! streams differ from upstream; everything in this workspace only relies on
//! determinism per seed, not on a particular stream.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Constructing a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.  Panics if the range is
    /// empty.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Maps 53 random bits onto `[0, 1)`.
fn unit_f64<R: RngCore>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng) as f32) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn integer_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10i32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn inclusive_range_can_hit_single_point() {
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(rng.gen_range(9u8..=9), 9);
        assert_eq!(rng.gen_range(-1.5f64..=-1.5), -1.5);
    }
}
