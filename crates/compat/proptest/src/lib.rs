//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of proptest's API its property tests use: the [`proptest!`] macro
//! over `arg in strategy` parameter lists, range and [`any`] strategies,
//! tuple and [`collection::vec`] combinators, and the `prop_assert*` /
//! [`prop_assume!`] macros.  Cases are generated from a deterministic
//! SplitMix64 stream seeded per test name.  Failing cases are reported with
//! the assertion message but are **not shrunk** — rerun with the printed
//! values to debug.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Number of cases each property runs.
pub const DEFAULT_CASES: u32 = 96;

/// Deterministic SplitMix64 stream driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the stream; the same seed yields the same cases.
    pub fn seed_from_u64(state: u64) -> Self {
        TestRng { state }
    }

    /// Seeds deterministically from a test's name.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name keeps distinct tests on distinct streams.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(h)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (assumed-away) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Any value of `T`, uniformly over its representation.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// How many elements a collection strategy produces.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// The strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Module alias mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Strategy,
        TestCaseError, TestRng,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Mirrors proptest's `arg in strategy` form.  Each property runs
/// [`DEFAULT_CASES`] accepted cases; `prop_assume!` rejections re-draw, and a
/// property that rejects far more cases than it accepts fails.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                let mut accepted = 0u32;
                let mut rejected = 0u32;
                while accepted < $crate::DEFAULT_CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < 16 * $crate::DEFAULT_CASES,
                                "property {} rejected {} cases before accepting {}",
                                stringify!($name), rejected, $crate::DEFAULT_CASES,
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed: {}", stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case if the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right,
            )));
        }
    }};
}

/// Rejects (skips) the current case if `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..9, y in 10u64..=20) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..=20).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(v in prop::collection::vec(any::<u16>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn tuples_and_assume_compose((a, b) in (0u32..100, 0u32..100)) {
            prop_assume!(a != b);
            prop_assert!(a != b, "assume filtered equal pairs: {} {}", a, b);
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(any::<bool>(), 8)) {
            prop_assert_eq!(v.len(), 8);
        }
    }

    #[test]
    fn same_test_name_same_stream() {
        let mut a = TestRng::for_test("abc");
        let mut b = TestRng::for_test("abc");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failing_property_panics() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 200, "x is only {}", x);
            }
        }
        always_fails();
    }
}
