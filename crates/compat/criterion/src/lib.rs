//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of criterion's API its benches use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.  It measures wall-clock
//! time with `std::time::Instant` and prints a per-benchmark summary line;
//! there is no statistical analysis, warm-up tuning or HTML report.

use std::time::Instant;

/// How batched inputs are grouped per timing measurement (accepted for API
/// compatibility; every batch size runs one input per measurement here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small setup output; criterion would batch many per allocation.
    SmallInput,
    /// Large setup output; criterion would batch few.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    /// Nanoseconds per iteration, one entry per sample.
    recorded: Vec<f64>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            recorded: Vec::new(),
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up iteration, untimed.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.recorded.push(start.elapsed().as_nanos() as f64);
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; only the routine
    /// is on the clock.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.recorded.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn summary(&self) -> Option<(f64, f64)> {
        if self.recorded.is_empty() {
            return None;
        }
        let mut sorted = self.recorded.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Some((median, mean))
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher::new(samples);
    let wall = Instant::now();
    f(&mut bencher);
    let total = wall.elapsed();
    match bencher.summary() {
        Some((median, mean)) => println!(
            "bench {id:<48} median {:>12}  mean {:>12}  ({} samples)",
            fmt_ns(median),
            fmt_ns(mean),
            samples
        ),
        None => println!("bench {id:<48} completed in {total:?} (no timed iterations)"),
    }
}

/// The top-level benchmark registry.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Prints the closing line `criterion_main!` ends with.
    pub fn final_summary(&mut self) {
        println!("bench run complete");
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id.as_ref()),
            self.sample_size,
            f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running every group, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_requested_samples() {
        let mut b = Bencher::new(5);
        b.iter(|| 1 + 1);
        assert_eq!(b.recorded.len(), 5);
        assert!(b.summary().is_some());
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0;
        let mut b = Bencher::new(4);
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        // One warm-up setup plus one per timed sample.
        assert_eq!(setups, 5);
    }

    #[test]
    fn groups_and_functions_run_their_closures() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .bench_function("inner", |b| b.iter(|| 2 * 2));
        group.finish();
        assert!(ran > 0);
    }
}
