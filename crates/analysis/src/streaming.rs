//! Incremental (chunk-wise) versions of the log parsers.
//!
//! The batch functions in [`crate::intervals`] take the whole log as a
//! slice, which forces every consumer to hold every 12-byte entry in memory
//! before analysis can even start.  The builders here accept the log in
//! arbitrary chunks — the natural unit a `quanto_core::LogSink` receives —
//! and emit completed intervals/segments eagerly, keeping only *open* state
//! between chunks.  The batch functions are thin wrappers over them (and
//! equivalence is property-tested), so feeding a builder the entire log as
//! one chunk reproduces the batch output exactly, byte for byte.
//!
//! Memory held by each builder:
//!
//! * [`TimeUnwrapper`] — O(1): the wrap count and the previous 32-bit stamp.
//! * [`IntervalBuilder`] — O(sinks) open state plus whatever completed
//!   intervals the caller has not yet drained.
//! * [`SegmentBuilder`] with `resolve_bindings = false` — O(1) open state;
//!   completed segments are final as soon as they close.
//! * [`SegmentBuilder`] with `resolve_bindings = true` — completed segments
//!   stay *retained* until [`SegmentBuilder::finish`]: an `ActivityBind`
//!   relabels the maximal trailing run of same-labelled segments, and
//!   successive binds can merge that run arbitrarily far back, so no segment
//!   is provably final before the log ends.  This is inherent to the paper's
//!   proxy-binding semantics, not an implementation shortcut.
//! * [`MultiSegmentBuilder`] — O(concurrent activities) open state.

use crate::intervals::{ActivitySegment, MultiSegment, PowerInterval, UnwrappedEntry};
use hw_model::{Catalog, SimTime, StateIndex};
use quanto_core::{ActivityLabel, DeviceId, EntryKind, LogEntry, Stamp};

/// Incrementally reconstructs monotonic 64-bit time from the wrapping 32-bit
/// v1 log timestamps: each backwards jump is one wrap of the counter.
///
/// v2 entries carry absolute 64-bit timestamps, which are monotone, so the
/// wrap rule never fires and they pass through unchanged — one unwrapper
/// handles both formats.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimeUnwrapper {
    high: u64,
    prev: u64,
    seen_any: bool,
}

impl TimeUnwrapper {
    /// A fresh unwrapper (no entries seen).
    pub fn new() -> Self {
        TimeUnwrapper::default()
    }

    /// Unwraps the next timestamp.  Entries must be offered in the order
    /// they were logged — *every* entry, not just the kinds a consumer cares
    /// about, since any entry can witness a wrap.
    pub fn unwrap(&mut self, time_us: u64) -> SimTime {
        if self.seen_any && time_us < self.prev {
            self.high += 1 << 32;
        }
        self.seen_any = true;
        self.prev = time_us;
        SimTime::from_micros(self.high + time_us)
    }

    /// Unwraps one entry.
    pub fn unwrap_entry(&mut self, entry: &LogEntry) -> UnwrappedEntry {
        UnwrappedEntry {
            time: self.unwrap(entry.time_us),
            entry: *entry,
        }
    }
}

/// Incremental [`crate::intervals::power_intervals`]: feed it entry chunks,
/// drain completed [`PowerInterval`]s as they close.
#[derive(Debug, Clone)]
pub struct IntervalBuilder {
    unwrapper: TimeUnwrapper,
    states: Vec<StateIndex>,
    cursor_time: SimTime,
    cursor_counts: u32,
    ready: Vec<PowerInterval>,
}

impl IntervalBuilder {
    /// A builder for a platform booting with every sink in its catalog
    /// default state and the iCount counter at zero.
    pub fn new(catalog: &Catalog) -> Self {
        IntervalBuilder {
            unwrapper: TimeUnwrapper::new(),
            states: catalog.sinks().map(|(_, s)| s.default_state).collect(),
            cursor_time: SimTime::ZERO,
            cursor_counts: 0,
            ready: Vec::new(),
        }
    }

    /// Consumes one entry.
    pub fn push(&mut self, entry: &LogEntry) {
        // Every entry advances the wrap detector, even the kinds this
        // builder ignores.
        let time = self.unwrapper.unwrap(entry.time_us);
        if entry.kind != EntryKind::PowerState {
            return;
        }
        let sink = entry.sink().expect("power-state entry has a sink");
        if time > self.cursor_time {
            self.ready.push(PowerInterval {
                start: self.cursor_time,
                end: time,
                counts: entry.icount.wrapping_sub(self.cursor_counts),
                states: self.states.clone(),
            });
        }
        if sink.as_usize() < self.states.len() {
            self.states[sink.as_usize()] = StateIndex(entry.value as u8);
        }
        self.cursor_time = time;
        self.cursor_counts = entry.icount;
    }

    /// Consumes one chunk of entries, in log order.
    pub fn push_chunk(&mut self, chunk: &[LogEntry]) {
        for entry in chunk {
            self.push(entry);
        }
    }

    /// Drains the intervals completed so far (each interval is emitted
    /// exactly once across all drains and [`IntervalBuilder::finish`]).
    pub fn drain_completed(&mut self) -> std::vec::Drain<'_, PowerInterval> {
        self.ready.drain(..)
    }

    /// Number of completed-but-undrained intervals.
    pub fn completed_len(&self) -> usize {
        self.ready.len()
    }

    /// Non-consuming [`IntervalBuilder::finish`]: closes the last interval
    /// at `final_stamp` (if any), leaving it ready to drain.  After a flush
    /// the builder should be [`IntervalBuilder::reset`] before reuse — the
    /// closing interval has already been emitted.
    pub fn flush(&mut self, final_stamp: Option<Stamp>) {
        if let Some(end) = final_stamp {
            if end.time > self.cursor_time {
                self.ready.push(PowerInterval {
                    start: self.cursor_time,
                    end: end.time,
                    counts: end.icount.wrapping_sub(self.cursor_counts),
                    states: self.states.clone(),
                });
            }
        }
    }

    /// Returns the builder to its boot state (catalog-default sink states,
    /// zero cursor, no wraps seen), keeping its allocations — so one builder
    /// can be reused across runs without reallocating per-sink state.
    pub fn reset(&mut self, catalog: &Catalog) {
        self.unwrapper = TimeUnwrapper::new();
        self.states.clear();
        self.states
            .extend(catalog.sinks().map(|(_, s)| s.default_state));
        self.cursor_time = SimTime::ZERO;
        self.cursor_counts = 0;
        self.ready.clear();
    }

    /// Closes the stream.  If `final_stamp` is given it closes the last
    /// interval (the simulator records one at the end of a run); otherwise
    /// the span after the final power-state entry is dropped.  Returns the
    /// undrained completed intervals.
    pub fn finish(mut self, final_stamp: Option<Stamp>) -> Vec<PowerInterval> {
        self.flush(final_stamp);
        self.ready
    }
}

/// Incremental [`crate::intervals::activity_segments`] for one
/// single-activity device.
#[derive(Debug, Clone)]
pub struct SegmentBuilder {
    unwrapper: TimeUnwrapper,
    device: DeviceId,
    resolve_bindings: bool,
    current: ActivityLabel,
    seg_start: SimTime,
    seg_counts: u32,
    /// Segments that can no longer change (always empty while
    /// `resolve_bindings`, see the module docs).
    ready: Vec<ActivitySegment>,
    /// Completed segments an `ActivityBind` may still relabel.
    retained: Vec<ActivitySegment>,
}

impl SegmentBuilder {
    /// A builder for `device`, starting idle at time zero.  See
    /// [`crate::intervals::activity_segments`] for what `resolve_bindings`
    /// does.
    pub fn new(device: DeviceId, resolve_bindings: bool) -> Self {
        SegmentBuilder {
            unwrapper: TimeUnwrapper::new(),
            device,
            resolve_bindings,
            current: ActivityLabel::IDLE,
            seg_start: SimTime::ZERO,
            seg_counts: 0,
            ready: Vec::new(),
            retained: Vec::new(),
        }
    }

    /// Consumes one entry.
    pub fn push(&mut self, entry: &LogEntry) {
        let time = self.unwrapper.unwrap(entry.time_us);
        if entry.device() != Some(self.device)
            || !matches!(
                entry.kind,
                EntryKind::ActivityChange | EntryKind::ActivityBind
            )
        {
            return;
        }
        let new_label = entry.label().expect("activity entry has a label");
        if time > self.seg_start {
            self.retained.push(ActivitySegment {
                start: self.seg_start,
                end: time,
                label: self.current,
                counts: entry.icount.wrapping_sub(self.seg_counts),
            });
        }
        if self.resolve_bindings && entry.kind == EntryKind::ActivityBind {
            // Charge the just-finished run of `current`-labelled segments to
            // the activity it is being bound to.
            let proxy = self.current;
            for seg in self.retained.iter_mut().rev() {
                if seg.label == proxy {
                    seg.label = new_label;
                } else {
                    break;
                }
            }
        } else if !self.resolve_bindings {
            // Without binding, a closed segment is final immediately.
            self.ready.append(&mut self.retained);
        }
        self.current = new_label;
        self.seg_start = time;
        self.seg_counts = entry.icount;
    }

    /// Consumes one chunk of entries, in log order.
    pub fn push_chunk(&mut self, chunk: &[LogEntry]) {
        for entry in chunk {
            self.push(entry);
        }
    }

    /// Drains the segments that can no longer change.  With
    /// `resolve_bindings` this is empty until [`SegmentBuilder::finish`];
    /// without it, every closed segment is final.
    pub fn drain_completed(&mut self) -> std::vec::Drain<'_, ActivitySegment> {
        self.ready.drain(..)
    }

    /// Non-consuming [`SegmentBuilder::finish`]: closes the last segment at
    /// `final_stamp` (if any) and promotes every retained segment to ready.
    /// After a flush the builder should be [`SegmentBuilder::reset`] before
    /// reuse.
    pub fn flush(&mut self, final_stamp: Option<Stamp>) {
        if let Some(end) = final_stamp {
            if end.time > self.seg_start {
                self.retained.push(ActivitySegment {
                    start: self.seg_start,
                    end: end.time,
                    label: self.current,
                    counts: end.icount.wrapping_sub(self.seg_counts),
                });
            }
        }
        self.ready.append(&mut self.retained);
    }

    /// Returns the builder to its boot state (idle at time zero, no wraps
    /// seen), keeping its allocations.
    pub fn reset(&mut self) {
        self.unwrapper = TimeUnwrapper::new();
        self.current = ActivityLabel::IDLE;
        self.seg_start = SimTime::ZERO;
        self.seg_counts = 0;
        self.ready.clear();
        self.retained.clear();
    }

    /// Like [`SegmentBuilder::reset`], but also retargets the builder to
    /// `device` — so one pooled builder can serve nodes whose device ids
    /// differ across scenarios.
    pub fn reset_for(&mut self, device: DeviceId) {
        self.device = device;
        self.reset();
    }

    /// Closes the stream, optionally closing the last segment at
    /// `final_stamp`.  Returns the undrained segments.
    pub fn finish(mut self, final_stamp: Option<Stamp>) -> Vec<ActivitySegment> {
        self.flush(final_stamp);
        self.ready
    }
}

/// Incremental [`crate::intervals::multi_segments`] for one multi-activity
/// device.
#[derive(Debug, Clone)]
pub struct MultiSegmentBuilder {
    unwrapper: TimeUnwrapper,
    device: DeviceId,
    current: Vec<ActivityLabel>,
    seg_start: SimTime,
    ready: Vec<MultiSegment>,
}

impl MultiSegmentBuilder {
    /// A builder for `device`, starting with an empty activity set.
    pub fn new(device: DeviceId) -> Self {
        MultiSegmentBuilder {
            unwrapper: TimeUnwrapper::new(),
            device,
            current: Vec::new(),
            seg_start: SimTime::ZERO,
            ready: Vec::new(),
        }
    }

    /// Consumes one entry.
    pub fn push(&mut self, entry: &LogEntry) {
        let time = self.unwrapper.unwrap(entry.time_us);
        if entry.device() != Some(self.device)
            || !matches!(entry.kind, EntryKind::MultiAdd | EntryKind::MultiRemove)
        {
            return;
        }
        let label = entry.label().expect("multi entry has a label");
        if time > self.seg_start {
            self.ready.push(MultiSegment {
                start: self.seg_start,
                end: time,
                labels: self.current.clone(),
            });
        }
        match entry.kind {
            EntryKind::MultiAdd => {
                if !self.current.contains(&label) {
                    self.current.push(label);
                }
            }
            EntryKind::MultiRemove => self.current.retain(|l| *l != label),
            _ => unreachable!("filtered to multi entries"),
        }
        self.seg_start = time;
    }

    /// Consumes one chunk of entries, in log order.
    pub fn push_chunk(&mut self, chunk: &[LogEntry]) {
        for entry in chunk {
            self.push(entry);
        }
    }

    /// Drains the segments completed so far.
    pub fn drain_completed(&mut self) -> std::vec::Drain<'_, MultiSegment> {
        self.ready.drain(..)
    }

    /// Closes the stream, optionally closing the last segment at
    /// `final_stamp`.  Returns the undrained segments.
    pub fn finish(mut self, final_stamp: Option<Stamp>) -> Vec<MultiSegment> {
        if let Some(end) = final_stamp {
            if end.time > self.seg_start {
                self.ready.push(MultiSegment {
                    start: self.seg_start,
                    end: end.time,
                    labels: self.current,
                });
            }
        }
        self.ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::{activity_segments, multi_segments, power_intervals, unwrap_times};
    use hw_model::catalog::blink_catalog;
    use hw_model::SinkId;
    use quanto_core::{ActivityId, NodeId};

    fn ps(t_us: u64, ic: u32, sink: SinkId, v: u16) -> LogEntry {
        LogEntry::power_state(SimTime::from_micros(t_us), ic, sink, v)
    }

    fn lbl(id: u8) -> ActivityLabel {
        ActivityLabel::new(NodeId(1), ActivityId(id))
    }

    fn act(t_us: u64, ic: u32, dev: DeviceId, label: ActivityLabel, bind: bool) -> LogEntry {
        LogEntry::activity(
            if bind {
                EntryKind::ActivityBind
            } else {
                EntryKind::ActivityChange
            },
            SimTime::from_micros(t_us),
            ic,
            dev,
            label,
        )
    }

    /// A log that wraps the 32-bit clock twice, mixing power-state and
    /// activity entries so the unwrap depends on entries each builder skips.
    fn wrapping_log() -> Vec<LogEntry> {
        let dev = DeviceId(0);
        vec![
            ps(100, 1, SinkId(1), 1),
            act(5_000, 2, dev, lbl(1), false),
            ps(u32::MAX as u64 - 50, 7, SinkId(1), 0),
            // First wrap witnessed by an activity entry.
            act(40, 9, dev, lbl(2), false),
            ps(90, 11, SinkId(2), 1),
            act(u32::MAX as u64 - 3, 13, dev, lbl(1), true),
            // Second wrap witnessed by a power-state entry.
            ps(7, 15, SinkId(2), 0),
            act(900, 16, dev, ActivityLabel::IDLE, false),
        ]
    }

    #[test]
    fn unwrapper_matches_batch_unwrap() {
        let log = wrapping_log();
        let batch = unwrap_times(&log);
        let mut u = TimeUnwrapper::new();
        for (i, e) in log.iter().enumerate() {
            assert_eq!(u.unwrap_entry(e), batch[i], "entry {i}");
        }
    }

    #[test]
    fn interval_builder_matches_batch_for_every_chunk_size() {
        let (cat, _cpu, _leds) = blink_catalog();
        let log = wrapping_log();
        let stamp = Some(Stamp::new(SimTime::from_micros(3 << 32), 20));
        let batch = power_intervals(&log, &cat, stamp);
        for chunk_size in 1..=log.len() {
            let mut b = IntervalBuilder::new(&cat);
            let mut streamed = Vec::new();
            for chunk in log.chunks(chunk_size) {
                b.push_chunk(chunk);
                streamed.extend(b.drain_completed());
            }
            streamed.extend(b.finish(stamp));
            assert_eq!(streamed, batch, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn segment_builder_matches_batch_with_and_without_binding() {
        let dev = DeviceId(0);
        let log = wrapping_log();
        let stamp = Some(Stamp::new(SimTime::from_micros(3 << 32), 20));
        for resolve in [false, true] {
            let batch = activity_segments(&log, dev, resolve, stamp);
            for chunk_size in 1..=log.len() {
                let mut b = SegmentBuilder::new(dev, resolve);
                let mut streamed = Vec::new();
                for chunk in log.chunks(chunk_size) {
                    b.push_chunk(chunk);
                    streamed.extend(b.drain_completed());
                }
                streamed.extend(b.finish(stamp));
                assert_eq!(streamed, batch, "resolve {resolve} chunk {chunk_size}");
            }
        }
    }

    #[test]
    fn eager_segments_without_binding_flow_before_finish() {
        let dev = DeviceId(0);
        let mut b = SegmentBuilder::new(dev, false);
        b.push(&act(100, 1, dev, lbl(1), false));
        b.push(&act(300, 2, dev, lbl(2), false));
        // Two closed segments, both final already.
        assert_eq!(b.drain_completed().len(), 2);
        assert_eq!(b.finish(None).len(), 0);
    }

    #[test]
    fn binding_mode_retains_until_finish() {
        // Successive binds can reach arbitrarily far back: [A][B] + bind(A)
        // merges the runs, and a further bind relabels both — so nothing is
        // final before the log ends.
        let dev = DeviceId(0);
        let a = lbl(1);
        let c = lbl(3);
        let log = vec![
            act(100, 0, dev, a, false),
            act(200, 0, dev, lbl(2), false), // closes an A segment
            act(300, 0, dev, a, true),       // bind: B-run becomes A, merging with it
            act(400, 0, dev, c, true),       // bind: the whole A-run becomes C
        ];
        let mut b = SegmentBuilder::new(dev, true);
        b.push_chunk(&log);
        assert_eq!(b.drain_completed().len(), 0, "binding mode defers");
        let segs = b.finish(Some(Stamp::new(SimTime::from_micros(500), 0)));
        let batch = activity_segments(
            &log,
            dev,
            true,
            Some(Stamp::new(SimTime::from_micros(500), 0)),
        );
        assert_eq!(segs, batch);
        // All three middle segments carry the final bound label.
        assert!(segs[1..4].iter().all(|s| s.label == c), "{segs:?}");
    }

    /// `flush` + `reset` must behave like a fresh consuming `finish`: the
    /// reuse path exists so per-node builders can live across scenarios
    /// without reallocating.
    #[test]
    fn flush_and_reset_reproduce_consuming_finish() {
        let (cat, _cpu, _leds) = blink_catalog();
        let log = wrapping_log();
        let stamp = Some(Stamp::new(SimTime::from_micros(3 << 32), 20));
        let batch = power_intervals(&log, &cat, stamp);
        let mut b = IntervalBuilder::new(&cat);
        for round in 0..3 {
            let mut streamed = Vec::new();
            for chunk in log.chunks(2) {
                b.push_chunk(chunk);
                streamed.extend(b.drain_completed());
            }
            b.flush(stamp);
            streamed.extend(b.drain_completed());
            assert_eq!(streamed, batch, "round {round}");
            b.reset(&cat);
        }

        let dev = DeviceId(0);
        let seg_batch = activity_segments(&log, dev, true, stamp);
        let mut s = SegmentBuilder::new(dev, true);
        for round in 0..3 {
            s.push_chunk(&log);
            s.flush(stamp);
            let segs: Vec<ActivitySegment> = s.drain_completed().collect();
            assert_eq!(segs, seg_batch, "round {round}");
            s.reset();
        }
    }

    #[test]
    fn multi_segment_builder_matches_batch() {
        let dev = DeviceId(3);
        let mk = |t, kind, label: ActivityLabel| {
            LogEntry::activity(kind, SimTime::from_micros(t), 0, dev, label)
        };
        let log = vec![
            mk(100, EntryKind::MultiAdd, lbl(1)),
            mk(u32::MAX as u64 - 5, EntryKind::MultiAdd, lbl(2)),
            mk(50, EntryKind::MultiRemove, lbl(1)), // wraps
        ];
        let stamp = Some(Stamp::new(SimTime::from_micros((1u64 << 32) + 500), 0));
        let batch = multi_segments(&log, dev, stamp);
        for chunk_size in 1..=log.len() {
            let mut b = MultiSegmentBuilder::new(dev);
            let mut streamed = Vec::new();
            for chunk in log.chunks(chunk_size) {
                b.push_chunk(chunk);
                streamed.extend(b.drain_completed());
            }
            streamed.extend(b.finish(stamp));
            assert_eq!(streamed, batch, "chunk size {chunk_size}");
        }
    }
}
