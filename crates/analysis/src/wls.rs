//! The paper's weighted multivariate least-squares regression (Section 2.5).
//!
//! The input is the set of power intervals extracted from a log.  Intervals
//! with the same combination of power states are pooled (their times and
//! energies are summed); for each pooled state `j` the average aggregate
//! power `y_j = E_j / t_j` is an observation, weighted by `w_j = √(E_j·t_j)`.
//! The unknown per-state power draws Π then solve
//!
//! ```text
//! Π = (XᵀWX)⁻¹ XᵀWY,     ε = Y − XΠ
//! ```
//!
//! where `X` is the 0/1 design matrix of active power states (plus a constant
//! column absorbing quiescent draw), and `W = diag(w_j)`.

use crate::intervals::PowerInterval;
use crate::matrix::{weighted_least_squares, Matrix, MatrixError};
use hw_model::{Catalog, Current, Energy, Power, SimDuration, SinkId, StateIndex, Voltage};
use std::collections::BTreeMap;

/// One pooled observation: a unique combination of power states with the
/// total time and energy spent in it.
#[derive(Debug, Clone, PartialEq)]
pub struct Observation {
    /// Per-sink state indices for this pooled state.
    pub states: Vec<StateIndex>,
    /// Total time spent in this state combination.
    pub time: SimDuration,
    /// Total (nominal) energy metered in this state combination.
    pub energy: Energy,
}

impl Observation {
    /// Average aggregate power for this observation (`y_j`).
    pub fn average_power(&self) -> Power {
        if self.time.is_zero() {
            Power::ZERO
        } else {
            self.energy / self.time
        }
    }

    /// The regression weight `w_j = √(E_j · t_j)` (in µJ·s units).
    pub fn weight(&self) -> f64 {
        (self.energy.as_micro_joules().max(0.0) * self.time.as_secs_f64()).sqrt()
    }
}

/// Incrementally pools power intervals by their state combination (the
/// grouping step of Section 2.5).  Because pooling sums integer times and
/// pulse counts per *distinct state combination*, its memory is bounded by
/// the number of combinations the platform can express — not by the number
/// of intervals — which is what lets a streaming consumer regress a
/// week-long log without holding it.
#[derive(Debug, Clone, Default)]
pub struct ObservationPool {
    grouped: BTreeMap<Vec<u8>, (SimDuration, u64)>,
}

impl ObservationPool {
    /// An empty pool.
    pub fn new() -> Self {
        ObservationPool::default()
    }

    /// Folds one interval into the pool.
    pub fn add(&mut self, interval: &PowerInterval) {
        let key: Vec<u8> = interval.states.iter().map(|s| s.as_u8()).collect();
        let slot = self.grouped.entry(key).or_insert((SimDuration::ZERO, 0));
        slot.0 += interval.duration();
        slot.1 += interval.counts as u64;
    }

    /// Empties the pool for reuse across runs.
    pub fn clear(&mut self) {
        self.grouped.clear();
    }

    /// Number of distinct state combinations seen.
    pub fn len(&self) -> usize {
        self.grouped.len()
    }

    /// Whether any interval has been pooled.
    pub fn is_empty(&self) -> bool {
        self.grouped.is_empty()
    }

    /// Converts the pooled sums into regression observations, pricing pulse
    /// counts at `energy_per_count`.
    pub fn observations(&self, energy_per_count: Energy) -> Vec<Observation> {
        self.grouped
            .iter()
            .map(|(key, (time, counts))| Observation {
                states: key.iter().copied().map(StateIndex).collect(),
                time: *time,
                energy: energy_per_count * *counts as f64,
            })
            .collect()
    }

    /// Like [`ObservationPool::observations`], but consumes the pool and
    /// reuses its key allocations — the batch path.
    pub fn into_observations(self, energy_per_count: Energy) -> Vec<Observation> {
        self.grouped
            .into_iter()
            .map(|(key, (time, counts))| Observation {
                states: key.into_iter().map(StateIndex).collect(),
                time,
                energy: energy_per_count * counts as f64,
            })
            .collect()
    }
}

/// Pools power intervals by their state combination (the grouping step of
/// Section 2.5) and converts pulse counts into nominal energy.  Batch
/// wrapper over [`ObservationPool`].
pub fn pool_intervals(intervals: &[PowerInterval], energy_per_count: Energy) -> Vec<Observation> {
    let mut pool = ObservationPool::new();
    for iv in intervals {
        pool.add(iv);
    }
    pool.into_observations(energy_per_count)
}

/// Options controlling the regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegressionOptions {
    /// Use the paper's `√(E·t)` weights (`true`) or ordinary least squares
    /// (`false`, the ablation).
    pub weighted: bool,
    /// Include a constant column absorbing quiescent / baseline draw.
    pub include_constant: bool,
}

impl Default for RegressionOptions {
    fn default() -> Self {
        RegressionOptions {
            weighted: true,
            include_constant: true,
        }
    }
}

/// Why a regression could not be computed.
#[derive(Debug, Clone, PartialEq)]
pub enum RegressionError {
    /// Fewer observations than unknowns: the workload has not exercised
    /// enough distinct power states yet.
    Underdetermined {
        /// Number of pooled observations available.
        observations: usize,
        /// Number of unknown coefficients requested.
        unknowns: usize,
    },
    /// The design matrix is singular: some power states always occur
    /// together, so their draws cannot be disambiguated (Section 5.2,
    /// "Linear independence").
    Collinear,
    /// No observations at all.
    Empty,
}

impl std::fmt::Display for RegressionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegressionError::Underdetermined {
                observations,
                unknowns,
            } => write!(
                f,
                "underdetermined regression: {observations} observations for {unknowns} unknowns"
            ),
            RegressionError::Collinear => {
                write!(
                    f,
                    "collinear power states: regression cannot disambiguate them"
                )
            }
            RegressionError::Empty => write!(f, "no observations"),
        }
    }
}

impl std::error::Error for RegressionError {}

/// The estimated per-state power draws.
#[derive(Debug, Clone)]
pub struct RegressionResult {
    /// Catalog column indices that were actually estimated (columns that
    /// never varied across observations are excluded).
    pub columns: Vec<usize>,
    /// Estimated power draw (µW) for each entry of `columns`.
    pub power_uw: Vec<f64>,
    /// Estimated constant (quiescent) power draw in µW, zero when no
    /// constant column was requested.
    pub constant_uw: f64,
    /// Observed average power (µW) per pooled observation.
    pub observed_uw: Vec<f64>,
    /// Fitted average power (µW) per pooled observation (`XΠ`).
    pub fitted_uw: Vec<f64>,
    /// Relative error `‖Y − XΠ‖ / ‖Y‖` (unweighted norms, as reported under
    /// Table 2).
    pub relative_error: f64,
    /// The pooled observations the fit was computed from.
    pub observations: Vec<Observation>,
}

impl RegressionResult {
    /// Estimated power for a (sink, state) pair, if that pair was estimable.
    pub fn state_power(&self, catalog: &Catalog, sink: SinkId, state: StateIndex) -> Option<Power> {
        let col = catalog.column(sink, state)?;
        let idx = self.columns.iter().position(|c| *c == col)?;
        Some(Power::from_micro_watts(self.power_uw[idx]))
    }

    /// Estimated current for a (sink, state) pair at a supply voltage.
    pub fn state_current(
        &self,
        catalog: &Catalog,
        sink: SinkId,
        state: StateIndex,
        supply: Voltage,
    ) -> Option<Current> {
        self.state_power(catalog, sink, state).map(|p| p / supply)
    }

    /// The constant (quiescent) power.
    pub fn constant_power(&self) -> Power {
        Power::from_micro_watts(self.constant_uw)
    }

    /// The constant (quiescent) current at a supply voltage.
    pub fn constant_current(&self, supply: Voltage) -> Current {
        self.constant_power() / supply
    }

    /// Human-readable labels for the estimated columns plus `"Const."`.
    pub fn labels(&self, catalog: &Catalog) -> Vec<String> {
        let mut out: Vec<String> = self
            .columns
            .iter()
            .map(|c| catalog.column_label(*c))
            .collect();
        out.push("Const.".to_string());
        out
    }
}

/// Runs the weighted least-squares estimation over pooled observations.
pub fn regress(
    observations: &[Observation],
    catalog: &Catalog,
    options: RegressionOptions,
) -> Result<RegressionResult, RegressionError> {
    if observations.is_empty() {
        return Err(RegressionError::Empty);
    }

    // Determine which catalog columns actually vary across observations:
    // a column that is always inactive carries no information, and one that
    // is always active is indistinguishable from the constant.
    let ncols = catalog.column_count();
    let mut seen_active = vec![false; ncols];
    let mut seen_inactive = vec![false; ncols];
    let design_rows: Vec<Vec<f64>> = observations
        .iter()
        .map(|o| {
            let mut row = vec![0.0; ncols];
            for (i, state) in o.states.iter().enumerate() {
                if let Some(col) = catalog.column(SinkId(i as u16), *state) {
                    row[col] = 1.0;
                }
            }
            for (c, v) in row.iter().enumerate() {
                if *v == 1.0 {
                    seen_active[c] = true;
                } else {
                    seen_inactive[c] = true;
                }
            }
            row
        })
        .collect();

    let columns: Vec<usize> = (0..ncols)
        .filter(|c| seen_active[*c] && (seen_inactive[*c] || !options.include_constant))
        .collect();
    let unknowns = columns.len() + usize::from(options.include_constant);
    if observations.len() < unknowns {
        return Err(RegressionError::Underdetermined {
            observations: observations.len(),
            unknowns,
        });
    }

    // Build the reduced design matrix (selected columns + optional constant).
    let x_rows: Vec<Vec<f64>> = design_rows
        .iter()
        .map(|full| {
            let mut row: Vec<f64> = columns.iter().map(|c| full[*c]).collect();
            if options.include_constant {
                row.push(1.0);
            }
            row
        })
        .collect();
    let x = Matrix::from_rows(&x_rows);

    let y: Vec<f64> = observations
        .iter()
        .map(|o| o.average_power().as_micro_watts())
        .collect();
    let weights: Vec<f64> = if options.weighted {
        observations
            .iter()
            .map(|o| {
                let w = o.weight();
                // Guard against zero weights nuking an observation entirely;
                // quantization can make a short idle interval meter 0 pulses.
                if w > 0.0 {
                    w
                } else {
                    f64::MIN_POSITIVE.sqrt()
                }
            })
            .collect()
    } else {
        vec![1.0; observations.len()]
    };

    let pi = weighted_least_squares(&x, &y, &weights).map_err(|e| match e {
        MatrixError::Singular { .. } => RegressionError::Collinear,
        MatrixError::ShapeMismatch { .. } => RegressionError::Collinear,
    })?;

    let (coeffs, constant_uw) = if options.include_constant {
        (pi[..columns.len()].to_vec(), pi[columns.len()])
    } else {
        (pi.clone(), 0.0)
    };

    // Fitted values and relative error.
    let fitted: Vec<f64> = x_rows
        .iter()
        .map(|row| row.iter().zip(pi.iter()).map(|(a, b)| a * b).sum())
        .collect();
    let resid_norm: f64 = y
        .iter()
        .zip(fitted.iter())
        .map(|(o, f)| (o - f).powi(2))
        .sum::<f64>()
        .sqrt();
    let y_norm: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
    let relative_error = if y_norm > 0.0 {
        resid_norm / y_norm
    } else {
        0.0
    };

    Ok(RegressionResult {
        columns,
        power_uw: coeffs,
        constant_uw,
        observed_uw: y,
        fitted_uw: fitted,
        relative_error,
        observations: observations.to_vec(),
    })
}

/// Convenience: pool intervals and regress in one step.
pub fn regress_intervals(
    intervals: &[PowerInterval],
    catalog: &Catalog,
    energy_per_count: Energy,
    options: RegressionOptions,
) -> Result<RegressionResult, RegressionError> {
    let obs = pool_intervals(intervals, energy_per_count);
    regress(&obs, catalog, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::catalog::{blink_catalog, led_state};
    use hw_model::{PowerModel, SimTime, StateVector};
    use std::sync::Arc;

    /// Builds synthetic power intervals for all eight LED combinations of
    /// Blink, metering energy with an ideal 1 uJ/count meter.
    fn blink_intervals() -> (Vec<PowerInterval>, Arc<Catalog>, [SinkId; 3], SinkId) {
        let (cat, cpu, leds) = blink_catalog();
        let cat = Arc::new(cat);
        let model = PowerModel::ideal(cat.clone());
        let mut intervals = Vec::new();
        let mut t = SimTime::ZERO;
        let mut cumulative_uj = 0.0f64;
        let mut prev_counts = 0u64;
        let dur = SimDuration::from_secs(1);
        for mask in 0..8u8 {
            let mut sv = StateVector::baseline(&cat);
            for (i, led) in leds.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    sv.set_state(*led, led_state::ON);
                }
            }
            let e = model.energy_over(&sv, dur).as_micro_joules();
            cumulative_uj += e;
            let counts_now = cumulative_uj.floor() as u64;
            intervals.push(PowerInterval {
                start: t,
                end: t + dur,
                counts: (counts_now - prev_counts) as u32,
                states: (0..cat.sink_count())
                    .map(|i| sv.state(SinkId(i as u16)))
                    .collect(),
            });
            prev_counts = counts_now;
            t += dur;
        }
        (intervals, cat, leds, cpu)
    }

    #[test]
    fn pooling_merges_equal_states() {
        let (mut intervals, _cat, _leds, _cpu) = blink_intervals();
        // Duplicate the first interval; pooling should merge it.
        let dup = intervals[0].clone();
        intervals.push(PowerInterval {
            start: SimTime::from_secs(100),
            end: SimTime::from_secs(101),
            ..dup
        });
        let obs = pool_intervals(&intervals, Energy::from_micro_joules(1.0));
        assert_eq!(obs.len(), 8);
        let merged = obs
            .iter()
            .find(|o| o.time.as_secs_f64() > 1.5)
            .expect("merged observation");
        assert_eq!(merged.time.as_micros(), 2_000_000);
    }

    #[test]
    fn regression_recovers_led_currents() {
        let (intervals, cat, leds, _cpu) = blink_intervals();
        let result = regress_intervals(
            &intervals,
            &cat,
            Energy::from_micro_joules(1.0),
            RegressionOptions::default(),
        )
        .unwrap();

        let supply = Voltage::from_volts(3.0);
        let i0 = result
            .state_current(&cat, leds[0], led_state::ON, supply)
            .unwrap()
            .as_milli_amps();
        let i1 = result
            .state_current(&cat, leds[1], led_state::ON, supply)
            .unwrap()
            .as_milli_amps();
        let i2 = result
            .state_current(&cat, leds[2], led_state::ON, supply)
            .unwrap()
            .as_milli_amps();
        // Nominal Blink-catalog LED currents are 2.5, 2.23 and 0.83 mA; the
        // 1 uJ quantization allows a small error.
        assert!((i0 - 2.5).abs() < 0.05, "led0 {i0}");
        assert!((i1 - 2.23).abs() < 0.05, "led1 {i1}");
        assert!((i2 - 0.83).abs() < 0.05, "led2 {i2}");
        // The ordering red > green > blue (Table 2) must hold.
        assert!(i0 > i1 && i1 > i2);
        // With near-ideal metering the relative error is small (paper: 0.83%).
        assert!(
            result.relative_error < 0.02,
            "err {}",
            result.relative_error
        );
        // The constant absorbs the idle CPU (a few uW); it must be small and
        // non-negative within noise.
        assert!(result.constant_power().as_milli_watts() < 0.1);
        assert_eq!(result.labels(&cat).last().unwrap(), "Const.");
    }

    #[test]
    fn unweighted_regression_also_works_on_clean_data() {
        let (intervals, cat, leds, _cpu) = blink_intervals();
        let result = regress_intervals(
            &intervals,
            &cat,
            Energy::from_micro_joules(1.0),
            RegressionOptions {
                weighted: false,
                include_constant: true,
            },
        )
        .unwrap();
        let i0 = result
            .state_current(&cat, leds[0], led_state::ON, Voltage::from_volts(3.0))
            .unwrap()
            .as_milli_amps();
        assert!((i0 - 2.5).abs() < 0.05);
    }

    #[test]
    fn underdetermined_and_empty_inputs_error() {
        let (intervals, cat, _leds, _cpu) = blink_intervals();
        assert!(matches!(
            regress(&[], &cat, RegressionOptions::default()),
            Err(RegressionError::Empty)
        ));
        // Two observations (LED0+LED1 on, LED0+LED2 on) leave LED1, LED2 and
        // the constant as three unknowns: underdetermined.
        let two = [intervals[3].clone(), intervals[5].clone()];
        let few = pool_intervals(&two, Energy::from_micro_joules(1.0));
        assert!(matches!(
            regress(&few, &cat, RegressionOptions::default()),
            Err(RegressionError::Underdetermined { .. })
        ));
    }

    #[test]
    fn collinear_states_are_reported() {
        let (cat, _cpu, leds) = blink_catalog();
        let cat = Arc::new(cat);
        // LED0 and LED1 always switch together while LED2 varies freely:
        // four distinct observations, but two identical design columns.
        let combos: [(bool, bool); 4] =
            [(false, false), (false, true), (true, false), (true, true)];
        let mut intervals = Vec::new();
        for (i, (pair_on, led2_on)) in combos.iter().enumerate() {
            let mut sv = StateVector::baseline(&cat);
            if *pair_on {
                sv.set_state(leds[0], led_state::ON);
                sv.set_state(leds[1], led_state::ON);
            }
            if *led2_on {
                sv.set_state(leds[2], led_state::ON);
            }
            let counts = 8 + u32::from(*pair_on) * 14_190 + u32::from(*led2_on) * 2_490;
            intervals.push(PowerInterval {
                start: SimTime::from_secs(i as u64),
                end: SimTime::from_secs(i as u64 + 1),
                counts,
                states: (0..cat.sink_count())
                    .map(|k| sv.state(SinkId(k as u16)))
                    .collect(),
            });
        }
        let err = regress_intervals(
            &intervals,
            &cat,
            Energy::from_micro_joules(1.0),
            RegressionOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, RegressionError::Collinear);
    }

    #[test]
    fn always_on_columns_are_absorbed_by_the_constant() {
        let (cat, cpu, leds) = blink_catalog();
        let cat = Arc::new(cat);
        // The CPU is ACTIVE in every observation; its draw must fold into the
        // constant rather than producing a singular system.
        let mut intervals = Vec::new();
        for mask in 0..4u8 {
            let mut sv = StateVector::baseline(&cat);
            sv.set_state(cpu, StateIndex(1));
            for (i, led) in leds.iter().enumerate().take(2) {
                if mask & (1 << i) != 0 {
                    sv.set_state(*led, led_state::ON);
                }
            }
            let model = PowerModel::ideal(cat.clone());
            let e = model
                .energy_over(&sv, SimDuration::from_secs(1))
                .as_micro_joules();
            intervals.push(PowerInterval {
                start: SimTime::from_secs(mask as u64),
                end: SimTime::from_secs(mask as u64 + 1),
                counts: e as u32,
                states: (0..cat.sink_count())
                    .map(|k| sv.state(SinkId(k as u16)))
                    .collect(),
            });
        }
        let result = regress_intervals(
            &intervals,
            &cat,
            Energy::from_micro_joules(1.0),
            RegressionOptions::default(),
        )
        .unwrap();
        // CPU ACTIVE is not an estimated column.
        assert!(result.state_power(&cat, cpu, StateIndex(1)).is_none());
        // Its 1.5 mW (500 uA at 3 V) shows up in the constant.
        let const_mw = result.constant_power().as_milli_watts();
        assert!((const_mw - 1.5).abs() < 0.1, "constant {const_mw}");
    }

    #[test]
    fn observation_weight_grows_with_energy_and_time() {
        let a = Observation {
            states: vec![],
            time: SimDuration::from_secs(1),
            energy: Energy::from_micro_joules(100.0),
        };
        let b = Observation {
            states: vec![],
            time: SimDuration::from_secs(4),
            energy: Energy::from_micro_joules(400.0),
        };
        assert!(b.weight() > a.weight());
        assert!((b.weight() / a.weight() - 4.0).abs() < 1e-9);
        assert!((a.average_power().as_micro_watts() - 100.0).abs() < 1e-9);
    }
}
