//! Merging power states, the regression and activities into "where have all
//! the joules gone" (Tables 3a–3d of the paper).
//!
//! The power-state log plus the regression give, for every interval, which
//! energy sinks were active and how much power each one drew.  The activity
//! log gives, for every tracked device, on behalf of which activity it was
//! working.  Combining the two attributes every sink's energy in every
//! interval to an activity, via the device that owns the sink.

use crate::intervals::{
    activity_segments, multi_segments, power_intervals, ActivitySegment, MultiSegment,
    PowerInterval,
};
use crate::wls::{regress_intervals, RegressionError, RegressionOptions, RegressionResult};
use hw_model::{Catalog, Energy, SimDuration, SimTime, SinkId, Voltage};
use quanto_core::{ActivityLabel, DeviceId, LogEntry, Stamp};
use std::collections::{BTreeMap, HashMap};

/// Configuration for a full energy breakdown.
#[derive(Debug, Clone)]
pub struct BreakdownConfig {
    /// Nominal energy per iCount pulse (8.33 µJ on HydroWatch).
    pub energy_per_count: Energy,
    /// Supply voltage, for converting power to current in reports.
    pub supply: Voltage,
    /// Resolve proxy-activity bindings onto the real activities.
    pub resolve_bindings: bool,
    /// Which tracked device "owns" each energy sink, e.g. the three LED sinks
    /// map to the three LED devices and all radio sinks map to the radio
    /// device.  Sinks without an owner contribute to
    /// [`Breakdown::unattributed_energy`].
    pub sink_owner: HashMap<SinkId, DeviceId>,
    /// Devices that are multi-activity (their energy is split equally among
    /// the concurrent activities, the paper's default policy).
    pub multi_devices: Vec<DeviceId>,
    /// Regression options.
    pub regression: RegressionOptions,
}

impl BreakdownConfig {
    /// A configuration with the given pulse energy and supply and no sink
    /// ownership information (all energy will be unattributed by activity).
    pub fn new(energy_per_count: Energy, supply: Voltage) -> Self {
        BreakdownConfig {
            energy_per_count,
            supply,
            resolve_bindings: true,
            sink_owner: HashMap::new(),
            multi_devices: Vec::new(),
            regression: RegressionOptions::default(),
        }
    }

    /// Declares that `device` owns `sink`.
    pub fn own(mut self, sink: SinkId, device: DeviceId) -> Self {
        self.sink_owner.insert(sink, device);
        self
    }

    /// Declares a multi-activity device.
    pub fn multi(mut self, device: DeviceId) -> Self {
        self.multi_devices.push(device);
        self
    }
}

/// The complete energy/time breakdown of one node's log.
#[derive(Debug, Clone)]
pub struct Breakdown {
    /// Time each device spent on each activity (Table 3a).
    pub time_per_device_activity: BTreeMap<(DeviceId, ActivityLabel), SimDuration>,
    /// The regression result (Table 3b).
    pub regression: RegressionResult,
    /// Reconstructed energy per energy sink (Table 3c).
    pub energy_per_sink: BTreeMap<SinkId, Energy>,
    /// Energy attributed to the regression constant (quiescent draw).
    pub constant_energy: Energy,
    /// Reconstructed energy per activity (Table 3d).
    pub energy_per_activity: BTreeMap<ActivityLabel, Energy>,
    /// Sink energy that could not be attributed to any activity because the
    /// sink has no owning device.
    pub unattributed_energy: Energy,
    /// Total energy as metered (pulse count × energy per pulse).
    pub total_measured: Energy,
    /// Total energy as reconstructed from the regression.
    pub total_reconstructed: Energy,
    /// Total wall-clock time covered by the log.
    pub total_time: SimDuration,
}

impl Breakdown {
    /// Relative difference between measured and reconstructed total energy.
    pub fn reconstruction_error(&self) -> f64 {
        let measured = self.total_measured.as_micro_joules();
        if measured == 0.0 {
            return 0.0;
        }
        (self.total_reconstructed.as_micro_joules() - measured).abs() / measured
    }

    /// Time a given device spent on a given activity.
    pub fn device_activity_time(&self, dev: DeviceId, label: ActivityLabel) -> SimDuration {
        self.time_per_device_activity
            .get(&(dev, label))
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Energy attributed to an activity.
    pub fn activity_energy(&self, label: ActivityLabel) -> Energy {
        self.energy_per_activity
            .get(&label)
            .copied()
            .unwrap_or(Energy::ZERO)
    }

    /// Energy attributed to a sink.
    pub fn sink_energy(&self, sink: SinkId) -> Energy {
        self.energy_per_sink
            .get(&sink)
            .copied()
            .unwrap_or(Energy::ZERO)
    }
}

/// Computes the full breakdown from a node's log.
///
/// `final_stamp` closes the last interval (time and iCount at the end of the
/// observation window).
pub fn breakdown(
    entries: &[LogEntry],
    catalog: &Catalog,
    config: &BreakdownConfig,
    final_stamp: Option<Stamp>,
) -> Result<Breakdown, RegressionError> {
    let intervals = power_intervals(entries, catalog, final_stamp);
    let regression = regress_intervals(
        &intervals,
        catalog,
        config.energy_per_count,
        config.regression,
    )?;
    Ok(breakdown_with_regression(
        entries,
        catalog,
        config,
        final_stamp,
        intervals,
        regression,
    ))
}

/// Computes the breakdown given a pre-computed regression (used when the same
/// regression is reused across reports).
pub fn breakdown_with_regression(
    entries: &[LogEntry],
    catalog: &Catalog,
    config: &BreakdownConfig,
    final_stamp: Option<Stamp>,
    intervals: Vec<PowerInterval>,
    regression: RegressionResult,
) -> Breakdown {
    // Activity timelines for every owning device.
    let mut single_segments: HashMap<DeviceId, Vec<ActivitySegment>> = HashMap::new();
    let mut multi_segs: HashMap<DeviceId, Vec<MultiSegment>> = HashMap::new();
    let mut devices: Vec<DeviceId> = config.sink_owner.values().copied().collect();
    devices.sort();
    devices.dedup();
    for dev in &devices {
        if config.multi_devices.contains(dev) {
            multi_segs.insert(*dev, multi_segments(entries, *dev, final_stamp));
        } else {
            single_segments.insert(
                *dev,
                activity_segments(entries, *dev, config.resolve_bindings, final_stamp),
            );
        }
    }

    // Table 3a: time per (device, activity) — over every device that appears
    // in the log, not only sink owners.
    let mut time_per_device_activity: BTreeMap<(DeviceId, ActivityLabel), SimDuration> =
        BTreeMap::new();
    let mut all_devices: Vec<DeviceId> = entries.iter().filter_map(|e| e.device()).collect();
    all_devices.sort();
    all_devices.dedup();
    for dev in &all_devices {
        if config.multi_devices.contains(dev) {
            for seg in multi_segments(entries, *dev, final_stamp) {
                if seg.labels.is_empty() {
                    continue;
                }
                let share =
                    SimDuration::from_micros(seg.duration().as_micros() / seg.labels.len() as u64);
                for l in &seg.labels {
                    *time_per_device_activity
                        .entry((*dev, *l))
                        .or_insert(SimDuration::ZERO) += share;
                }
            }
        } else {
            for seg in activity_segments(entries, *dev, config.resolve_bindings, final_stamp) {
                *time_per_device_activity
                    .entry((*dev, seg.label))
                    .or_insert(SimDuration::ZERO) += seg.duration();
            }
        }
    }

    // Walk the power intervals, splitting each active column's energy across
    // the owning device's activities.
    let mut energy_per_sink: BTreeMap<SinkId, Energy> = BTreeMap::new();
    let mut energy_per_activity: BTreeMap<ActivityLabel, Energy> = BTreeMap::new();
    let mut constant_energy = Energy::ZERO;
    let mut unattributed = Energy::ZERO;
    let mut total_reconstructed = Energy::ZERO;
    let mut total_time = SimDuration::ZERO;
    let mut total_counts: u64 = 0;

    for iv in &intervals {
        let dur = iv.duration();
        total_time += dur;
        total_counts += iv.counts as u64;

        // Constant draw for this interval.
        let const_e = regression.constant_power() * dur;
        constant_energy += const_e;
        total_reconstructed += const_e;

        for (i, state) in iv.states.iter().enumerate() {
            let sink = SinkId(i as u16);
            let Some(power) = regression.state_power(catalog, sink, *state) else {
                continue;
            };
            let e = power * dur;
            if e == Energy::ZERO {
                continue;
            }
            *energy_per_sink.entry(sink).or_insert(Energy::ZERO) += e;
            total_reconstructed += e;

            let Some(owner) = config.sink_owner.get(&sink) else {
                unattributed += e;
                continue;
            };
            if let Some(segs) = single_segments.get(owner) {
                attribute_single(segs, iv.start, iv.end, e, &mut energy_per_activity);
            } else if let Some(segs) = multi_segs.get(owner) {
                attribute_multi(segs, iv.start, iv.end, e, &mut energy_per_activity);
            } else {
                unattributed += e;
            }
        }
    }

    Breakdown {
        time_per_device_activity,
        regression,
        energy_per_sink,
        constant_energy,
        energy_per_activity,
        unattributed_energy: unattributed,
        total_measured: config.energy_per_count * total_counts as f64,
        total_reconstructed,
        total_time,
    }
}

fn attribute_single(
    segs: &[ActivitySegment],
    start: SimTime,
    end: SimTime,
    energy: Energy,
    out: &mut BTreeMap<ActivityLabel, Energy>,
) {
    let total = end.duration_since(start).as_micros() as f64;
    if total == 0.0 {
        return;
    }
    let mut covered = 0.0;
    for seg in segs {
        let ov = seg.overlap(start, end).as_micros() as f64;
        if ov == 0.0 {
            continue;
        }
        covered += ov;
        *out.entry(seg.label).or_insert(Energy::ZERO) += energy * (ov / total);
    }
    // Any part of the interval not covered by segments (e.g. before the
    // device's first activity entry) is charged to Idle.
    if covered < total {
        *out.entry(ActivityLabel::IDLE).or_insert(Energy::ZERO) +=
            energy * ((total - covered) / total);
    }
}

fn attribute_multi(
    segs: &[MultiSegment],
    start: SimTime,
    end: SimTime,
    energy: Energy,
    out: &mut BTreeMap<ActivityLabel, Energy>,
) {
    let total = end.duration_since(start).as_micros() as f64;
    if total == 0.0 {
        return;
    }
    let mut covered = 0.0;
    for seg in segs {
        let ov = seg.overlap(start, end).as_micros() as f64;
        if ov == 0.0 || seg.labels.is_empty() {
            continue;
        }
        covered += ov;
        let share = energy * (ov / total) / seg.labels.len() as f64;
        for l in &seg.labels {
            *out.entry(*l).or_insert(Energy::ZERO) += share;
        }
    }
    if covered < total {
        *out.entry(ActivityLabel::IDLE).or_insert(Energy::ZERO) +=
            energy * ((total - covered) / total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::catalog::{blink_catalog, led_state};
    use hw_model::{PowerModel, SimTime, StateVector};
    use quanto_core::{ActivityId, EntryKind, NodeId};
    use std::sync::Arc;

    /// Everything `synthetic_blink_log` hands to a test: the log, the
    /// catalog, the LED sinks, devices, activities, and the final stamp.
    type SyntheticBlinkLog = (
        Vec<LogEntry>,
        Arc<Catalog>,
        [SinkId; 3],
        [DeviceId; 3],
        [ActivityLabel; 3],
        Stamp,
    );

    /// Builds a miniature Blink-style log by hand: the CPU paints each LED
    /// with its own activity while toggling it through the 8 combinations.
    fn synthetic_blink_log() -> SyntheticBlinkLog {
        let (cat, _cpu, leds) = blink_catalog();
        let cat = Arc::new(cat);
        let model = PowerModel::ideal(cat.clone());
        let led_devs = [DeviceId(1), DeviceId(2), DeviceId(3)];
        let acts = [
            ActivityLabel::new(NodeId(1), ActivityId(1)),
            ActivityLabel::new(NodeId(1), ActivityId(2)),
            ActivityLabel::new(NodeId(1), ActivityId(3)),
        ];

        let mut entries = Vec::new();
        let mut sv = StateVector::baseline(&cat);
        let mut cumulative_uj = 0.0f64;
        let step = SimDuration::from_secs(1);
        let mut t = SimTime::ZERO;
        for mask in 0..8u8 {
            // Charge energy for the previous second at the old state.
            for (i, led) in leds.iter().enumerate() {
                let want = mask & (1 << i) != 0;
                let is_on = sv.state(*led) == led_state::ON;
                if want != is_on {
                    let new_state = if want { led_state::ON } else { led_state::OFF };
                    sv.set_state(*led, new_state);
                    let ic = cumulative_uj.floor() as u32;
                    // Device activity change then power state change, the
                    // order the instrumented driver produces.
                    entries.push(LogEntry::activity(
                        EntryKind::ActivityChange,
                        t,
                        ic,
                        led_devs[i],
                        if want { acts[i] } else { ActivityLabel::IDLE },
                    ));
                    entries.push(LogEntry::power_state(t, ic, *led, new_state.as_u8() as u16));
                }
            }
            cumulative_uj += model.energy_over(&sv, step).as_micro_joules();
            t += step;
        }
        let final_stamp = Stamp::new(t, cumulative_uj.floor() as u32);
        (entries, cat, leds, led_devs, acts, final_stamp)
    }

    fn config(leds: [SinkId; 3], led_devs: [DeviceId; 3]) -> BreakdownConfig {
        BreakdownConfig::new(Energy::from_micro_joules(1.0), Voltage::from_volts(3.0))
            .own(leds[0], led_devs[0])
            .own(leds[1], led_devs[1])
            .own(leds[2], led_devs[2])
    }

    #[test]
    fn blink_breakdown_attributes_leds_to_their_activities() {
        let (entries, cat, leds, led_devs, acts, final_stamp) = synthetic_blink_log();
        let bd = breakdown(&entries, &cat, &config(leds, led_devs), Some(final_stamp)).unwrap();

        // Each LED is on for 4 of the 8 seconds.
        for (i, led) in leds.iter().enumerate() {
            let t_on = bd.device_activity_time(led_devs[i], acts[i]);
            assert_eq!(t_on.as_micros(), 4_000_000, "led {i} on-time");
            let e_sink = bd.sink_energy(*led).as_milli_joules();
            let e_act = bd.activity_energy(acts[i]).as_milli_joules();
            // LED energy should match its activity's energy closely (the LED
            // is the only sink owned by that device).
            assert!((e_sink - e_act).abs() < 0.2, "sink {e_sink} vs act {e_act}");
        }

        // Red (2.5 mA) > Green (2.23 mA) > Blue (0.83 mA), each on 4 s at 3 V.
        let red = bd.activity_energy(acts[0]).as_milli_joules();
        let green = bd.activity_energy(acts[1]).as_milli_joules();
        let blue = bd.activity_energy(acts[2]).as_milli_joules();
        assert!(red > green && green > blue);
        assert!((red - 30.0).abs() < 1.5, "red {red} mJ");
        assert!((blue - 9.96).abs() < 1.0, "blue {blue} mJ");

        // Total reconstruction matches the metered total closely.
        assert!(
            bd.reconstruction_error() < 0.02,
            "{}",
            bd.reconstruction_error()
        );
        assert_eq!(bd.total_time.as_micros(), 8_000_000);
        assert_eq!(bd.unattributed_energy, Energy::ZERO);
    }

    #[test]
    fn unowned_sinks_count_as_unattributed() {
        let (entries, cat, leds, led_devs, _acts, final_stamp) = synthetic_blink_log();
        // Only own LED0; the other two LEDs' energy becomes unattributed.
        let cfg = BreakdownConfig::new(Energy::from_micro_joules(1.0), Voltage::from_volts(3.0))
            .own(leds[0], led_devs[0]);
        let bd = breakdown(&entries, &cat, &cfg, Some(final_stamp)).unwrap();
        assert!(bd.unattributed_energy.as_milli_joules() > 10.0);
    }

    #[test]
    fn energy_conservation_between_views() {
        let (entries, cat, leds, led_devs, _acts, final_stamp) = synthetic_blink_log();
        let bd = breakdown(&entries, &cat, &config(leds, led_devs), Some(final_stamp)).unwrap();
        let by_sink: f64 = bd
            .energy_per_sink
            .values()
            .map(|e| e.as_micro_joules())
            .sum::<f64>()
            + bd.constant_energy.as_micro_joules();
        let by_activity: f64 = bd
            .energy_per_activity
            .values()
            .map(|e| e.as_micro_joules())
            .sum::<f64>()
            + bd.constant_energy.as_micro_joules()
            + bd.unattributed_energy.as_micro_joules();
        assert!(
            (by_sink - by_activity).abs() < 1.0,
            "per-sink {by_sink} vs per-activity {by_activity}"
        );
        assert!((by_sink - bd.total_reconstructed.as_micro_joules()).abs() < 1.0);
    }
}
