//! Turning a raw Quanto log back into timelines.
//!
//! The log is a flat sequence of 12-byte entries.  The analysis needs two
//! views of it:
//!
//! * **Power intervals** — maximal spans during which the platform's set of
//!   active power states is constant, with the time and energy (iCount
//!   pulses) spent in each.  One interval is one equation of the regression.
//! * **Activity segments** — per tracked device, spans during which the
//!   device was working for one activity, with proxy-activity bindings
//!   optionally resolved onto the real activity they were bound to.
//!
//! Timestamps in the log are 32-bit microsecond counters that wrap (about
//! every 71.6 minutes); [`unwrap_times`] reconstructs monotonic 64-bit time.

use hw_model::{Catalog, SimDuration, SimTime, StateIndex};
use quanto_core::{ActivityLabel, DeviceId, EntryKind, LogEntry, Stamp};
use std::collections::BTreeMap;

/// A log entry together with its unwrapped 64-bit timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnwrappedEntry {
    /// Monotonic time reconstructed from the wrapping 32-bit log timestamp.
    pub time: SimTime,
    /// The original entry.
    pub entry: LogEntry,
}

/// Reconstructs monotonic timestamps from the wrapping 32-bit log times.
///
/// Entries must be in the order they were logged (which the logger
/// guarantees); each backwards jump in the 32-bit value is interpreted as one
/// wrap of the counter.  This is the batch wrapper over the incremental
/// [`crate::streaming::TimeUnwrapper`].
pub fn unwrap_times(entries: &[LogEntry]) -> Vec<UnwrappedEntry> {
    let mut unwrapper = crate::streaming::TimeUnwrapper::new();
    entries.iter().map(|e| unwrapper.unwrap_entry(e)).collect()
}

/// A span during which the set of active power states was constant.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerInterval {
    /// Interval start.
    pub start: SimTime,
    /// Interval end (exclusive).
    pub end: SimTime,
    /// iCount pulses accumulated during the interval.
    pub counts: u32,
    /// The per-sink state indices in effect during the interval.
    pub states: Vec<StateIndex>,
}

impl PowerInterval {
    /// Interval length.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }
}

/// Extracts power intervals from a log.
///
/// The platform is assumed to boot with every sink in its catalog default
/// state and with the iCount counter at zero.  If `final_stamp` is given it
/// closes the last interval (the simulator records one at the end of a run);
/// otherwise the span after the final power-state entry is dropped.
///
/// This is the batch wrapper over the incremental
/// [`crate::streaming::IntervalBuilder`], which accepts the log in chunks
/// and emits intervals eagerly; use the builder when the log is too large
/// (or too long-lived) to hold as one slice.
pub fn power_intervals(
    entries: &[LogEntry],
    catalog: &Catalog,
    final_stamp: Option<Stamp>,
) -> Vec<PowerInterval> {
    let mut builder = crate::streaming::IntervalBuilder::new(catalog);
    builder.push_chunk(entries);
    builder.finish(final_stamp)
}

/// A span during which one device worked on behalf of one activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivitySegment {
    /// Segment start.
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// The activity charged for this span.
    pub label: ActivityLabel,
    /// iCount pulses accumulated during the span.
    pub counts: u32,
}

impl ActivitySegment {
    /// Segment length.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }

    /// The portion of this segment overlapping `[start, end)`, as a duration.
    pub fn overlap(&self, start: SimTime, end: SimTime) -> SimDuration {
        let s = self.start.max(start);
        let e = self.end.min(end);
        e.saturating_duration_since(s)
    }
}

/// Extracts the activity timeline of one single-activity device.
///
/// When `resolve_bindings` is true, an `ActivityBind` entry re-labels the
/// immediately preceding run of segments that carried the bound-away (proxy)
/// activity, charging their usage to the real activity — the accounting the
/// paper prescribes for proxy activities.  When false, proxy activities are
/// left visible, which is what the timeline figures plot.
pub fn activity_segments(
    entries: &[LogEntry],
    device: DeviceId,
    resolve_bindings: bool,
    final_stamp: Option<Stamp>,
) -> Vec<ActivitySegment> {
    let mut builder = crate::streaming::SegmentBuilder::new(device, resolve_bindings);
    builder.push_chunk(entries);
    builder.finish(final_stamp)
}

/// A span during which a multi-activity device served a fixed set of
/// activities.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSegment {
    /// Segment start.
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
    /// The set of concurrent activities (may be empty).
    pub labels: Vec<ActivityLabel>,
}

impl MultiSegment {
    /// Segment length.
    pub fn duration(&self) -> SimDuration {
        self.end.duration_since(self.start)
    }

    /// The portion of this segment overlapping `[start, end)`.
    pub fn overlap(&self, start: SimTime, end: SimTime) -> SimDuration {
        let s = self.start.max(start);
        let e = self.end.min(end);
        e.saturating_duration_since(s)
    }
}

/// Extracts the activity-set timeline of one multi-activity device.
pub fn multi_segments(
    entries: &[LogEntry],
    device: DeviceId,
    final_stamp: Option<Stamp>,
) -> Vec<MultiSegment> {
    let mut builder = crate::streaming::MultiSegmentBuilder::new(device);
    builder.push_chunk(entries);
    builder.finish(final_stamp)
}

/// Returns, for each device id present in the log, whether it ever appears in
/// multi-activity entries.  Used to pick the right attribution strategy
/// without needing the original `DeviceTable`.
pub fn device_kinds(entries: &[LogEntry]) -> BTreeMap<DeviceId, bool> {
    let mut out = BTreeMap::new();
    for e in entries {
        if let Some(dev) = e.device() {
            let is_multi = matches!(e.kind, EntryKind::MultiAdd | EntryKind::MultiRemove);
            let slot = out.entry(dev).or_insert(false);
            *slot = *slot || is_multi;
        }
    }
    out
}

/// Sums the total time covered by a set of power intervals.
pub fn total_time(intervals: &[PowerInterval]) -> SimDuration {
    intervals.iter().map(|i| i.duration()).sum()
}

/// Sums the total iCount pulses over a set of power intervals.
pub fn total_counts(intervals: &[PowerInterval]) -> u64 {
    intervals.iter().map(|i| i.counts as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hw_model::catalog::{blink_catalog, led_state};
    use hw_model::SinkId;
    use quanto_core::{ActivityId, NodeId};

    fn ps(t_us: u64, ic: u32, sink: SinkId, v: u16) -> LogEntry {
        LogEntry::power_state(SimTime::from_micros(t_us), ic, sink, v)
    }

    fn act(t_us: u64, ic: u32, dev: DeviceId, label: ActivityLabel, bind: bool) -> LogEntry {
        LogEntry::activity(
            if bind {
                EntryKind::ActivityBind
            } else {
                EntryKind::ActivityChange
            },
            SimTime::from_micros(t_us),
            ic,
            dev,
            label,
        )
    }

    fn lbl(id: u8) -> ActivityLabel {
        ActivityLabel::new(NodeId(1), ActivityId(id))
    }

    #[test]
    fn unwrap_handles_counter_wrap() {
        let entries = vec![
            ps(u32::MAX as u64 - 10, 0, SinkId(0), 1),
            ps(5, 1, SinkId(0), 0), // wrapped
            ps(10, 2, SinkId(0), 1),
        ];
        let u = unwrap_times(&entries);
        assert_eq!(u[0].time.as_micros(), u32::MAX as u64 - 10);
        assert_eq!(u[1].time.as_micros(), (1u64 << 32) + 5);
        assert_eq!(u[2].time.as_micros(), (1u64 << 32) + 10);
        assert!(u[1].time > u[0].time);
    }

    #[test]
    fn power_intervals_follow_state_changes() {
        let (cat, _cpu, leds) = blink_catalog();
        let on = led_state::ON.as_u8() as u16;
        let off = led_state::OFF.as_u8() as u16;
        let entries = vec![
            ps(1_000, 2, leds[0], on),
            ps(3_000, 10, leds[0], off),
            ps(6_000, 12, leds[1], on),
        ];
        let final_stamp = Some(Stamp::new(SimTime::from_micros(10_000), 20));
        let ivs = power_intervals(&entries, &cat, final_stamp);
        assert_eq!(ivs.len(), 4);
        // Boot interval: everything baseline, 2 pulses.
        assert_eq!(ivs[0].start, SimTime::ZERO);
        assert_eq!(ivs[0].end, SimTime::from_micros(1_000));
        assert_eq!(ivs[0].counts, 2);
        // LED0 on between 1 ms and 3 ms, 8 pulses.
        assert_eq!(ivs[1].counts, 8);
        assert_eq!(ivs[1].states[leds[0].as_usize()], led_state::ON);
        // LED0 off again.
        assert_eq!(ivs[2].states[leds[0].as_usize()], led_state::OFF);
        // Final interval closed by the final stamp, with LED1 on.
        assert_eq!(ivs[3].end, SimTime::from_micros(10_000));
        assert_eq!(ivs[3].states[leds[1].as_usize()], led_state::ON);
        assert_eq!(total_time(&ivs).as_micros(), 10_000);
        assert_eq!(total_counts(&ivs), 20);
    }

    #[test]
    fn power_intervals_without_final_stamp_drop_tail() {
        let (cat, _cpu, leds) = blink_catalog();
        let entries = vec![ps(1_000, 1, leds[0], 1), ps(2_000, 2, leds[0], 0)];
        let ivs = power_intervals(&entries, &cat, None);
        assert_eq!(ivs.len(), 2);
        assert_eq!(ivs.last().unwrap().end, SimTime::from_micros(2_000));
    }

    #[test]
    fn activity_segments_split_on_changes() {
        let dev = DeviceId(0);
        let entries = vec![
            act(100, 1, dev, lbl(1), false),
            act(300, 5, dev, lbl(2), false),
            act(600, 9, dev, ActivityLabel::IDLE, false),
        ];
        let segs = activity_segments(
            &entries,
            dev,
            false,
            Some(Stamp::new(SimTime::from_micros(1_000), 12)),
        );
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].label, ActivityLabel::IDLE);
        assert_eq!(segs[0].duration().as_micros(), 100);
        assert_eq!(segs[1].label, lbl(1));
        assert_eq!(segs[1].duration().as_micros(), 200);
        assert_eq!(segs[1].counts, 4);
        assert_eq!(segs[2].label, lbl(2));
        assert_eq!(segs[3].label, ActivityLabel::IDLE);
        assert_eq!(segs[3].end, SimTime::from_micros(1_000));
    }

    #[test]
    fn bind_resolution_relabels_proxy_usage() {
        let dev = DeviceId(0);
        let proxy = lbl(200);
        let real = ActivityLabel::new(NodeId(4), ActivityId(1));
        let entries = vec![
            // Interrupt: proxy activity runs from 100 to 400.
            act(100, 0, dev, proxy, false),
            // The packet is decoded and the proxy is bound to the real
            // activity.
            act(400, 3, dev, real, true),
            act(900, 8, dev, ActivityLabel::IDLE, false),
        ];
        let resolved = activity_segments(
            &entries,
            dev,
            true,
            Some(Stamp::new(SimTime::from_micros(1_000), 9)),
        );
        // The proxy segment [100, 400) is charged to the real activity.
        assert_eq!(resolved[1].label, real);
        assert_eq!(resolved[1].start, SimTime::from_micros(100));
        assert_eq!(resolved[1].end, SimTime::from_micros(400));
        // Without resolution the proxy stays visible.
        let raw = activity_segments(&entries, dev, false, None);
        assert_eq!(raw[1].label, proxy);
    }

    #[test]
    fn segments_filter_by_device() {
        let entries = vec![
            act(100, 0, DeviceId(0), lbl(1), false),
            act(200, 0, DeviceId(1), lbl(2), false),
        ];
        let segs = activity_segments(
            &entries,
            DeviceId(1),
            false,
            Some(Stamp::new(SimTime::from_micros(300), 0)),
        );
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[1].label, lbl(2));
    }

    #[test]
    fn multi_segments_track_sets() {
        let dev = DeviceId(3);
        let mk = |t, kind, label: ActivityLabel| {
            LogEntry::activity(kind, SimTime::from_micros(t), 0, dev, label)
        };
        let entries = vec![
            mk(100, EntryKind::MultiAdd, lbl(1)),
            mk(200, EntryKind::MultiAdd, lbl(2)),
            mk(400, EntryKind::MultiRemove, lbl(1)),
        ];
        let segs = multi_segments(
            &entries,
            dev,
            Some(Stamp::new(SimTime::from_micros(500), 0)),
        );
        assert_eq!(segs.len(), 4);
        assert!(segs[0].labels.is_empty());
        assert_eq!(segs[1].labels, vec![lbl(1)]);
        assert_eq!(segs[2].labels, vec![lbl(1), lbl(2)]);
        assert_eq!(segs[3].labels, vec![lbl(2)]);
        assert_eq!(segs[2].duration().as_micros(), 200);
    }

    #[test]
    fn device_kinds_detects_multi_devices() {
        let entries = vec![
            act(1, 0, DeviceId(0), lbl(1), false),
            LogEntry::activity(
                EntryKind::MultiAdd,
                SimTime::from_micros(2),
                0,
                DeviceId(1),
                lbl(2),
            ),
        ];
        let kinds = device_kinds(&entries);
        assert_eq!(kinds.get(&DeviceId(0)), Some(&false));
        assert_eq!(kinds.get(&DeviceId(1)), Some(&true));
    }

    #[test]
    fn overlap_math() {
        let seg = ActivitySegment {
            start: SimTime::from_micros(100),
            end: SimTime::from_micros(200),
            label: lbl(1),
            counts: 0,
        };
        assert_eq!(
            seg.overlap(SimTime::from_micros(150), SimTime::from_micros(300))
                .as_micros(),
            50
        );
        assert_eq!(
            seg.overlap(SimTime::from_micros(0), SimTime::from_micros(1_000))
                .as_micros(),
            100
        );
        assert_eq!(
            seg.overlap(SimTime::from_micros(300), SimTime::from_micros(400))
                .as_micros(),
            0
        );
    }
}
