//! Minimal dense matrix algebra for the regression.
//!
//! The paper solves `Π = (XᵀWX)⁻¹XᵀWY` with GNU Octave; here we implement the
//! few operations that estimator needs — transpose, multiplication, and a
//! linear solve via Gaussian elimination with partial pivoting — from
//! scratch, with no third-party dependencies.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Errors produced by matrix operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MatrixError {
    /// Operand shapes are incompatible.
    ShapeMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// The system is singular (or numerically close to singular) and cannot
    /// be solved.  For the regression this happens when power states are
    /// linearly dependent — e.g. two sinks that always switch together.
    Singular {
        /// The pivot column where elimination failed.
        column: usize,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MatrixError::Singular { column } => {
                write!(f, "matrix is singular at pivot column {column}")
            }
        }
    }
}

impl std::error::Error for MatrixError {}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows are empty or have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix needs at least one column");
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have the same length"
        );
        Matrix {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Creates a column vector from a slice.
    pub fn column(values: &[f64]) -> Self {
        Matrix::from_rows(&values.iter().map(|v| vec![*v]).collect::<Vec<_>>())
    }

    /// Creates a diagonal matrix from a slice.
    pub fn diagonal(values: &[f64]) -> Self {
        let mut m = Matrix::zeros(values.len(), values.len());
        for (i, v) in values.iter().enumerate() {
            m[(i, i)] = *v;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix multiplication `self × rhs`.
    pub fn mul(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.cols != rhs.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "mul",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        Ok(out)
    }

    /// Solves `self · x = b` for `x` using Gaussian elimination with partial
    /// pivoting.  `b` may have multiple columns.
    pub fn solve(&self, b: &Matrix) -> Result<Matrix, MatrixError> {
        if self.rows != self.cols {
            return Err(MatrixError::ShapeMismatch {
                op: "solve (square required)",
                left: (self.rows, self.cols),
                right: (b.rows, b.cols),
            });
        }
        if b.rows != self.rows {
            return Err(MatrixError::ShapeMismatch {
                op: "solve",
                left: (self.rows, self.cols),
                right: (b.rows, b.cols),
            });
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.clone();

        for col in 0..n {
            // Partial pivoting: pick the largest remaining entry in `col`.
            let mut pivot_row = col;
            let mut pivot_val = a[(col, col)].abs();
            for r in (col + 1)..n {
                if a[(r, col)].abs() > pivot_val {
                    pivot_val = a[(r, col)].abs();
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-12 {
                return Err(MatrixError::Singular { column: col });
            }
            if pivot_row != col {
                a.swap_rows(col, pivot_row);
                x.swap_rows(col, pivot_row);
            }
            // Eliminate below.
            for r in (col + 1)..n {
                let factor = a[(r, col)] / a[(col, col)];
                if factor == 0.0 {
                    continue;
                }
                for c in col..n {
                    let v = a[(col, c)];
                    a[(r, c)] -= factor * v;
                }
                for c in 0..x.cols {
                    let v = x[(col, c)];
                    x[(r, c)] -= factor * v;
                }
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            for c in 0..x.cols {
                let mut sum = x[(col, c)];
                for k in (col + 1)..n {
                    sum -= a[(col, k)] * x[(k, c)];
                }
                x[(col, c)] = sum / a[(col, col)];
            }
        }
        Ok(x)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, rhs: &Matrix) -> Result<Matrix, MatrixError> {
        if self.rows != rhs.rows || self.cols != rhs.cols {
            return Err(MatrixError::ShapeMismatch {
                op: "sub",
                left: (self.rows, self.cols),
                right: (rhs.rows, rhs.cols),
            });
        }
        let mut out = self.clone();
        for (o, r) in out.data.iter_mut().zip(rhs.data.iter()) {
            *o -= r;
        }
        Ok(out)
    }

    /// The Euclidean (Frobenius) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Flattens a single-column matrix into a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has more than one column.
    pub fn into_column_vec(self) -> Vec<f64> {
        assert_eq!(self.cols, 1, "into_column_vec requires a column vector");
        self.data
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of range"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>10.4} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Solves the weighted least-squares problem `Π = (XᵀWX)⁻¹ XᵀWY`, where `W`
/// is diagonal with entries `weights`.
///
/// Returns the coefficient vector, one entry per column of `X`.
pub fn weighted_least_squares(
    x: &Matrix,
    y: &[f64],
    weights: &[f64],
) -> Result<Vec<f64>, MatrixError> {
    if y.len() != x.rows() || weights.len() != x.rows() {
        return Err(MatrixError::ShapeMismatch {
            op: "weighted_least_squares",
            left: (x.rows(), x.cols()),
            right: (y.len(), weights.len()),
        });
    }
    let w = Matrix::diagonal(weights);
    let xt = x.transpose();
    let xtw = xt.mul(&w)?;
    let xtwx = xtw.mul(x)?;
    let y_col = Matrix::column(y);
    let xtwy = xtw.mul(&y_col)?;
    Ok(xtwx.solve(&xtwy)?.into_column_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve_returns_rhs() {
        let i = Matrix::identity(3);
        let b = Matrix::column(&[1.0, 2.0, 3.0]);
        let x = i.solve(&b).unwrap();
        assert_eq!(x.into_column_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_small_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let b = Matrix::column(&[5.0, 10.0]);
        let x = a.solve(&b).unwrap().into_column_vec();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Matrix::column(&[7.0, 9.0]);
        let x = a.solve(&b).unwrap().into_column_vec();
        assert!((x[0] - 9.0).abs() < 1e-12);
        assert!((x[1] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        let b = Matrix::column(&[1.0, 2.0]);
        assert!(matches!(a.solve(&b), Err(MatrixError::Singular { .. })));
    }

    #[test]
    fn multiply_and_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.cols(), 2);
        let prod = a.mul(&at).unwrap();
        assert_eq!(prod[(0, 0)], 14.0);
        assert_eq!(prod[(0, 1)], 32.0);
        assert_eq!(prod[(1, 1)], 77.0);
        assert!(a.mul(&a).is_err());
    }

    #[test]
    fn norm_and_sub() {
        let a = Matrix::column(&[3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        let b = Matrix::column(&[1.0, 1.0]);
        let d = a.sub(&b).unwrap();
        assert_eq!(d.into_column_vec(), vec![2.0, 3.0]);
        assert!(a.sub(&Matrix::identity(3)).is_err());
    }

    #[test]
    fn ols_recovers_exact_coefficients() {
        // y = 2*a + 3*b with binary design rows.
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 0.0],
        ]);
        let y = vec![2.0, 3.0, 5.0, 2.0];
        let w = vec![1.0; 4];
        let pi = weighted_least_squares(&x, &y, &w).unwrap();
        assert!((pi[0] - 2.0).abs() < 1e-10);
        assert!((pi[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn weights_tilt_the_fit_toward_heavy_observations() {
        // Two inconsistent observations of a single coefficient.
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        let y = vec![1.0, 3.0];
        let equal = weighted_least_squares(&x, &y, &[1.0, 1.0]).unwrap();
        assert!((equal[0] - 2.0).abs() < 1e-12);
        let tilted = weighted_least_squares(&x, &y, &[1.0, 9.0]).unwrap();
        assert!((tilted[0] - 2.8).abs() < 1e-12);
    }

    #[test]
    fn wls_shape_errors() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0]]);
        assert!(weighted_least_squares(&x, &[1.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn display_renders_rows() {
        let m = Matrix::identity(2);
        let s = format!("{m}");
        assert_eq!(s.lines().count(), 2);
    }
}
