//! Reconstructing the power envelope from power states and the regression.
//!
//! Figure 11(c) of the paper overlays a stacked, per-component power trace —
//! rebuilt purely from the power-state timeline and the regression results —
//! on top of the oscilloscope-measured power, and reports a relative error of
//! 0.004 % between the energy measured by Quanto and the energy implied by
//! the reconstruction.

use crate::intervals::PowerInterval;
use crate::wls::RegressionResult;
use hw_model::{Catalog, Energy, Power, SimTime, SinkId};

/// One step of the reconstructed, stacked power trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StackedStep {
    /// Step start time.
    pub start: SimTime,
    /// Step end time.
    pub end: SimTime,
    /// Per-sink power contributions during this step (only sinks with a
    /// non-zero estimated contribution appear).
    pub per_sink: Vec<(SinkId, Power)>,
    /// The constant (quiescent) contribution.
    pub constant: Power,
    /// Total reconstructed power (sum of components plus constant).
    pub total: Power,
    /// The power actually measured by the meter over this step
    /// (pulses × energy-per-pulse / duration).
    pub measured: Power,
}

/// Rebuilds the stacked power trace for a sequence of power intervals.
pub fn reconstruct_power(
    intervals: &[PowerInterval],
    catalog: &Catalog,
    regression: &RegressionResult,
    energy_per_count: Energy,
) -> Vec<StackedStep> {
    intervals
        .iter()
        .map(|iv| {
            let mut per_sink = Vec::new();
            let mut total = regression.constant_power();
            for (i, state) in iv.states.iter().enumerate() {
                let sink = SinkId(i as u16);
                if let Some(p) = regression.state_power(catalog, sink, *state) {
                    if p.as_micro_watts() != 0.0 {
                        per_sink.push((sink, p));
                        total += p;
                    }
                }
            }
            let dur = iv.duration();
            let measured = if dur.is_zero() {
                Power::ZERO
            } else {
                (energy_per_count * iv.counts as f64) / dur
            };
            StackedStep {
                start: iv.start,
                end: iv.end,
                per_sink,
                constant: regression.constant_power(),
                total,
                measured,
            }
        })
        .collect()
}

/// The relative error between total metered energy and total reconstructed
/// energy, over a whole run (the 0.004 % number of Section 4.2.1).
pub fn reconstruction_energy_error(
    intervals: &[PowerInterval],
    catalog: &Catalog,
    regression: &RegressionResult,
    energy_per_count: Energy,
) -> f64 {
    let steps = reconstruct_power(intervals, catalog, regression, energy_per_count);
    let mut measured = 0.0;
    let mut reconstructed = 0.0;
    for s in &steps {
        let dur = s.end.duration_since(s.start);
        measured += (s.measured * dur).as_micro_joules();
        reconstructed += (s.total * dur).as_micro_joules();
    }
    if measured == 0.0 {
        0.0
    } else {
        (reconstructed - measured).abs() / measured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wls::{regress_intervals, RegressionOptions};
    use hw_model::catalog::{blink_catalog, led_state};
    use hw_model::{PowerModel, SimDuration, StateVector};
    use std::sync::Arc;

    fn intervals_and_regression() -> (Vec<PowerInterval>, Arc<Catalog>, RegressionResult) {
        let (cat, _cpu, leds) = blink_catalog();
        let cat = Arc::new(cat);
        let model = PowerModel::ideal(cat.clone());
        let mut intervals = Vec::new();
        let mut cumulative = 0.0f64;
        let mut prev = 0u64;
        let mut t = SimTime::ZERO;
        let dur = SimDuration::from_secs(1);
        for mask in 0..8u8 {
            let mut sv = StateVector::baseline(&cat);
            for (i, led) in leds.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    sv.set_state(*led, led_state::ON);
                }
            }
            cumulative += model.energy_over(&sv, dur).as_micro_joules();
            let counts = cumulative.floor() as u64;
            intervals.push(PowerInterval {
                start: t,
                end: t + dur,
                counts: (counts - prev) as u32,
                states: (0..cat.sink_count())
                    .map(|i| sv.state(SinkId(i as u16)))
                    .collect(),
            });
            prev = counts;
            t += dur;
        }
        let reg = regress_intervals(
            &intervals,
            &cat,
            Energy::from_micro_joules(1.0),
            RegressionOptions::default(),
        )
        .unwrap();
        (intervals, cat, reg)
    }

    #[test]
    fn reconstruction_tracks_measured_power() {
        let (intervals, cat, reg) = intervals_and_regression();
        let steps = reconstruct_power(&intervals, &cat, &reg, Energy::from_micro_joules(1.0));
        assert_eq!(steps.len(), intervals.len());
        for s in &steps {
            // Each step's reconstruction should be within a few percent of
            // the measured power (quantization is the only error source).
            let m = s.measured.as_micro_watts();
            let r = s.total.as_micro_watts();
            if m > 100.0 {
                assert!(
                    (m - r).abs() / m < 0.05,
                    "measured {m} vs reconstructed {r}"
                );
            }
            // Total is the sum of parts.
            let parts: f64 = s
                .per_sink
                .iter()
                .map(|(_, p)| p.as_micro_watts())
                .sum::<f64>()
                + s.constant.as_micro_watts();
            assert!((parts - r).abs() < 1e-6);
        }
        // The all-off step has no per-sink contributions.
        assert!(steps[0].per_sink.is_empty());
        // The all-on step has three.
        assert_eq!(steps[7].per_sink.len(), 3);
    }

    #[test]
    fn whole_run_energy_error_is_tiny() {
        let (intervals, cat, reg) = intervals_and_regression();
        let err =
            reconstruction_energy_error(&intervals, &cat, &reg, Energy::from_micro_joules(1.0));
        assert!(err < 0.01, "reconstruction error {err}");
    }
}
