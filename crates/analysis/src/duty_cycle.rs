//! Duty cycles, average power and cumulative energy series.
//!
//! The low-power-listening case study (Figures 13 and 14) reports the radio
//! duty cycle, the node's average power draw and the cumulative energy over
//! time under 802.11 interference.  These are simple functionals of the power
//! intervals extracted from the log.

use crate::intervals::PowerInterval;
use hw_model::{Energy, Power, SimDuration, SimTime, SinkId, StateIndex};

/// Fraction of total time that `sink` spent in a state satisfying `pred`.
///
/// Returns zero when the intervals cover no time.
pub fn state_duty_cycle<F>(intervals: &[PowerInterval], sink: SinkId, pred: F) -> f64
where
    F: Fn(StateIndex) -> bool,
{
    let mut active = 0u64;
    let mut total = 0u64;
    for iv in intervals {
        let d = iv.duration().as_micros();
        total += d;
        if iv
            .states
            .get(sink.as_usize())
            .map(|s| pred(*s))
            .unwrap_or(false)
        {
            active += d;
        }
    }
    if total == 0 {
        0.0
    } else {
        active as f64 / total as f64
    }
}

/// Counts how many distinct episodes the sink spent in a matching state
/// (consecutive matching intervals count as one episode).  Used to count LPL
/// wake-ups.
pub fn state_episodes<F>(intervals: &[PowerInterval], sink: SinkId, pred: F) -> usize
where
    F: Fn(StateIndex) -> bool,
{
    let mut episodes = 0;
    let mut in_episode = false;
    for iv in intervals {
        let matching = iv
            .states
            .get(sink.as_usize())
            .map(|s| pred(*s))
            .unwrap_or(false);
        if matching && !in_episode {
            episodes += 1;
        }
        in_episode = matching;
    }
    episodes
}

/// Durations of each episode the sink spent in a matching state.
pub fn episode_durations<F>(intervals: &[PowerInterval], sink: SinkId, pred: F) -> Vec<SimDuration>
where
    F: Fn(StateIndex) -> bool,
{
    let mut out = Vec::new();
    let mut current: Option<SimDuration> = None;
    for iv in intervals {
        let matching = iv
            .states
            .get(sink.as_usize())
            .map(|s| pred(*s))
            .unwrap_or(false);
        if matching {
            let d = iv.duration();
            current = Some(current.unwrap_or(SimDuration::ZERO) + d);
        } else if let Some(d) = current.take() {
            out.push(d);
        }
    }
    if let Some(d) = current {
        out.push(d);
    }
    out
}

/// Average power over the whole set of intervals, from metered pulses.
pub fn average_power(intervals: &[PowerInterval], energy_per_count: Energy) -> Power {
    let total_counts: u64 = intervals.iter().map(|i| i.counts as u64).sum();
    let total_time: SimDuration = intervals.iter().map(|i| i.duration()).sum();
    if total_time.is_zero() {
        Power::ZERO
    } else {
        (energy_per_count * total_counts as f64) / total_time
    }
}

/// A cumulative-energy-over-time series (the curves of Figure 13).
///
/// Returns `(time, cumulative energy)` points sampled at each interval
/// boundary.
pub fn cumulative_energy_series(
    intervals: &[PowerInterval],
    energy_per_count: Energy,
) -> Vec<(SimTime, Energy)> {
    let mut out = Vec::with_capacity(intervals.len() + 1);
    let mut cumulative = Energy::ZERO;
    if let Some(first) = intervals.first() {
        out.push((first.start, Energy::ZERO));
    }
    for iv in intervals {
        cumulative += energy_per_count * iv.counts as f64;
        out.push((iv.end, cumulative));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start_ms: u64, end_ms: u64, counts: u32, radio_on: bool) -> PowerInterval {
        PowerInterval {
            start: SimTime::from_millis(start_ms),
            end: SimTime::from_millis(end_ms),
            counts,
            // sink 0 = cpu (always state 0 here), sink 1 = radio rx.
            states: vec![StateIndex(0), StateIndex(if radio_on { 1 } else { 0 })],
        }
    }

    const RADIO: SinkId = SinkId(1);

    #[test]
    fn duty_cycle_counts_matching_time() {
        let ivs = vec![
            iv(0, 100, 1, false),
            iv(100, 110, 5, true),
            iv(110, 200, 1, false),
            iv(200, 212, 6, true),
            iv(212, 400, 2, false),
        ];
        let dc = state_duty_cycle(&ivs, RADIO, |s| s == StateIndex(1));
        assert!((dc - 22.0 / 400.0).abs() < 1e-12, "duty cycle {dc}");
        assert_eq!(state_episodes(&ivs, RADIO, |s| s == StateIndex(1)), 2);
        let eps = episode_durations(&ivs, RADIO, |s| s == StateIndex(1));
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].as_micros(), 10_000);
        assert_eq!(eps[1].as_micros(), 12_000);
    }

    #[test]
    fn consecutive_on_intervals_form_one_episode() {
        let ivs = vec![
            iv(0, 10, 1, true),
            iv(10, 20, 1, true),
            iv(20, 30, 0, false),
        ];
        assert_eq!(state_episodes(&ivs, RADIO, |s| s == StateIndex(1)), 1);
        let eps = episode_durations(&ivs, RADIO, |s| s == StateIndex(1));
        assert_eq!(eps, vec![SimDuration::from_millis(20)]);
    }

    #[test]
    fn trailing_episode_is_closed() {
        let ivs = vec![iv(0, 10, 1, false), iv(10, 30, 4, true)];
        let eps = episode_durations(&ivs, RADIO, |s| s == StateIndex(1));
        assert_eq!(eps, vec![SimDuration::from_millis(20)]);
    }

    #[test]
    fn average_power_from_counts() {
        // 100 pulses of 8.33 uJ over 2 s = 416.5 uW.
        let ivs = vec![iv(0, 1000, 40, false), iv(1000, 2000, 60, true)];
        let p = average_power(&ivs, Energy::from_micro_joules(8.33)).as_micro_watts();
        assert!((p - 416.5).abs() < 1e-9, "power {p}");
        assert_eq!(
            average_power(&[], Energy::from_micro_joules(1.0)),
            Power::ZERO
        );
    }

    #[test]
    fn cumulative_series_is_monotone() {
        let ivs = vec![
            iv(0, 1000, 10, false),
            iv(1000, 2000, 30, true),
            iv(2000, 3000, 5, false),
        ];
        let series = cumulative_energy_series(&ivs, Energy::from_micro_joules(1.0));
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].1, Energy::ZERO);
        assert!((series[3].1.as_micro_joules() - 45.0).abs() < 1e-9);
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
            assert!(w[1].0 >= w[0].0);
        }
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(state_duty_cycle(&[], RADIO, |_| true), 0.0);
        assert_eq!(state_episodes(&[], RADIO, |_| true), 0);
        assert!(cumulative_energy_series(&[], Energy::from_micro_joules(1.0)).is_empty());
    }
}
