//! Plain-text table rendering for the reproduction harnesses.
//!
//! The benchmark binaries print the same rows the paper's tables report; this
//! module provides the small fixed-width table builder they share, so that
//! output stays consistent and diffable across experiments.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Left-aligned (labels).
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: Option<String>,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers; all columns default to
    /// right alignment except the first, which is left-aligned.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = headers
            .iter()
            .enumerate()
            .map(|(i, _)| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        TextTable {
            title: None,
            headers,
            aligns,
            rows: Vec::new(),
        }
    }

    /// Sets a title printed above the table.
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Overrides the column alignments.
    ///
    /// # Panics
    ///
    /// Panics if the number of alignments differs from the number of columns.
    pub fn with_aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "one alignment per column");
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has a different number of cells than there are
    /// columns.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "one cell per column");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns true if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if let Some(title) = &self.title {
            let _ = writeln!(out, "== {title} ==");
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        line.push_str(&" ".repeat(widths[i] - cell.len()));
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(widths[i] - cell.len()));
                        line.push_str(cell);
                    }
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths, &self.aligns));
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total_width));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals, e.g. `"5.58 %"`.
pub fn pct(fraction: f64) -> String {
    format!("{:.2} %", fraction * 100.0)
}

/// Formats a value in engineering style with a unit, e.g. `si(0.00123, "A")`
/// gives `"1.230 mA"`.
pub fn si(value: f64, unit: &str) -> String {
    let (scaled, prefix) = if value == 0.0 {
        (0.0, "")
    } else {
        let abs = value.abs();
        if abs >= 1.0 {
            (value, "")
        } else if abs >= 1e-3 {
            (value * 1e3, "m")
        } else if abs >= 1e-6 {
            (value * 1e6, "u")
        } else {
            (value * 1e9, "n")
        }
    };
    format!("{scaled:.3} {prefix}{unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Sink", "I (mA)"]).with_title("Table");
        t.row(vec!["LED0", "2.50"]);
        t.row(vec!["LED1 (green)", "2.23"]);
        let s = t.render();
        assert!(s.contains("== Table =="));
        let lines: Vec<&str> = s.lines().collect();
        // Title, header, rule, two rows.
        assert_eq!(lines.len(), 5);
        // Numbers are right-aligned under the header.
        assert!(lines[3].ends_with("2.50"));
        assert!(lines[4].ends_with("2.23"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "one cell per column")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn custom_alignment() {
        let mut t = TextTable::new(vec!["x", "y"]).with_aligns(vec![Align::Right, Align::Left]);
        t.row(vec!["1", "hello"]);
        let s = t.render();
        assert!(s.contains("hello"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0558), "5.58 %");
        assert_eq!(si(0.00123, "A"), "1.230 mA");
        assert_eq!(si(1.5, "W"), "1.500 W");
        assert_eq!(si(0.0, "J"), "0.000 J");
        assert_eq!(si(2.5e-7, "A"), "250.000 nA");
    }
}
