//! Offline analysis of Quanto logs.
//!
//! The paper processes its logs post-facto: a set of tools parses the
//! 12-byte entries, GNU Octave performs the regression, and the combination
//! of power states, regression coefficients and activity timelines yields the
//! complete "where have all the joules gone" breakdown.  This crate is that
//! toolchain:
//!
//! * [`matrix`] — the small dense linear algebra the estimator needs,
//! * [`intervals`] — log parsing: power intervals, activity segments,
//!   proxy-binding resolution, timestamp unwrapping,
//! * [`streaming`] — the incremental (chunk-wise) builders behind
//!   [`intervals`], for consumers that cannot hold whole logs,
//! * [`wls`] — the weighted multivariate least-squares regression of
//!   Section 2.5,
//! * [`mod@breakdown`] — time per (device, activity), energy per hardware
//!   component and energy per activity (Tables 3a–3d),
//! * [`reconstruct`] — the stacked power-envelope reconstruction of
//!   Figure 11(c),
//! * [`duty_cycle`] — duty cycles, wake-up episodes, average power and
//!   cumulative-energy series (Figures 13 and 14), and
//! * [`report`] — fixed-width text tables shared by the reproduction
//!   harnesses.

pub mod breakdown;
pub mod duty_cycle;
pub mod intervals;
pub mod matrix;
pub mod reconstruct;
pub mod report;
pub mod streaming;
pub mod wls;

pub use breakdown::{breakdown, Breakdown, BreakdownConfig};
pub use duty_cycle::{
    average_power, cumulative_energy_series, episode_durations, state_duty_cycle, state_episodes,
};
pub use intervals::{
    activity_segments, multi_segments, power_intervals, unwrap_times, ActivitySegment,
    MultiSegment, PowerInterval, UnwrappedEntry,
};
pub use matrix::{weighted_least_squares, Matrix, MatrixError};
pub use reconstruct::{reconstruct_power, reconstruction_energy_error, StackedStep};
pub use report::{pct, si, Align, TextTable};
pub use streaming::{IntervalBuilder, MultiSegmentBuilder, SegmentBuilder, TimeUnwrapper};
pub use wls::{
    pool_intervals, regress, regress_intervals, Observation, ObservationPool, RegressionError,
    RegressionOptions, RegressionResult,
};
