//! `fleet_sweep`: the parallel scenario-grid harness.
//!
//! Runs a seed × channel × medium grid (LPL cells, a Blink profile, and the
//! Bounce exchange through every radio-medium kind) through `quanto-fleet`'s
//! `FleetRunner`, sharded across worker threads.  Progress streams over a
//! channel as scenarios merge — partial results print mid-sweep — and the
//! merged per-scenario summary table (or, with `--json`, a machine-readable
//! JSON document) prints at the end.
//!
//! ```text
//! fleet_sweep [--seconds N] [--threads N] [--seeds N] [--json] [--smoke]
//!             [--stress [PAIRS]]
//! ```
//!
//! `--stress` runs the multi-node path-loss stress profile instead: PAIRS
//! (default 8) side-by-side Bounce exchanges spaced along a line under the
//! log-distance model, where neighboring pairs are hidden terminals and the
//! capture rule decides collisions.
//!
//! `--smoke` is the CI job: it runs the grid — which includes one scenario
//! per medium kind (ideal, unit_disk, path_loss, mobility), so a
//! nondeterministic loss RNG in any medium fails the gate — twice on 1
//! thread and twice on 4, verifies all four reports are byte-identical (the
//! determinism contract of the fleet subsystem), prints the best wall-clock
//! per thread count as bench-compatible summary lines for `bench_check`, on
//! hosts with more than one CPU fails unless the 4-thread run shows at least
//! the required speedup (default 1.5×, `--min-speedup X` to override), and
//! finally runs a 64-scenario batch through the summarize-and-drop path
//! asserting the peak number of raw log entries held at once stays under a
//! fixed fraction of the batch — the gate that catches accidental
//! re-buffering regressions in the streaming pipeline.
//!
//! Note on the baseline: the `fleet/sweep_smoke_t4` wall-clock depends on
//! the recording host's core count, which the single-core `calibration/spin`
//! normalization cannot correct for — on hosts with more parallelism than
//! the recorder it can only under-trigger, and the real parallelism gate is
//! the speedup check here, not the baseline entry.

use hw_model::SimDuration;
use quanto_bench::baseline::bench_line;
use quanto_fleet::{scenarios, FleetProgress, FleetRunner, Scenario};
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::Duration;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The sweep grid: `seeds` × channels {17, 26} LPL scenarios under the
/// paper's 18 % interference, plus a Blink profile and the medium axis (the
/// Bounce exchange through each of the four radio-medium kinds).
fn grid(seeds: u64, duration: SimDuration) -> Vec<Scenario> {
    let seeds: Vec<u64> = (1..=seeds).collect();
    let mut grid = scenarios::lpl_grid(&seeds, &[17, 26], 0.18, duration);
    grid.push(Scenario::blink(duration));
    grid.extend(scenarios::medium_grid(duration));
    grid
}

/// The smoke grid: sized so every cell costs a comparable few tens of host
/// milliseconds (LPL and Blink are cheap per simulated second, Bounce is
/// not), which is what makes the 1-vs-4-thread wall-clock comparison a fair
/// parallelism measurement rather than a longest-scenario measurement.  One
/// scenario per medium kind rides along so the byte-identity check also
/// gates every medium's loss RNG for thread-count independence.
fn smoke_grid() -> Vec<Scenario> {
    let seeds: Vec<u64> = (1..=8).collect();
    let half_hour = SimDuration::from_secs(1800);
    let mut grid = scenarios::lpl_grid(&seeds, &[17, 26], 0.18, half_hour);
    grid.push(Scenario::blink(SimDuration::from_secs(900)));
    grid.push(
        Scenario::bounce(SimDuration::from_secs(30))
            .with_seed(1)
            .named("bounce_seed1"),
    );
    grid.push(
        Scenario::bounce(SimDuration::from_secs(30))
            .with_seed(2)
            .named("bounce_seed2"),
    );
    grid.extend(scenarios::medium_grid(SimDuration::from_secs(30)));
    grid
}

fn run_timed(threads: usize, batch: Vec<Scenario>) -> (u64, Duration, String) {
    let report = FleetRunner::new(threads).run(batch);
    (report.digest(), report.wall_clock, report.summary_table())
}

/// The streaming-retention gate: a 64-scenario batch through the default
/// summarize-and-drop path must never hold more than a quarter of its raw
/// entries at once (≈ 16 scenarios' worth — generous next to the real
/// out-of-order window of ~4, but far below the 64 a re-buffering
/// regression would retain).
fn smoke_retention_gate() -> Result<(), String> {
    let seeds: Vec<u64> = (1..=32).collect();
    let batch = scenarios::lpl_grid(&seeds, &[17, 26], 0.18, SimDuration::from_secs(60));
    assert_eq!(batch.len(), 64);
    let report = FleetRunner::new(4).run(batch);
    let total = report.total_log_entries();
    let peak = report.peak_entries_held();
    println!(
        "Retention: 64-scenario batch produced {total} raw entries, peak held {peak} \
         ({:.1} %)",
        100.0 * peak as f64 / total.max(1) as f64
    );
    if report.results.iter().any(|r| r.has_raw()) {
        return Err("raw NodeRunOutput retained after merge without retain_raw()".into());
    }
    if total == 0 {
        return Err("retention gate batch produced no log entries".into());
    }
    let bound = total / 4;
    if peak > bound {
        return Err(format!(
            "peak retained entries {peak} exceeds the fixed bound {bound} \
             (total {total}) — is something re-buffering the sweep?"
        ));
    }
    Ok(())
}

fn smoke(min_speedup: f64) -> ExitCode {
    let batch = smoke_grid();
    println!("Smoke grid: {} scenarios", batch.len());
    // Each configuration runs twice and the better wall-clock counts: a
    // single end-to-end sample is too noisy for the checked-in baseline,
    // and the repeat doubles as a same-thread-count reproducibility check.
    let (digest1, wall1a, table) = run_timed(1, batch.clone());
    let (digest1b, wall1b, _) = run_timed(1, batch.clone());
    let (digest4, wall4a, _) = run_timed(4, batch.clone());
    let (digest4b, wall4b, _) = run_timed(4, batch);
    let wall1 = wall1a.min(wall1b);
    let wall4 = wall4a.min(wall4b);
    println!("{table}");
    println!(
        "{}",
        bench_line("fleet/sweep_smoke_t1", wall1.as_nanos() as f64)
    );
    println!(
        "{}",
        bench_line("fleet/sweep_smoke_t4", wall4.as_nanos() as f64)
    );

    if digest1 != digest1b || digest4 != digest4b || digest1 != digest4 {
        eprintln!(
            "fleet_sweep: DETERMINISM FAILURE — digests t1 {digest1:#018x}/{digest1b:#018x}, t4 {digest4:#018x}/{digest4b:#018x}"
        );
        return ExitCode::FAILURE;
    }
    println!("Determinism: 1-thread and 4-thread reports are byte-identical ({digest1:#018x})");

    let speedup = wall1.as_secs_f64() / wall4.as_secs_f64().max(1e-9);
    println!(
        "Wall clock: {wall1:.1?} on 1 thread, {wall4:.1?} on 4 threads — {speedup:.2}x speedup"
    );
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 {
        println!("(single-CPU host: speedup threshold not enforced, determinism was)");
    } else if speedup < min_speedup {
        eprintln!(
            "fleet_sweep: SPEEDUP FAILURE — {speedup:.2}x < required {min_speedup:.2}x on a {cores}-CPU host"
        );
        return ExitCode::FAILURE;
    }

    if let Err(why) = smoke_retention_gate() {
        eprintln!("fleet_sweep: RETENTION FAILURE — {why}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The `--stress` profile: `pairs` Bounce exchanges strung along a line
/// under the path-loss medium, across 4 seeds so shadowing and hidden
/// terminals vary — the heap scheduler and capture rule under real load.
fn stress_batch(pairs: u8, duration: SimDuration) -> Vec<Scenario> {
    (1..=4)
        .map(|seed| scenarios::path_loss_stress(pairs, seed, duration))
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let duration = quanto_bench::duration_from_args(14);
    let min_speedup: f64 = arg_value(&args, "--min-speedup")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let json = args.iter().any(|a| a == "--json");

    if args.iter().any(|a| a == "--smoke") {
        quanto_bench::header(
            "fleet_sweep --smoke",
            "determinism (all 4 medium kinds) + speedup + retention gate",
        );
        return smoke(min_speedup);
    }

    let seeds: u64 = arg_value(&args, "--seeds")
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let threads: usize = arg_value(&args, "--threads")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| FleetRunner::host_parallel().threads());
    let stress = args.iter().any(|a| a == "--stress");

    if !json {
        quanto_bench::header(
            "Fleet sweep — seed × channel × medium grid over the shared engine",
            "ROADMAP: parallel multi-node runs, mobility/path-loss sweep axes",
        );
    }
    let batch = if stress {
        // `--stress` may be followed by a pair count (another flag or
        // nothing means the default); a value that is not a valid count is
        // an error, not a silent fallback.
        let pairs: u8 = match arg_value(&args, "--stress") {
            Some(v) if v.starts_with("--") => 8,
            None => 8,
            Some(v) => match v.parse() {
                Ok(p) if (1..=127).contains(&p) => p,
                _ => {
                    eprintln!("fleet_sweep: --stress PAIRS must be in 1..=127, got {v:?}");
                    return ExitCode::FAILURE;
                }
            },
        };
        let batch = stress_batch(pairs, duration);
        if !json {
            println!(
                "Path-loss stress: {} scenarios × {} nodes each, {} worker thread(s), \
                 {:.0} s simulated",
                batch.len(),
                2 * pairs as u16,
                threads,
                duration.as_secs_f64()
            );
        }
        batch
    } else {
        let batch = grid(seeds, duration);
        if !json {
            println!(
                "{} scenarios ({} LPL + blink + 4 mediums), {} worker thread(s), \
                 {:.0} s simulated each",
                batch.len(),
                batch.len() - 5,
                threads,
                duration.as_secs_f64()
            );
        }
        batch
    };

    // Partial results stream over a channel while the sweep runs; a printer
    // thread drains it so progress appears as scenarios merge, not at the
    // end.
    let (tx, rx) = mpsc::channel::<FleetProgress>();
    let printer = std::thread::spawn(move || {
        for p in rx {
            if json {
                println!("{}", p.to_json());
            } else {
                let summary = p
                    .summaries
                    .iter()
                    .map(|s| {
                        format!(
                            "node {}: {:.3} mW, {} entries",
                            s.node,
                            s.average_power.as_milli_watts(),
                            s.log_entries
                        )
                    })
                    .collect::<Vec<_>>()
                    .join("; ");
                let delivery = match p.medium_counters {
                    Some(c) => format!(" — delivered {}, lost {}", c.delivered, c.lost()),
                    None => String::new(),
                };
                println!(
                    "[{}/{}] {} ({}) — {summary}{delivery}",
                    p.completed, p.total, p.name, p.medium_kind
                );
            }
        }
    });
    let report = FleetRunner::new(threads).run_to_channel(batch, tx);
    printer.join().expect("progress printer thread");

    if json {
        println!("{}", report.summary_json());
    } else {
        println!("{}", report.summary_table());
        println!(
            "Batch digest {:#018x} — identical for any --threads value.",
            report.digest()
        );
        println!(
            "Raw entries: {} total, peak held {} (summarize-and-drop keeps the sweep \
             memory-bounded).",
            report.total_log_entries(),
            report.peak_entries_held()
        );
    }
    ExitCode::SUCCESS
}
